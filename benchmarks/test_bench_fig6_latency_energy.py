"""Fig. 6 — normalized latency and energy across architectures."""

from conftest import run_once
from repro.experiments import run_fig6


def test_bench_fig6(benchmark, effort):
    res = run_once(benchmark, run_fig6, effort)
    assert res["checks"]["lpa_lowest_latency"]
    assert res["checks"]["ant_energy_leq_lpa"]
    for wl, rows in res["normalized"].items():
        # AdaptivFloat pays heavily on energy on both workloads
        assert rows["AdaptivFloat"]["energy"] > 1.5, (wl, rows)
    benchmark.extra_info["normalized"] = {
        wl: {a: {k: round(v, 3) for k, v in m.items()} for a, m in rows.items()}
        for wl, rows in res["normalized"].items()
    }
