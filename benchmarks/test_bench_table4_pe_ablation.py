"""Table 4 — PE-type ablation: density, accuracy, energy efficiency."""

from conftest import run_once
from repro.experiments import run_table4


def test_bench_table4(benchmark, effort):
    res = run_once(benchmark, run_table4, effort)
    rows = res["rows"]
    # density ordering: LPA-2 > LPA-2/4/8 > LPA-8 > Posit, AdaptivFloat
    assert rows["LPA-2"]["density"] > rows["LPA-2/4/8"]["density"]
    assert rows["LPA-2/4/8"]["density"] > rows["LPA-8"]["density"]
    assert rows["LPA-8"]["density"] > rows["Posit-2/4/8"]["density"]
    # efficiency ordering mirrors density for the LPA variants
    assert rows["LPA-2"]["gops_per_watt"] > rows["LPA-2/4/8"]["gops_per_watt"]
    assert rows["LPA-2/4/8"]["gops_per_watt"] > rows["LPA-8"]["gops_per_watt"]
    # accuracy: LPA-8 best, mixed close behind, LPA-2 collapses
    assert rows["LPA-8"]["top1"] >= rows["LPA-2/4/8"]["top1"] - 1.0
    assert rows["LPA-2/4/8"]["top1"] - rows["LPA-2"]["top1"] > 20.0
    # mixed precision dominates the posit PE at the same widths
    assert rows["LPA-2/4/8"]["top1"] >= rows["Posit-2/4/8"]["top1"] - 1.0
    benchmark.extra_info["rows"] = {
        k: {kk: round(vv, 2) for kk, vv in v.items()} for k, v in rows.items()
    }
    benchmark.extra_info["fp_top1"] = round(res["fp_top1"], 2)
