"""Fig. 1 — weight distributions (a) and relative-accuracy profiles (b)."""

import numpy as np

from conftest import run_once
from repro.experiments import run_fig1


def test_bench_fig1(benchmark):
    res = run_once(benchmark, run_fig1)
    # (a) layer medians span orders of magnitude (distributional variance)
    for model, spread in res["median_log10_spread"].items():
        assert spread > 0.4, f"{model}: log10 spread {spread}"
    # (b) LP accuracy tapers strongly; AdaptivFloat stays flat
    assert res["lp_taper_range"] > 1.3 * res["af_taper_range"]
    benchmark.extra_info["median_log10_spread"] = res["median_log10_spread"]
    benchmark.extra_info["lp_taper_range"] = round(res["lp_taper_range"], 3)
    benchmark.extra_info["af_taper_range"] = round(res["af_taper_range"], 3)
