"""Table 2 — LPQ accuracy on the vision-transformer family."""

from conftest import run_once
from repro.experiments import run_table2


def test_bench_table2(benchmark, effort):
    res = run_once(benchmark, run_table2, effort)
    for model, row in res["rows"].items():
        assert row["drop"] <= 10.0, f"{model}: drop {row['drop']:.2f}%"
        assert row["compression"] >= 3.0
    assert res["mean_drop"] <= 7.0
    benchmark.extra_info["rows"] = {
        m: {k: round(v, 3) for k, v in r.items() if isinstance(v, float)}
        for m, r in res["rows"].items()
    }
