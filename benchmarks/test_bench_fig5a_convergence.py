"""Fig. 5(a) — convergence under MSE / KL / global-contrastive /
global-local-contrastive objectives."""

from conftest import run_once
from repro.experiments import run_fig5a


def test_bench_fig5a(benchmark, effort):
    res = run_once(benchmark, run_fig5a, effort)
    final = res["final_top1"]
    ours = final["global_local_contrastive"]
    # shape target: ours ends at or near the best late-stage accuracy
    # (within 2 points of the best baseline objective)
    best_baseline = max(v for k, v in final.items()
                        if k != "global_local_contrastive")
    assert ours >= best_baseline - 2.0, final
    benchmark.extra_info["final_top1"] = {k: round(v, 2) for k, v in final.items()}
