"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure at the ``fast`` effort
(REPRO_EFFORT=paper reruns them at the published search budget).  The
heavy work happens once per benchmark via ``pedantic(rounds=1)``; the
result is attached to ``benchmark.extra_info`` so the regenerated rows
are visible in the benchmark report.
"""

import os

import pytest


@pytest.fixture(scope="session")
def effort() -> str:
    return os.environ.get("REPRO_EFFORT", "fast")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark timing."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    return result
