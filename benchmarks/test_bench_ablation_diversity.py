"""Ablation — Step-3 diversity selection and block-wise regeneration."""

from conftest import run_once
from repro.experiments import run_search_ablation


def test_bench_search_ablation(benchmark, effort):
    res = run_once(benchmark, run_search_ablation, "resnet18", effort)
    assert res["full"]["top1"] > 30.0
    # diversity costs evaluations; switching it off must reduce them
    assert res["no_diversity"]["evaluations"] < res["full"]["evaluations"]
    benchmark.extra_info["results"] = {
        k: {"top1": round(v["top1"], 2), "evals": v["evaluations"]}
        for k, v in res.items()
    }
