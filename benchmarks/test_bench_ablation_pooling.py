"""Ablation — kurtosis-3 vs mean pooling of IR fingerprints (docs/design.md §5)."""

from conftest import run_once
from repro.experiments import run_pooling_ablation


def test_bench_pooling_ablation(benchmark, effort):
    res = run_once(benchmark, run_pooling_ablation, "resnet18", effort)
    # both must produce usable solutions; report the comparison
    assert res["kurtosis"]["top1"] > 30.0
    assert res["mean"]["top1"] > 20.0
    benchmark.extra_info["kurtosis_top1"] = round(res["kurtosis"]["top1"], 2)
    benchmark.extra_info["mean_top1"] = round(res["mean"]["top1"], 2)
