"""Table 1 — LPQ accuracy/compression on the CNN family."""

from conftest import run_once
from repro.experiments import run_table1


def test_bench_table1(benchmark, effort):
    res = run_once(benchmark, run_table1, effort)
    rows = res["rows"]
    for model, row in rows.items():
        # shape targets: modest top-1 drop at real compression.  The
        # scaled-down models are more quantization-brittle than ImageNet
        # ResNets (see docs/design.md §6), so the drop budget is wider than
        # the paper's <1pp while still excluding collapse.
        assert row["drop"] <= 10.0, f"{model}: drop {row['drop']:.2f}%"
        assert row["compression"] >= 4.0, f"{model}: {row['compression']:.1f}x"
        assert 2.0 <= row["w_bits"] <= 8.0
    assert res["mean_drop"] <= 7.0
    benchmark.extra_info["rows"] = {
        m: {k: round(v, 3) for k, v in r.items() if isinstance(v, float)}
        for m, r in rows.items()
    }
