"""Search throughput — incremental LPQ engine vs the reference path.

Runs the same fast-effort genetic search twice (``FitnessConfig.fast``
off and on) on a BatchNorm CNN and checks the two hard guarantees of the
incremental engine: the search trajectories are bitwise identical, and
the cached path is at least 3× faster.  The canonical
``BENCH_search_throughput.json`` at the repo root is maintained by
``scripts/run_search_throughput_bench.py`` — the test emits its record
to a temp path so plain pytest runs never dirty the committed artifact.
"""

import os

from conftest import run_once
from repro.perf import run_search_throughput_bench
from repro.perf.bench import write_bench_record

MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))


def test_bench_search_throughput(benchmark, tmp_path):
    rec = run_once(benchmark, run_search_throughput_bench)
    write_bench_record(rec, tmp_path / "BENCH_search_throughput.json")
    assert rec["identical"], (
        "fast and reference searches diverged: "
        f"{rec['fast']['best_fitness']} vs {rec['reference']['best_fitness']}"
    )
    assert rec["speedup"] >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup, got {rec['speedup']:.2f}x"
    )
    benchmark.extra_info["speedup"] = round(rec["speedup"], 2)
    benchmark.extra_info["reference_wall_s"] = round(
        rec["reference"]["wall_s"], 3
    )
    benchmark.extra_info["fast_wall_s"] = round(rec["fast"]["wall_s"], 3)
    caches = rec["fast"]["perf"]["caches"]
    benchmark.extra_info["weight_cache_hit_rate"] = round(
        caches["quant.weight_cache"]["hit_rate"], 3
    )
