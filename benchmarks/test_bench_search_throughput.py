"""Search throughput — incremental + parallel LPQ engines vs reference.

Runs the same fast-effort genetic search several ways (``FitnessConfig.
fast`` off and on, then through the ``serial`` and ``process`` population
executors with two workers) on a BatchNorm CNN and checks the engine's
hard guarantees: every path produces a bitwise-identical search
trajectory, the incremental path is at least 3× faster than the
reference, and — on a multi-core runner — the process backend delivers
at least 1.8× additional evals/s over the serial fast path.  The
``OutputObjectiveEvaluator`` (Fig. 5(a) baselines) must show the same
incremental speedup.  The canonical ``BENCH_search_throughput.json`` at
the repo root is maintained by ``scripts/run_search_throughput_bench.py``
— the test emits its record to a temp path so plain pytest runs never
dirty the committed artifact.
"""

import os

from conftest import run_once
from repro.perf import run_search_throughput_bench
from repro.perf.bench import write_bench_record

MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "1.8")
)
MIN_MULTIJOB_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_MULTIJOB_SPEEDUP", "1.0")
)
#: the parallel wall-clock bar only applies when the hardware can
#: actually run the two workers concurrently
MULTICORE = (os.cpu_count() or 1) >= 2


def _bench():
    return run_search_throughput_bench(
        models=("resnet",), backends=("serial", "process"), workers=2
    )


def test_bench_search_throughput(benchmark, tmp_path):
    rec = run_once(benchmark, _bench)
    write_bench_record(rec, tmp_path / "BENCH_search_throughput.json")
    section = rec["models"]["resnet"]
    assert section["identical"], (
        "fast and reference searches diverged: "
        f"{section['fast']['best_fitness']} vs "
        f"{section['reference']['best_fitness']}"
    )
    assert section["speedup"] >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup, got {section['speedup']:.2f}x"
    )

    # parallel correctness is unconditional: every backend must reproduce
    # the serial trajectory bitwise
    for backend, backend_rec in section["backends"].items():
        assert backend_rec["identical"], (
            f"{backend} backend diverged from the serial trajectory: "
            f"{backend_rec['best_fitness']} vs "
            f"{section['fast']['best_fitness']}"
        )
    process = section["backends"]["process"]
    assert process["workers"] == 2
    if MULTICORE:
        assert process["speedup_vs_fast"] >= MIN_PARALLEL_SPEEDUP, (
            f"expected >= {MIN_PARALLEL_SPEEDUP}x evals/s from the process "
            f"backend, got {process['speedup_vs_fast']:.2f}x"
        )

    # multi-job scheduler: two jobs on one shared pool must reproduce
    # their back-to-back trajectories bitwise, and on a multi-core
    # runner the shared pool must beat back-to-back aggregate throughput
    multi = rec["multi_job"]
    assert multi["identical"], (
        "scheduler-run jobs diverged from their back-to-back runs: "
        f"{multi['jobs']}"
    )
    if MULTICORE:
        assert multi["speedup"] >= MIN_MULTIJOB_SPEEDUP, (
            f"expected >= {MIN_MULTIJOB_SPEEDUP}x aggregate speedup from "
            f"the shared pool, got {multi['speedup']:.2f}x"
        )

    obj = rec["objective_evaluator"]
    assert obj["identical"], (
        "OutputObjectiveEvaluator fast path diverged: "
        f"{obj['fast']['best_fitness']} vs {obj['reference']['best_fitness']}"
    )
    assert obj["speedup"] >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x OutputObjectiveEvaluator speedup, "
        f"got {obj['speedup']:.2f}x"
    )

    benchmark.extra_info["speedup"] = round(section["speedup"], 2)
    benchmark.extra_info["parallel_speedup"] = round(
        process["speedup_vs_fast"], 2
    )
    benchmark.extra_info["objective_speedup"] = round(obj["speedup"], 2)
    benchmark.extra_info["multi_job_speedup"] = round(multi["speedup"], 2)
    benchmark.extra_info["reference_wall_s"] = round(
        section["reference"]["wall_s"], 3
    )
    benchmark.extra_info["fast_wall_s"] = round(section["fast"]["wall_s"], 3)
    caches = section["fast"]["perf"]["caches"]
    benchmark.extra_info["weight_cache_hit_rate"] = round(
        caches["quant.weight_cache"]["hit_rate"], 3
    )
    benchmark.extra_info["act_cache_hit_rate"] = round(
        caches["quant.act_cache"]["hit_rate"], 3
    )
