"""Fig. 5(b) — per-layer quantization RMSE by number format on ViT."""

from conftest import run_once
from repro.experiments import run_fig5b


def test_bench_fig5b(benchmark):
    res = run_once(benchmark, run_fig5b)
    means = res["mean_rmse"]
    # headline: LP lowest mean RMSE; AdaptivFloat clearly worse than LP
    assert res["best_format"] == "lp", means
    assert res["lp_vs_adaptivfloat"] > 1.0
    benchmark.extra_info["mean_rmse"] = {
        k: round(v, 6) for k, v in means.items()
    }
