"""Table 3 — area / throughput / compute density vs ANT, BitFusion,
AdaptivFloat on the full ResNet50 workload."""

import pytest

from conftest import run_once
from repro.experiments import TABLE3, run_table3


def test_bench_table3(benchmark, effort):
    res = run_once(benchmark, run_table3, effort)
    rows = res["rows"]
    # component-calibrated areas must match the published synthesis
    for arch, (area, _, _, total) in TABLE3.items():
        assert rows[arch]["compute_area_um2"] == pytest.approx(area, rel=1e-3)
        assert rows[arch]["total_area_mm2"] == pytest.approx(total, abs=0.02)
    # headline: ~2x compute density over ANT / BitFusion
    assert res["density_gain_vs_ant"] > 1.5
    assert res["density_gain_vs_bitfusion"] > 1.5
    # AdaptivFloat the worst density, as in the paper
    densities = {k: v["tops_per_mm2"] for k, v in rows.items()}
    assert min(densities, key=densities.get) == "AdaptivFloat"
    benchmark.extra_info["rows"] = {
        k: {kk: round(vv, 2) for kk, vv in v.items()} for k, v in rows.items()
    }
