#!/usr/bin/env python
"""Docs gate: run the public-API doctests and link-check docs/ pages.

Two checks, both hard failures:

1. **Doctests** — ``doctest.testmod`` over every module in
   ``DOCTEST_MODULES`` (the public-API docstrings that advertise
   runnable examples: ``lpq_quantize``, ``lpq_quantize_many``,
   ``ExecutorConfig``, ``SearchScheduler``, ``LPQEngine``).  The
   modules use package-relative imports, so they are imported through
   the package rather than handed to ``python -m doctest`` as files.
2. **Reference link-check** — every ``path/to/file.py:symbol``
   reference in ``docs/*.md`` and ``README.md`` must point at an
   existing file that actually defines the symbol (``def``/``class``
   or module-level assignment; dotted symbols check their last
   component).  Plain file references (``path/to/file.py`` with no
   symbol) must exist too.

Usage::

    python scripts/check_docs.py [--verbose]
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

#: modules whose docstring examples are part of the documented API
DOCTEST_MODULES = (
    "repro.quant.ptq",  # lpq_quantize
    "repro.quant.genetic",  # LPQEngine
    "repro.parallel.executor",  # ExecutorConfig
    "repro.serve.scheduler",  # SearchScheduler
    "repro.serve.api",  # lpq_quantize_many
    "repro.serve.remote",  # remote worker fleet round trip
    "repro.serve.resilience",  # RetryPolicy backoff determinism
    "repro.serve.chaos",  # FaultPlan round trip + committed plans
    "repro.serve.server",  # SearchServer + SearchClient quickstart
    "repro.serve.store",  # journal replay + atomic result store
    "repro.spec.registry",  # register/resolve/names
    "repro.spec.spec",  # SearchSpec round trip + digest
    "repro.spec.sweep",  # expand_sweep
    "repro.spec.wire",  # frame codec
    "repro.spec.blob",  # content-addressed blob store
    "repro.numerics.registry",  # make_format
    "repro.numerics.logposit",  # lp_quantize_many
    "repro.obs.hub",  # MetricsHub publish/subscribe
    "repro.obs.emitter",  # MetricsEmitter delta sampling
    "repro.obs.timeseries",  # TimeSeriesStore replay + merge_samples
)

#: markdown files whose file.py:symbol references are link-checked
DOC_PAGES = ("docs/*.md", "README.md")

#: `path/to/file.py` optionally followed by `:symbol` (possibly dotted);
#: a trailing `:123` line number is accepted and checked as file-only
_REF = re.compile(
    r"(?P<path>[\w./-]+\.py)(?::(?P<symbol>[A-Za-z_][\w.]*))?"
)

#: how a symbol may be defined at module level
_DEF_TEMPLATES = (
    r"^\s*def\s+{name}\b",
    r"^\s*class\s+{name}\b",
    r"^{name}\s*[:=]",
    r'^\s*"{name}"',  # __all__ entries for re-exported names
)


def run_doctests(verbose: bool) -> int:
    failures = 0
    for module_name in DOCTEST_MODULES:
        module = importlib.import_module(module_name)
        result = doctest.testmod(
            module, verbose=verbose, report=True,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        status = "ok" if result.failed == 0 else "FAIL"
        print(
            f"doctest {module_name}: {result.attempted} examples "
            f"[{status}]"
        )
        if result.attempted == 0:
            print(f"doctest {module_name}: FAIL — no examples found "
                  "(documented API must keep runnable examples)")
            failures += 1
        failures += result.failed
    return failures


def _symbol_defined(text: str, symbol: str) -> bool:
    name = re.escape(symbol.rsplit(".", maxsplit=1)[-1])
    return any(
        re.search(template.format(name=name), text, flags=re.MULTILINE)
        for template in _DEF_TEMPLATES
    )


def check_references(verbose: bool) -> int:
    failures = 0
    pages: list[Path] = []
    for pattern in DOC_PAGES:
        pages.extend(sorted(REPO.glob(pattern)))
    if not any(page.parent.name == "docs" for page in pages):
        print("link-check: FAIL — no docs/ pages found")
        return 1
    checked = 0
    for page in pages:
        text = page.read_text()
        for match in _REF.finditer(text):
            rel = match.group("path")
            symbol = match.group("symbol")
            target = REPO / rel
            checked += 1
            if not target.exists():
                print(f"link-check {page.relative_to(REPO)}: FAIL — "
                      f"missing file {rel}")
                failures += 1
                continue
            if symbol and not _symbol_defined(target.read_text(), symbol):
                print(f"link-check {page.relative_to(REPO)}: FAIL — "
                      f"{rel} does not define {symbol!r}")
                failures += 1
            elif verbose:
                ref = f"{rel}:{symbol}" if symbol else rel
                print(f"link-check {page.relative_to(REPO)}: ok {ref}")
    print(f"link-check: {checked} references across {len(pages)} pages, "
          f"{failures} broken")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    failures = run_doctests(args.verbose)
    failures += check_references(args.verbose)
    if failures:
        print(f"check_docs: {failures} failure(s)")
        return 1
    print("check_docs: all good")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
