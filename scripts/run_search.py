#!/usr/bin/env python
"""Run declarative LPQ searches from JSON spec or sweep files.

The spec file is a serialized :class:`repro.spec.SearchSpec` — model by
registry name, calibration batch as a ``(batch, seed, source)``
descriptor, search/fitness configs, objective, executor, seed — so the
whole experiment is reproducible from the one file (committed examples
live under ``examples/specs/``).  A sweep file is one base spec × a
parameter grid (:mod:`repro.spec.sweep`), expanded into a named fleet
and run on one shared pool via :func:`repro.serve.lpq_quantize_many`.

Usage::

    PYTHONPATH=src python scripts/run_search.py --spec examples/specs/tiny_resnet.json
    PYTHONPATH=src python scripts/run_search.py --spec my_search.json \
        --backend process --workers 4 --out result.json
    PYTHONPATH=src python scripts/run_search.py --spec my_search.json \
        --backend remote --addresses 127.0.0.1:7301,127.0.0.1:7302
    PYTHONPATH=src python scripts/run_search.py --sweep examples/specs/tiny_sweep.json
    PYTHONPATH=src python scripts/run_search.py --spec my_search.json \
        --cache-dir .search-cache   # replays an identical spec's result
    PYTHONPATH=src python scripts/run_search.py --sweep examples/specs/tiny_sweep.json \
        --server 127.0.0.1:7400     # submit to a running search daemon

``--backend``/``--workers``/``--addresses``/``--token`` override the
spec's executor (handy for running a committed spec serially in CI, or
against a live worker fleet); ``--out`` writes a JSON record of the
spec(s) and result(s).  ``--cache-dir`` keys stored results by
:meth:`SearchSpec.digest` (atomic writes via
:class:`repro.serve.store.ResultStore` — the same store the daemon
trusts) — executor changes don't change the digest because no backend
can move a bit, so a cached serial result satisfies a remote re-run of
the same spec.

``--server HOST:PORT`` submits the spec(s) to a running
``scripts/run_server.py`` daemon instead of executing locally: jobs
are durable server-side (they survive daemon restarts — the client
reconnects and picks the stream back up), progress events print as
they arrive, and ``--priority`` orders the daemon's queue.  The
executor lives server-side, so the executor-override flags and
``--cache-dir`` are rejected in this mode (``--token`` becomes the
*server* auth token).  Exits non-zero on a failed search or a
non-finite fitness — the CI spec legs rely on this.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.parallel import ExecutorConfig, parse_address_list  # noqa: E402
from repro.quant import lpq_quantize  # noqa: E402
from repro.serve import lpq_quantize_many  # noqa: E402
from repro.serve.store import ResultStore, result_record  # noqa: E402
from repro.spec import SearchSpec, load_sweep, registry  # noqa: E402


def _override_executor(spec: SearchSpec, args) -> SearchSpec:
    """Apply the CLI's executor overrides; the spec's other executor
    fields stay in force.  Addresses/token are dropped when the final
    backend is not remote (they only apply there)."""
    if not (args.backend or args.workers is not None or args.addresses
            or args.token):
        return spec
    base = spec.executor or ExecutorConfig()
    backend = args.backend or base.backend
    addresses = None
    token = None
    if backend == "remote":
        if args.addresses:
            addresses = parse_address_list(args.addresses)
        else:
            addresses = base.addresses
        token = args.token if args.token is not None else base.token
    executor = ExecutorConfig(
        backend=backend,
        workers=args.workers if args.workers is not None else base.workers,
        start_method=base.start_method,
        addresses=addresses,
        token=token,
    )
    return dataclasses.replace(spec, executor=executor)


def _print_record(record: dict, cached: bool = False) -> None:
    wall = record.get("wall_s")
    walltext = f" in {wall:.2f}s" if wall is not None else ""
    suffix = "  [cache replay]" if cached else ""
    print(f"result: {len(record['solution'])} layers{walltext} "
          f"({record['evaluations']} fitness evaluations){suffix}")
    print(f"  fitness:          {record['fitness']:.6f}")
    print(f"  mean weight bits: {record['mean_weight_bits']:.2f}")
    print(f"  mean act bits:    {record['mean_act_bits']:.2f}")
    print(f"  model size:       {record['model_size_mb']:.4f} MB")


def _cache_open(cache_dir: Path | None) -> ResultStore | None:
    """The digest-keyed result cache: the same atomic write-then-rename
    :class:`ResultStore` the search daemon trusts (a crash mid-write
    can't leave a torn entry; corrupt files read as misses)."""
    if cache_dir is None:
        return None
    return ResultStore(cache_dir)


def _describe(name: str, spec: SearchSpec) -> None:
    executor = spec.executor.backend if spec.executor else "serial"
    print(f"  [{name}] model={spec.model}  calib={spec.calib.batch}@seed"
          f"{spec.calib.seed}  objective={spec.objective}  "
          f"executor={executor}  seed={spec.search_config().seed}")


def _run_single(args) -> int:
    try:
        spec = SearchSpec.load(args.spec)
    except (OSError, ValueError) as exc:
        print(f"run_search: cannot load spec {args.spec}: {exc}",
              file=sys.stderr)
        return 2
    if not spec.serializable:
        print(f"run_search: spec {args.spec} must name a registered "
              "model and a calib descriptor", file=sys.stderr)
        return 2
    spec = _override_executor(spec, args)
    print(f"spec: {args.spec}")
    _describe(spec.job_name("search"), spec)
    print(f"  registered models: {len(registry.names('model'))}  "
          f"objectives: {len(registry.names('objective'))}")

    cache = _cache_open(args.cache_dir)
    record = cache.load(spec.digest()) if cache is not None else None
    cached = record is not None
    if not cached:
        start = time.perf_counter()
        result = lpq_quantize(spec=spec)
        record = result_record(spec, result, time.perf_counter() - start)
        if cache is not None:
            cache.store(spec.digest(), record)
    _print_record(record, cached=cached)

    if args.out is not None:
        args.out.write_text(json.dumps(record, indent=2, sort_keys=True)
                            + "\n")
        print(f"record written to {args.out}")
    if not math.isfinite(record["fitness"]):
        print(f"run_search: non-finite fitness {record['fitness']!r}",
              file=sys.stderr)
        return 1
    return 0


def _run_sweep(args) -> int:
    try:
        specs = load_sweep(args.sweep)
    except (OSError, ValueError) as exc:
        print(f"run_search: cannot load sweep {args.sweep}: {exc}",
              file=sys.stderr)
        return 2
    specs = {name: _override_executor(spec, args)
             for name, spec in specs.items()}
    print(f"sweep: {args.sweep} ({len(specs)} jobs)")
    for name, spec in specs.items():
        _describe(name, spec)

    cache = _cache_open(args.cache_dir)
    records: dict[str, dict] = {}
    replayed: set[str] = set()
    to_run: dict[str, SearchSpec] = {}
    for name, spec in specs.items():
        record = cache.load(spec.digest()) if cache is not None else None
        if record is not None:
            records[name] = record
            replayed.add(name)
        else:
            to_run[name] = spec
    wall = 0.0
    if to_run:
        start = time.perf_counter()
        results = lpq_quantize_many(to_run)
        wall = time.perf_counter() - start
        for name, result in results.items():
            record = result_record(to_run[name], result, None)
            records[name] = record
            if cache is not None:
                cache.store(to_run[name].digest(), record)
    print(f"ran {len(to_run)} job(s) in {wall:.2f}s on one shared pool, "
          f"replayed {len(replayed)} from cache")
    for name in specs:
        print(f"[{name}]")
        _print_record(records[name], cached=name in replayed)

    if args.out is not None:
        args.out.write_text(json.dumps(
            {"sweep": str(args.sweep), "jobs": records},
            indent=2, sort_keys=True,
        ) + "\n")
        print(f"record written to {args.out}")
    bad = [name for name, rec in records.items()
           if not math.isfinite(rec["fitness"])]
    if bad:
        print(f"run_search: non-finite fitness in job(s) {bad}",
              file=sys.stderr)
        return 1
    return 0


def _run_remote(args) -> int:
    """Submit the spec(s) to a running search daemon and wait."""
    from repro.serve.server import SearchClient, ServerError

    if args.sweep is not None:
        try:
            specs = load_sweep(args.sweep)
        except (OSError, ValueError) as exc:
            print(f"run_search: cannot load sweep {args.sweep}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"sweep: {args.sweep} ({len(specs)} jobs) -> server "
              f"{args.server}")
    else:
        try:
            spec = SearchSpec.load(args.spec)
        except (OSError, ValueError) as exc:
            print(f"run_search: cannot load spec {args.spec}: {exc}",
                  file=sys.stderr)
            return 2
        specs = {spec.job_name("search"): spec}
        print(f"spec: {args.spec} -> server {args.server}")
    for name, spec in specs.items():
        _describe(name, spec)

    client = SearchClient(args.server, token=args.token,
                          reconnect_s=args.reconnect_s)
    submitted: dict[str, str] = {}
    with client:
        for name, spec in specs.items():
            reply = client.submit(spec, priority=args.priority, job=name)
            marker = " [cache replay]" if reply.get("cached") else ""
            print(f"  [{name}] -> job {reply['job']} "
                  f"({reply['state']}){marker}")
            submitted[name] = reply["job"]

        records: dict[str, dict] = {}
        replayed: set[str] = set()
        failures: list[str] = []
        for name, job in submitted.items():
            def _progress(frame, name=name):
                data = frame.get("data", {})
                if frame.get("event") == "progress":
                    best = data.get("best_fitness")
                    best_text = (f"{best:.6f}"
                                 if isinstance(best, float) else best)
                    print(f"  [{name}] batch {data.get('seq')}: "
                          f"{data.get('evaluations')} evaluations, "
                          f"best {best_text}", flush=True)
            try:
                record = client.wait(job, on_event=_progress)
            except ServerError as exc:
                print(f"run_search: job {name!r}: {exc}", file=sys.stderr)
                failures.append(name)
                continue
            records[name] = record
            if client.status(job).get("cached"):
                replayed.add(name)
            print(f"[{name}]")
            _print_record(record, cached=name in replayed)

    if args.out is not None:
        if args.sweep is not None:
            payload = {"sweep": str(args.sweep), "jobs": records}
        else:
            payload = next(iter(records.values()), {})
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True)
                            + "\n")
        print(f"record written to {args.out}")
    if failures:
        return 1
    bad = [name for name, rec in records.items()
           if not math.isfinite(rec["fitness"])]
    if bad:
        print(f"run_search: non-finite fitness in job(s) {bad}",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--spec", type=Path,
                        help="path to a SearchSpec JSON file")
    source.add_argument("--sweep", type=Path,
                        help="path to a sweep JSON file (one base spec "
                             "x a parameter grid)")
    parser.add_argument("--backend", default=None,
                        help="override the executor backend "
                             "(serial/thread/process/remote)")
    parser.add_argument("--workers", type=int, default=None,
                        help="override the executor worker count")
    parser.add_argument("--addresses", default=None,
                        help="comma-separated host:port worker addresses "
                             "(remote backend)")
    parser.add_argument("--token", default=None,
                        help="worker auth token (remote backend)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="replay identical specs from this result "
                             "cache (keyed by SearchSpec.digest())")
    parser.add_argument("--out", type=Path, default=None,
                        help="write a JSON record of spec(s) + result(s)")
    parser.add_argument("--server", default=None, metavar="HOST:PORT",
                        help="submit to a running scripts/run_server.py "
                             "daemon instead of executing locally "
                             "(--token authenticates to the server; the "
                             "executor lives server-side)")
    parser.add_argument("--priority", type=int, default=0,
                        help="queue priority for --server submissions "
                             "(higher runs earlier)")
    parser.add_argument("--reconnect-s", type=float, default=120.0,
                        help="how long --server mode redials a "
                             "restarting daemon before giving up")
    args = parser.parse_args(argv)

    if args.server is not None:
        rejected = [flag for flag, value in (
            ("--backend", args.backend),
            ("--workers", args.workers),
            ("--addresses", args.addresses),
            ("--cache-dir", args.cache_dir),
        ) if value is not None]
        if rejected:
            print(f"run_search: {', '.join(rejected)} cannot be combined "
                  "with --server (the executor and the result cache live "
                  "server-side)", file=sys.stderr)
            return 2

    try:
        if args.server is not None:
            return _run_remote(args)
        if args.sweep is not None:
            return _run_sweep(args)
        return _run_single(args)
    except (ValueError, ConnectionError) as exc:
        # bad executor overrides (remote without addresses) and
        # unreachable/refusing workers or servers land here, with context
        print(f"run_search: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
