#!/usr/bin/env python
"""Run one declarative LPQ search from a JSON spec file.

The spec file is a serialized :class:`repro.spec.SearchSpec` — model by
registry name, calibration batch as a ``(batch, seed, source)``
descriptor, search/fitness configs, objective, executor, seed — so the
whole experiment is reproducible from the one file (committed examples
live under ``examples/specs/``).

Usage::

    PYTHONPATH=src python scripts/run_search.py --spec examples/specs/tiny_resnet.json
    PYTHONPATH=src python scripts/run_search.py --spec my_search.json \
        --backend process --workers 4 --out result.json

``--backend``/``--workers`` override the spec's executor (handy for
running a committed spec serially in CI); ``--out`` writes a JSON
record of the spec and the result.  Exits non-zero on a failed search
or a non-finite fitness — the CI spec leg relies on this.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.parallel import ExecutorConfig  # noqa: E402
from repro.quant import lpq_quantize  # noqa: E402
from repro.spec import SearchSpec, registry  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spec", type=Path, required=True,
                        help="path to a SearchSpec JSON file")
    parser.add_argument("--backend", default=None,
                        help="override the spec's executor backend")
    parser.add_argument("--workers", type=int, default=None,
                        help="override the spec's executor worker count")
    parser.add_argument("--out", type=Path, default=None,
                        help="write a JSON record of spec + result")
    args = parser.parse_args(argv)

    try:
        spec = SearchSpec.load(args.spec)
    except (OSError, ValueError) as exc:
        print(f"run_search: cannot load spec {args.spec}: {exc}",
              file=sys.stderr)
        return 2
    if not spec.serializable:
        print(f"run_search: spec {args.spec} must name a registered "
              "model and a calib descriptor", file=sys.stderr)
        return 2
    if args.backend is not None or args.workers is not None:
        # override only what was asked for; the spec's other executor
        # fields (workers, start_method) stay in force
        base = spec.executor or ExecutorConfig()
        executor = ExecutorConfig(
            backend=args.backend or base.backend,
            workers=args.workers if args.workers is not None else base.workers,
            start_method=base.start_method,
        )
        spec = dataclasses.replace(spec, executor=executor)

    executor = spec.executor.backend if spec.executor else "serial"
    print(f"spec: {args.spec}")
    print(f"  model={spec.model}  calib={spec.calib.batch}@seed"
          f"{spec.calib.seed}  objective={spec.objective}  "
          f"executor={executor}  seed={spec.search_config().seed}")
    print(f"  registered models: {len(registry.names('model'))}  "
          f"objectives: {len(registry.names('objective'))}")

    start = time.perf_counter()
    result = lpq_quantize(spec=spec)
    wall = time.perf_counter() - start

    fp_mb = sum(result.stats.param_counts) * 4 / 1e6
    print(f"result: {len(result.solution)} layers in {wall:.2f}s "
          f"({result.evaluations} fitness evaluations)")
    print(f"  fitness:          {result.fitness:.6f}")
    print(f"  mean weight bits: {result.mean_weight_bits:.2f}")
    print(f"  mean act bits:    {result.mean_act_bits:.2f}")
    print(f"  model size:       {result.model_size_mb():.4f} MB "
          f"(FP32 {fp_mb:.4f} MB)")

    if args.out is not None:
        record = {
            "spec": spec.to_dict(),
            "wall_s": wall,
            "fitness": result.fitness,
            "mean_weight_bits": result.mean_weight_bits,
            "mean_act_bits": result.mean_act_bits,
            "model_size_mb": result.model_size_mb(),
            "evaluations": result.evaluations,
            "solution": [
                [p.n, p.es, p.rs, p.sf]
                for p in result.solution.layer_params
            ],
        }
        args.out.write_text(json.dumps(record, indent=2, sort_keys=True)
                            + "\n")
        print(f"record written to {args.out}")

    if not math.isfinite(result.fitness):
        print(f"run_search: non-finite fitness {result.fitness!r}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
