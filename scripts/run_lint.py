#!/usr/bin/env python
"""Project-invariant lint front end (`repro.analysis`).

Runs every rule in the ``lint_rule`` registry family over ``src/``,
``scripts/`` and ``benchmarks/`` and reports structured findings.  A
finding is suppressed by a ``# lint: disable=RULE -- reason`` comment
on its line or by the committed baseline (``LINT_BASELINE.json``);
anything else fails the run — this is the CI ``lint`` leg's hard gate.

Usage::

    PYTHONPATH=src python scripts/run_lint.py              # human output
    PYTHONPATH=src python scripts/run_lint.py --json       # machine output
    PYTHONPATH=src python scripts/run_lint.py --baseline   # regrandfather
    PYTHONPATH=src python scripts/run_lint.py --list-rules
    PYTHONPATH=src python scripts/run_lint.py --bench-drift

``--bench-drift`` cross-checks the committed
``BENCH_search_throughput.json`` against the docs/perf.md counter table
and a fresh in-process smoke search: recorded metric names that no
longer exist (renames/drops) and engine counters the smoke run stopped
emitting are reported as drift.  See ``docs/analysis.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import engine as lint_engine  # noqa: E402

BENCH_RECORD = "BENCH_search_throughput.json"


def _bench_record_names(record: dict) -> dict[str, set[str]]:
    """Every counter/timer/cache name any perf section of the record
    mentions, collected recursively."""
    names = {"counter": set(), "timer": set(), "cache": set()}

    def collect(node) -> None:
        if not isinstance(node, dict):
            return
        if {"counters", "timers", "caches"} <= set(node):
            names["counter"] |= set(node.get("counters", {}))
            names["timer"] |= set(node.get("timers", {}))
            names["cache"] |= set(node.get("caches", {}))
        for value in node.values():
            collect(value)

    collect(record)
    return names


def _smoke_snapshot() -> dict:
    """A tiny serial search, returning the perf snapshot it produced."""
    from repro import nn
    from repro.data import calibration_batch
    from repro.perf import get_perf, reset_perf
    from repro.quant import LPQConfig, lpq_quantize
    from repro.spec import registry as spec_registry

    nn.seed(5)
    model = spec_registry.resolve("model", "tiny:mlp")()
    model.eval()
    images = calibration_batch(4, seed=3)
    reset_perf()
    lpq_quantize(model, images, LPQConfig(
        population=3, passes=1, cycles=1, block_size=2,
        diversity_parents=2, hw_widths=(4, 8), seed=11,
    ))
    return get_perf().snapshot()


def run_bench_drift(record_path: Path) -> int:
    from repro.analysis.rules.counter_namespace import load_declared_metrics

    if not record_path.exists():
        print(f"bench-drift: FAIL — no record at {record_path}")
        return 1
    record = json.loads(record_path.read_text())
    recorded = _bench_record_names(record)
    declared = load_declared_metrics((REPO / "docs" / "perf.md").read_text())
    problems = 0
    # 1. every name the committed record tracks must still be declared:
    #    a rename/drop in src shows up here before the next regen
    for kind, names in sorted(recorded.items()):
        for name in sorted(names):
            if name not in declared:
                print(
                    f"bench-drift: FAIL — recorded {kind} {name!r} is no "
                    "longer in the docs/perf.md counter table (renamed or "
                    "dropped without regenerating the record?)"
                )
                problems += 1
    if problems:
        # stale names make the smoke comparison meaningless; report early
        print(f"bench-drift: {problems} drift problem(s)")
        return 1
    # 2. a fresh smoke search must still emit the engine-path metrics the
    #    record's fast sections are built from
    snapshot = _smoke_snapshot()
    fresh = {
        "counter": set(snapshot.get("counters", {})),
        "timer": set(snapshot.get("timers", {})),
        "cache": set(snapshot.get("caches", {})),
    }
    core = {
        kind: {
            name for name in recorded[kind]
            if name.split(".", 1)[0] in ("lpq", "fitness", "quant", "replay")
        }
        for kind in recorded
    }
    for kind, names in sorted(core.items()):
        for name in sorted(names - fresh[kind]):
            print(
                f"bench-drift: FAIL — the smoke search no longer emits "
                f"{kind} {name!r} that the committed record tracks"
            )
            problems += 1
    # 3. and everything the smoke run emitted must be declared (same bar
    #    as the counter-namespace rule, enforced on live names)
    for kind, names in sorted(fresh.items()):
        for name in sorted(names):
            if name not in declared:
                print(
                    f"bench-drift: FAIL — live {kind} {name!r} from the "
                    "smoke search is not in the docs/perf.md table"
                )
                problems += 1
    if problems:
        print(f"bench-drift: {problems} drift problem(s)")
        return 1
    total = sum(len(v) for v in recorded.values())
    print(
        f"bench-drift: ok — {total} recorded metric names still declared, "
        f"smoke search emits all {sum(len(v) for v in core.values())} "
        "tracked engine metrics"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="lint a different project root (default: "
                             "this repo; used by the rule fixture tests)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable findings on stdout")
    parser.add_argument("--baseline", action="store_true",
                        help="rewrite LINT_BASELINE.json with every "
                             "current finding and exit 0")
    parser.add_argument("--baseline-file", default=None, metavar="PATH",
                        help=f"baseline path (default {lint_engine.BASELINE_FILE})")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    parser.add_argument("--bench-drift", action="store_true",
                        help=f"check {BENCH_RECORD} against the counter "
                             "table and a fresh smoke run")
    parser.add_argument("--bench-record", default=None, metavar="PATH",
                        help=f"record path for --bench-drift "
                             f"(default {BENCH_RECORD})")
    args = parser.parse_args(argv)

    if args.bench_drift:
        return run_bench_drift(
            Path(args.bench_record) if args.bench_record
            else REPO / BENCH_RECORD
        )

    rules = lint_engine.default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    root = Path(args.root).resolve() if args.root else REPO
    baseline_path = (
        Path(args.baseline_file) if args.baseline_file
        else root / lint_engine.BASELINE_FILE
    )
    project = lint_engine.Project(root)
    report = lint_engine.LintEngine(rules).run(
        project,
        set() if args.baseline else lint_engine.load_baseline(baseline_path),
    )

    if args.baseline:
        count = lint_engine.save_baseline(baseline_path, report.findings)
        print(f"lint: baselined {count} finding(s) into {baseline_path}")
        return 0

    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        print(
            f"lint: {len(report.findings)} finding(s) "
            f"({len(report.baselined)} baselined, "
            f"{len(report.disabled)} disabled) across {report.files} "
            f"files, {len(report.rules)} rules"
        )
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
