#!/usr/bin/env python
"""Run the LPQ search-throughput benchmark and emit its JSON record.

Usage::

    PYTHONPATH=src python scripts/run_search_throughput_bench.py \
        [--calib 16] [--seed 0] [--model resnet --model vit ...] \
        [--backend serial --backend process ...] [--workers N] \
        [--out BENCH_search_throughput.json]

For every selected model the record compares the reference evaluation
path, the incremental engine (fitness memo, weight/activation quant
caches, fused BN recalibration, prefix-reuse forwards), and the parallel
population executors (``repro.parallel``) on the same search, asserting
the trajectories stay bitwise identical.  The ``multi_job`` section
additionally compares two jobs run back-to-back against the
``repro.serve`` shared-pool scheduler, and the ``transport`` section
re-runs each backend cold then warm against one fleet — the warm run
must show ``blob.hits > 0`` and a lower ``transport.bytes_sent`` while
staying bitwise identical.  The emitted file is the repo's
perf-trajectory artifact: commit a refreshed copy whenever a PR moves
the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.parallel import BACKENDS, parse_address_list  # noqa: E402
from repro.perf import run_search_throughput_bench  # noqa: E402
from repro.perf.bench import BENCH_MODELS, write_bench_record  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--calib", type=int, default=16,
                        help="calibration batch size (default 16)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--model", action="append", dest="models",
                        choices=sorted(BENCH_MODELS),
                        help="benchmark model(s); repeatable "
                             "(default: all of resnet, vit, swin)")
    parser.add_argument("--backend", action="append", dest="backends",
                        choices=BACKENDS,
                        help="executor backend(s); repeatable "
                             "(default: serial and process)")
    parser.add_argument("--workers", type=int, default=None,
                        help="executor worker count (default: all CPUs; "
                             "for --backend remote without --addresses, "
                             "the local fleet size, default 2)")
    parser.add_argument("--addresses", default=None,
                        help="comma-separated host:port workers for the "
                             "remote backend (default: start a local "
                             "in-process fleet)")
    parser.add_argument("--no-objective", action="store_true",
                        help="skip the OutputObjectiveEvaluator section")
    parser.add_argument("--no-multi-job", action="store_true",
                        help="skip the shared-pool multi-job scheduler "
                             "section")
    parser.add_argument("--no-transport", action="store_true",
                        help="skip the cold-vs-warm-fleet transport "
                             "section")
    parser.add_argument("--chaos", default=None,
                        help="comma-separated fault-plan names from "
                             "repro.serve.chaos.COMMITTED_PLANS, or "
                             "'all': adds the chaos section — the same "
                             "search against a misbehaving fleet, "
                             "asserting bitwise identity and the "
                             "expected fault.* recovery counters")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: repo root "
                             "BENCH_search_throughput.json)")
    args = parser.parse_args(argv)

    models = tuple(args.models or ("resnet", "vit", "swin"))
    backends = tuple(args.backends or ("serial", "process"))
    addresses = parse_address_list(args.addresses) if args.addresses else None
    chaos_plans: tuple[str, ...] = ()
    if args.chaos:
        from repro.serve.chaos import COMMITTED_PLANS

        if args.chaos == "all":
            chaos_plans = tuple(sorted(COMMITTED_PLANS))
        else:
            chaos_plans = tuple(args.chaos.split(","))
            unknown = [p for p in chaos_plans if p not in COMMITTED_PLANS]
            if unknown:
                parser.error(
                    f"unknown fault plan(s) {unknown}; choose from "
                    f"{sorted(COMMITTED_PLANS)}"
                )
    record = run_search_throughput_bench(
        calib=args.calib,
        seed=args.seed,
        models=models,
        backends=backends,
        workers=args.workers,
        include_objective=not args.no_objective,
        include_multi_job=not args.no_multi_job,
        include_transport=not args.no_transport,
        addresses=addresses,
        chaos_plans=chaos_plans,
    )
    path = write_bench_record(record, args.out)

    ok = True
    workers = ", ".join(
        f"{bk}={n}" for bk, n in record["workers"].items()
    ) or "none"
    print(f"cpu count: {record['cpu']['count']}  workers: {workers}")
    for name, section in record["models"].items():
        ref, fast = section["reference"], section["fast"]
        print(f"[{name}]")
        print(f"  reference: {ref['wall_s']:.2f}s "
              f"({ref['evals_per_s']:.2f} evals/s)")
        print(f"  fast:      {fast['wall_s']:.2f}s "
              f"({fast['evals_per_s']:.2f} evals/s)  "
              f"speedup {section['speedup']:.2f}x  "
              f"identical: {section['identical']}")
        ok = ok and section["identical"]
        for backend, rec in section["backends"].items():
            print(f"  {backend:<9}: {rec['wall_s']:.2f}s "
                  f"({rec['evals_per_s']:.2f} evals/s, "
                  f"{rec['workers']} workers)  "
                  f"{rec['speedup_vs_fast']:.2f}x vs fast  "
                  f"identical: {rec['identical']}")
            ok = ok and rec["identical"]
    obj = record.get("objective_evaluator")
    if obj is not None:
        print(f"[objective:{obj['objective']} on {obj['model']}]")
        print(f"  reference: {obj['reference']['wall_s']:.2f}s  "
              f"fast: {obj['fast']['wall_s']:.2f}s  "
              f"speedup {obj['speedup']:.2f}x  "
              f"identical: {obj['identical']}")
        ok = ok and obj["identical"]
    multi = record.get("multi_job")
    if multi is not None:
        agg = multi["aggregate_evals_per_s"]
        print(f"[multi-job: {', '.join(multi['jobs'])} on shared "
              f"{multi['backend']} pool]")
        print(f"  back-to-back: {multi['sequential_wall_s']:.2f}s "
              f"({agg['sequential']:.2f} evals/s)")
        print(f"  scheduler:    {multi['scheduler_wall_s']:.2f}s "
              f"({agg['scheduler']:.2f} evals/s)  "
              f"speedup {multi['speedup']:.2f}x  "
              f"identical: {multi['identical']}")
        ok = ok and multi["identical"]
    transport = record.get("transport")
    if transport is not None:
        for backend, sec in transport.items():
            cold, warm = sec["cold"], sec["warm"]
            print(f"[transport: {backend} on {sec['model']}]")
            print(f"  cold: sent {cold['bytes_sent']}B  "
                  f"saved {cold['bytes_saved']}B  "
                  f"blob hits/misses {cold['blob']['hits']}/"
                  f"{cold['blob']['misses']}")
            print(f"  warm: sent {warm['bytes_sent']}B  "
                  f"saved {warm['bytes_saved']}B  "
                  f"blob hits/misses {warm['blob']['hits']}/"
                  f"{warm['blob']['misses']}  "
                  f"({sec['warm_bytes_ratio']:.3f}x cold bytes)  "
                  f"identical: {sec['identical']}")
            ok = ok and sec["identical"]
    chaos = record.get("chaos")
    if chaos is not None:
        for plan, sec in chaos.items():
            fired = {c: n for c, n in sec["fault"].items() if n}
            print(f"[chaos: {plan} on {sec['model']} "
                  f"({sec['workers']} workers)]")
            print(f"  {sec['wall_s']:.2f}s  fault counters "
                  f"{json.dumps(fired, sort_keys=True)}  "
                  f"counters_ok: {sec['counters_ok']}  "
                  f"identical: {sec['identical']}")
            ok = ok and sec["identical"] and sec["counters_ok"]
    print(f"record written to {path}")
    first = record["models"][models[0]]
    evictions = {
        run: first[run]["cache_evictions"]
        for run in ("reference", "fast")
        if first[run].get("cache_evictions")
    }
    if evictions:
        print(f"cache evictions: {json.dumps(evictions, sort_keys=True)}")
    print(json.dumps(first["fast"]["perf"]["caches"], indent=2,
                     sort_keys=True))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
