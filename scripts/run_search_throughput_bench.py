#!/usr/bin/env python
"""Run the LPQ search-throughput benchmark and emit its JSON record.

Usage::

    PYTHONPATH=src python scripts/run_search_throughput_bench.py \
        [--calib 16] [--seed 0] [--out BENCH_search_throughput.json]

The record compares the reference evaluation path against the
incremental engine (fitness memo, quantized-weight cache, fused BN
recalibration, prefix-reuse forwards) on the same search, asserting the
trajectories stay bitwise identical.  The emitted file is the repo's
perf-trajectory artifact: commit a refreshed copy whenever a PR moves
the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.perf import run_search_throughput_bench  # noqa: E402
from repro.perf.bench import write_bench_record  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--calib", type=int, default=16,
                        help="calibration batch size (default 16)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: repo root "
                             "BENCH_search_throughput.json)")
    args = parser.parse_args(argv)

    record = run_search_throughput_bench(calib=args.calib, seed=args.seed)
    path = write_bench_record(record, args.out)

    ref, fast = record["reference"], record["fast"]
    print(f"reference: {ref['wall_s']:.2f}s "
          f"({ref['evals_per_s']:.2f} evals/s)")
    print(f"fast:      {fast['wall_s']:.2f}s "
          f"({fast['evals_per_s']:.2f} evals/s)")
    print(f"speedup:   {record['speedup']:.2f}x  "
          f"identical: {record['identical']}")
    print(f"record written to {path}")
    print(json.dumps(fast["perf"]["caches"], indent=2, sort_keys=True))
    return 0 if record["identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
