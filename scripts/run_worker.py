#!/usr/bin/env python
"""Run one standalone LPQ evaluation worker (the remote-backend server).

A worker is a long-lived TCP server speaking the length-prefixed JSON
frame protocol of ``repro.spec.wire``: clients (the ``remote`` executor
backend — ``ExecutorConfig(backend="remote", addresses=[...])``)
handshake with an optional shared-secret token, register search jobs as
plain-JSON wire payloads, and stream candidate chunks at it; the worker
streams fitness results back as each chunk completes.  Evaluation is
deterministic, so any fleet of these workers produces results
bitwise-identical to a serial in-process run.

Usage::

    PYTHONPATH=src python scripts/run_worker.py --port 7301
    PYTHONPATH=src python scripts/run_worker.py --host 0.0.0.0 \
        --port 7301 --token s3cret

The shared token may also come from the ``REPRO_WORKER_TOKEN``
environment variable (the flag wins).  The worker prints one
``worker listening on host:port`` line once it is accepting
connections — CI and launch scripts key readiness off it — and then
serves until interrupted.

``SIGTERM`` (the fleet-manager stop signal) drains gracefully: the
worker announces it is leaving so clients stop dispatching to it,
finishes every chunk it already accepted, then exits — no chunk is
lost, and the clients requeue anything that raced in after the
announcement.  ``SIGINT``/Ctrl-C stops abruptly (clients requeue all
in-flight chunks onto the rest of the fleet).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.serve.remote import WorkerServer  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1; use "
                             "0.0.0.0 to serve other hosts)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to listen on (default 0: ephemeral)")
    parser.add_argument("--token", default=None,
                        help="shared auth token clients must present "
                             "(default: $REPRO_WORKER_TOKEN, else none)")
    parser.add_argument("--blob-cache", default=None, metavar="DIR",
                        help="directory for the content-addressed blob "
                             "cache; blobs persist on disk so a restarted "
                             "worker rehydrates tensors without refetching")
    parser.add_argument("--metrics-interval", type=float, default=0.0,
                        metavar="SECONDS",
                        help="push one telemetry delta frame to every "
                             "connected client each SECONDS (0 = off, "
                             "the default)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-connection log lines")
    args = parser.parse_args(argv)

    token = args.token
    if token is None:
        token = os.environ.get("REPRO_WORKER_TOKEN") or None
    server = WorkerServer(
        host=args.host, port=args.port, token=token,
        verbose=not args.quiet, blob_cache=args.blob_cache,
        metrics_interval=args.metrics_interval,
    ).start()
    print(f"worker listening on {server.address}", flush=True)

    def _drain(signum, frame):
        # SIGTERM = graceful retirement: finish in-flight, refuse new
        print("worker draining (SIGTERM)", flush=True)
        server.drain()

    signal.signal(signal.SIGTERM, _drain)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("worker shutting down", flush=True)
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
