#!/usr/bin/env python
"""Run the always-on LPQ search daemon.

The server accepts client connections over the length-prefixed JSON
frame protocol of ``repro.spec.wire`` (the same framing the worker
fleet speaks): clients submit :class:`repro.spec.SearchSpec` payloads,
poll status, stream progress events, cancel, and fetch results —
``scripts/run_search.py --server HOST:PORT`` is the stock client.
Accepted jobs run on one shared :class:`repro.serve.SearchScheduler`
over the backend named by ``--backend`` (serial / thread / process /
remote), so one daemon can front anything from an in-process pool to a
remote worker fleet.

Jobs are durable under ``--data-dir``: an append-only journal plus a
``SearchSpec.digest()``-keyed result store.  Restarting the daemon on
the same directory recovers the queue — finished jobs replay from the
store with zero re-evaluation, interrupted jobs re-run
bitwise-identically.

Usage::

    PYTHONPATH=src python scripts/run_server.py --port 7400 \
        --data-dir /var/tmp/lpq-server
    PYTHONPATH=src python scripts/run_server.py --port 7400 \
        --data-dir /var/tmp/lpq-server \
        --backend remote --addresses 127.0.0.1:7301,127.0.0.1:7302

The client auth token may come from ``--token`` or
``$REPRO_SERVER_TOKEN``; the worker-fleet token (remote backend) from
``--worker-token`` or ``$REPRO_WORKER_TOKEN``.  The server prints one
``server listening on host:port`` line once it accepts connections —
CI and launch scripts key readiness off it.  ``SIGTERM`` stops
gracefully: the running round is interrupted at the next batch
boundary *without* terminal journal records, so those jobs re-run on
the next start.  A crash (or ``SIGKILL``) at any point is recovered
the same way from the journal.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.parallel import ExecutorConfig, parse_address_list  # noqa: E402
from repro.serve.server import SearchServer  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1; use "
                             "0.0.0.0 to serve other hosts)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to listen on (default 0: ephemeral)")
    parser.add_argument("--token", default=None,
                        help="shared auth token clients must present "
                             "(default: $REPRO_SERVER_TOKEN, else none)")
    parser.add_argument("--data-dir", type=Path, required=True,
                        help="journal + result-store directory; restart "
                             "on the same directory to recover the queue")
    parser.add_argument("--backend", default="serial",
                        help="worker-pool backend for accepted jobs "
                             "(serial/thread/process/remote)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count (thread/process backends)")
    parser.add_argument("--addresses", default=None,
                        help="comma-separated host:port worker addresses "
                             "(remote backend)")
    parser.add_argument("--worker-token", default=None,
                        help="auth token for the remote worker fleet "
                             "(default: $REPRO_WORKER_TOKEN, else none)")
    parser.add_argument("--max-jobs-per-round", type=int, default=0,
                        help="cap on jobs multiplexed per scheduler "
                             "round (0 = all pending)")
    parser.add_argument("--metrics-interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="emit one merged fleet telemetry sample "
                             "each SECONDS to subscribed clients and "
                             "the time-series store (0 = off; "
                             "default 1.0)")
    parser.add_argument("--timeseries", type=Path, default=None,
                        metavar="DIR",
                        help="persist every fleet telemetry sample to "
                             "DIR/timeseries.jsonl (torn-tail-safe "
                             "JSONL; off by default)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-connection log lines")
    args = parser.parse_args(argv)

    token = args.token
    if token is None:
        token = os.environ.get("REPRO_SERVER_TOKEN") or None
    worker_token = args.worker_token
    if worker_token is None:
        worker_token = os.environ.get("REPRO_WORKER_TOKEN") or None
    addresses = None
    if args.addresses:
        addresses = parse_address_list(args.addresses)
    executor = ExecutorConfig(
        backend=args.backend,
        workers=args.workers,
        addresses=addresses,
        token=worker_token,
    )

    server = SearchServer(
        host=args.host, port=args.port, token=token,
        data_dir=args.data_dir, executor=executor,
        max_jobs_per_round=args.max_jobs_per_round,
        verbose=not args.quiet,
        metrics_interval=args.metrics_interval,
        timeseries=args.timeseries,
    ).start()
    print(f"server listening on {server.address}", flush=True)

    def _term(signum, frame):
        # SIGTERM = graceful stop: interrupt the round at the next
        # batch boundary, journal no terminal records for interrupted
        # jobs — they re-run on the next start
        print("server stopping (SIGTERM)", flush=True)
        server.stop()

    signal.signal(signal.SIGTERM, _term)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("server shutting down", flush=True)
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
