#!/usr/bin/env python
"""Quantize the whole model zoo with one shared-pool scheduler run.

The paper's Table 1 / Table 2 sweeps quantize every zoo model with the
same LPQ recipe.  This driver declares every job as a
:class:`repro.spec.SearchSpec` (model by registry reference —
``zoo:resnet18``, ``bench:vit`` — calibration as a descriptor) and
submits them all to one :class:`repro.serve.SearchScheduler`, so the
searches share a single executor pool instead of spinning one up per
model, and emits a JSON record (including each job's spec, replayable
via ``scripts/run_search.py --spec``) plus a Table-1-style summary.

Usage::

    PYTHONPATH=src python scripts/run_zoo_sweep.py \
        [--model resnet18 --model vit_b ...]  (default: all six zoo models)
        [--suite zoo|bench]   zoo = trained checkpoints (trains + caches
                              on first use); bench = the small synthetic
                              throughput-bench models (fast smoke run)
        [--backend serial|thread|process] [--workers N]
        [--calib 64] [--seed 0] [--effort fast|paper]
        [--no-eval]           skip the before/after top-1 evaluation
        [--out ZOO_sweep.json]

``--effort paper`` uses the paper's search budget (K=20, P=10, C=4);
``fast`` (default) is a reduced budget for quick sweeps.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.data import make_dataset  # noqa: E402
from repro.parallel import (  # noqa: E402
    BACKENDS,
    ExecutorConfig,
    parse_address_list,
)
from repro.quant import LPQConfig, bn_recalibrated, quantized  # noqa: E402
from repro.serve import SearchScheduler  # noqa: E402
from repro.spec import CalibSpec, SearchSpec, resolve_model  # noqa: E402


def search_config(effort: str, seed: int) -> LPQConfig:
    if effort == "paper":
        return LPQConfig(seed=seed)  # K=20, P=10, C=4, B=4
    return LPQConfig(
        population=6, passes=2, cycles=1, block_size=4,
        diversity_parents=5, hw_widths=(2, 4, 8), seed=seed,
    )


def sweep_specs(
    suite: str, names: list[str], calib: CalibSpec, config: LPQConfig
) -> list[SearchSpec]:
    """One declarative spec per model (``zoo:`` or ``bench:`` refs)."""
    return [
        SearchSpec(
            model=f"{suite}:{name}", calib=calib, config=config, name=name
        )
        for name in names
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", action="append", dest="models",
                        help="zoo model(s); repeatable (default: all)")
    parser.add_argument("--suite", choices=("zoo", "bench"), default="zoo")
    parser.add_argument("--backend", choices=BACKENDS, default="process")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--addresses", default=None,
                        help="comma-separated host:port workers "
                             "(remote backend)")
    parser.add_argument("--token", default=None,
                        help="worker auth token (remote backend)")
    parser.add_argument("--calib", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--effort", choices=("fast", "paper"),
                        default="fast")
    parser.add_argument("--no-eval", action="store_true",
                        help="skip before/after top-1 accuracy")
    parser.add_argument("--out", type=Path, default=Path("ZOO_sweep.json"))
    args = parser.parse_args(argv)

    if args.suite == "zoo":
        from repro.models import MODEL_REGISTRY

        names = args.models or sorted(MODEL_REGISTRY)
    else:
        from repro.perf.bench import BENCH_MODELS

        names = args.models or sorted(BENCH_MODELS)

    calib_spec = CalibSpec(batch=args.calib, seed=args.seed + 1)
    config = search_config(args.effort, args.seed)
    specs = sweep_specs(args.suite, names, calib_spec, config)
    calib = calib_spec.build()
    addresses = parse_address_list(args.addresses) if args.addresses else None
    executor = ExecutorConfig(
        backend=args.backend, workers=args.workers,
        addresses=addresses, token=args.token,
    )
    scheduler = SearchScheduler(executor=executor)
    for spec in specs:
        # submit resolves each zoo ref, training + caching checkpoints
        # on first use, so pool workers load from the cache
        scheduler.submit(spec.name, spec=spec)
    start = time.perf_counter()
    results = scheduler.run()
    wall = time.perf_counter() - start

    test = None
    if not args.no_eval:
        test = make_dataset("test", 512, seed=args.seed)

    record: dict = {
        "sweep": "zoo",
        "suite": args.suite,
        "backend": args.backend,
        "effort": args.effort,
        "calib": args.calib,
        "seed": args.seed,
        "wall_s": wall,
        "models": {},
    }
    failed = []
    print(f"zoo sweep: {len(specs)} jobs on one shared {args.backend} pool, "
          f"{wall:.1f}s total")
    for spec in specs:
        name = spec.name
        handle = scheduler.handles[name]
        if not handle.done:
            failed.append(name)
            print(f"[{name}] FAILED:\n{handle.error}")
            continue
        result = results[name]
        row = {
            "spec": spec.to_dict(),
            "mean_weight_bits": result.mean_weight_bits,
            "mean_act_bits": result.mean_act_bits,
            "model_size_mb": result.model_size_mb(),
            "fp_size_mb": sum(result.stats.param_counts) * 4 / 1e6,
            "fitness": result.fitness,
            "evaluations": result.evaluations,
        }
        line = (f"[{name}] W {result.mean_weight_bits:.2f}b  "
                f"A {result.mean_act_bits:.2f}b  "
                f"{result.model_size_mb():.3f} MB "
                f"(FP {row['fp_size_mb']:.3f} MB)  "
                f"{result.evaluations} evals")
        if test is not None:
            from repro.models.zoo import evaluate

            # checkpoint-cache load (trained during submit); one model
            # resident at a time during reporting
            model = resolve_model(spec.model)
            fp_acc = evaluate(model, test.images, test.labels)
            with quantized(model, result.solution, result.act_params):
                with bn_recalibrated(model, calib):
                    q_acc = evaluate(model, test.images, test.labels)
            row["fp_top1"] = fp_acc
            row["lp_top1"] = q_acc
            line += f"  top-1 {fp_acc:.2f}% -> {q_acc:.2f}%"
        record["models"][name] = row
        print(line)
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"record written to {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
