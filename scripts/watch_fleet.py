#!/usr/bin/env python
"""Live terminal view of a search daemon's fleet telemetry.

Connects to a :class:`repro.serve.SearchServer` (``run_server.py``) and
renders what the fleet is doing *right now*: per-worker evaluation
throughput, cache hit rates, queue depths, heartbeat latency, and fault
counters, all derived from the daemon's merged ``metrics`` frames (see
``docs/perf.md``).  Telemetry is passive — watching a fleet never
changes what it computes.

Three modes::

    # streaming table, redrawn per sample (ANSI when stdout is a tty)
    PYTHONPATH=src python scripts/watch_fleet.py 127.0.0.1:7400

    # machine-readable: one JSON object per line, no redraw
    PYTHONPATH=src python scripts/watch_fleet.py 127.0.0.1:7400 --json

    # one-shot fleet_status snapshot (works even with telemetry off)
    PYTHONPATH=src python scripts/watch_fleet.py 127.0.0.1:7400 \
        --json --once

``--samples N`` exits after N streamed samples (handy in scripts and
CI); the auth token comes from ``--token`` or ``$REPRO_SERVER_TOKEN``.
Streaming requires the daemon to run with ``--metrics-interval`` > 0;
``--once`` does not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.serve.server import SearchClient, ServerError  # noqa: E402


def _counter(delta: dict, name: str) -> int:
    return int(delta.get("counters", {}).get(name, 0))


def _fault_total(delta: dict) -> int:
    return sum(
        value
        for name, value in delta.get("counters", {}).items()
        if name.startswith("fault.")
    )


def _cache_cell(delta: dict) -> str:
    caches = delta.get("caches", {})
    if not caches:
        return "-"
    hits = sum(c.get("hits", 0) for c in caches.values())
    lookups = hits + sum(c.get("misses", 0) for c in caches.values())
    if not lookups:
        return "-"
    return f"{hits}/{lookups} ({hits / lookups:.0%})"


def render_table(message: dict, elapsed: float | None) -> str:
    """Format one merged ``metrics`` frame as a fixed-width table.

    ``elapsed`` is the wall-clock gap to the previous frame (None for
    the first), used to turn per-interval evaluation deltas into an
    evals/s rate.
    """
    lines = [
        f"fleet @ {message.get('source', '?')}   "
        f"seq {message.get('seq', '?')}",
    ]
    status = message.get("status") or {}
    lines.append(
        f"queue depth {status.get('queue_depth', 0)}   "
        f"workers {status.get('workers', 0)}   "
        f"jobs {len(status.get('jobs', {}))}"
    )
    header = (
        f"{'worker':<28} {'evals/s':>9} {'queue':>6} {'hb ms':>7} "
        f"{'cache hits':>16} {'faults':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    workers = message.get("workers") or []
    if not workers:
        lines.append("(no worker samples this interval)")
    for sample in sorted(workers, key=lambda s: str(s.get("source"))):
        delta = sample.get("delta") or {}
        gauges = sample.get("gauges") or {}
        evaluations = _counter(delta, "worker.evaluations")
        rate = (
            f"{evaluations / elapsed:.1f}"
            if elapsed and elapsed > 0 else str(evaluations)
        )
        heartbeat = gauges.get("heartbeat_ms")
        lines.append(
            f"{str(sample.get('source', '?')):<28} {rate:>9} "
            f"{gauges.get('queue_depth', 0):>6} "
            f"{heartbeat if heartbeat is not None else '-':>7} "
            f"{_cache_cell(delta):>16} {_fault_total(delta):>7}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("address",
                        help="search daemon host:port (run_server.py)")
    parser.add_argument("--token", default=None,
                        help="daemon auth token "
                             "(default: $REPRO_SERVER_TOKEN, else none)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print one JSON object per sample instead "
                             "of the terminal table")
    parser.add_argument("--once", action="store_true",
                        help="print a single fleet_status snapshot and "
                             "exit (no subscription needed)")
    parser.add_argument("--samples", type=int, default=0, metavar="N",
                        help="exit after N streamed samples "
                             "(0 = stream until interrupted)")
    args = parser.parse_args(argv)

    token = args.token
    if token is None:
        token = os.environ.get("REPRO_SERVER_TOKEN") or None
    client = SearchClient(args.address, token=token)
    try:
        if args.once:
            status = client.fleet_status()
            if args.as_json:
                print(json.dumps(status, sort_keys=True), flush=True)
            else:
                print(json.dumps(status, indent=2, sort_keys=True),
                      flush=True)
            return 0

        clear = sys.stdout.isatty() and not args.as_json
        seen = 0
        last_t: float | None = None
        for message in client.metrics_stream():
            t = message.get("t")
            elapsed = (
                t - last_t
                if isinstance(t, (int, float)) and last_t is not None
                else None
            )
            if isinstance(t, (int, float)):
                last_t = t
            if args.as_json:
                print(json.dumps(message, sort_keys=True), flush=True)
            else:
                if clear:
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(render_table(message, elapsed), flush=True)
            seen += 1
            if args.samples and seen >= args.samples:
                break
    except ServerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
