"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP-517 editable installs (which require ``bdist_wheel``) fail.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which only needs setuptools.
"""

from setuptools import setup

setup()
