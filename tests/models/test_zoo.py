"""Tests for the model zoo training/caching machinery."""

import numpy as np
import pytest

from repro.data import make_dataset
from repro.models import MODEL_REGISTRY, fp_model_size_mb, get_model, zoo_dir
from repro.models.zoo import evaluate


class TestRegistry:
    def test_all_six_paper_models_registered(self):
        assert set(MODEL_REGISTRY) == {
            "resnet18", "resnet50", "mobilenetv2", "vit_b", "deit_s", "swin_t"
        }

    def test_get_model_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model("alexnet")

    def test_fp_model_size(self):
        model = MODEL_REGISTRY["resnet18"].builder()
        size = fp_model_size_mb(model)
        assert size == pytest.approx(model.num_parameters() * 4 / 1e6)


class TestEvaluate:
    def test_evaluate_range(self):
        model = MODEL_REGISTRY["resnet18"].builder()
        ds = make_dataset("val", 64)
        acc = evaluate(model, ds.images, ds.labels)
        assert 0.0 <= acc <= 100.0

    def test_untrained_model_near_chance(self):
        from repro import nn

        nn.seed(123)
        model = MODEL_REGISTRY["resnet18"].builder()
        ds = make_dataset("val", 512)
        acc = evaluate(model, ds.images, ds.labels)
        assert acc < 30.0  # 16 classes -> chance is 6.25%


class TestTrainedCheckpoints:
    """These rely on the committed .zoo checkpoints (or train on first
    use, which is the intended cold-start behaviour)."""

    def test_resnet18_checkpoint_accurate(self):
        model = get_model("resnet18")
        ds = make_dataset("val", 512)
        acc = evaluate(model, ds.images, ds.labels)
        assert acc > 75.0, f"cached resnet18 only {acc:.1f}%"

    def test_checkpoint_loads_identically(self):
        m1 = get_model("resnet18")
        m2 = get_model("resnet18")
        x = make_dataset("val", 8).images
        np.testing.assert_allclose(m1(x), m2(x))

    def test_zoo_dir_exists(self):
        assert zoo_dir().is_dir()
