"""Tests for the model zoo architectures (shapes, backward, registry)."""

import numpy as np
import pytest

from repro import nn
from repro.data import make_dataset
from repro.models import (
    MODEL_REGISTRY,
    deit_s_mini,
    mobilenetv2_mini,
    resnet18_mini,
    resnet50_mini,
    swin_t_mini,
    vit_b_mini,
)

BUILDERS = {
    "resnet18": resnet18_mini,
    "resnet50": resnet50_mini,
    "mobilenetv2": mobilenetv2_mini,
    "vit_b": vit_b_mini,
    "deit_s": deit_s_mini,
    "swin_t": swin_t_mini,
}

X = np.random.default_rng(0).normal(0, 1, (2, 3, 32, 32)).astype(np.float32)


@pytest.mark.parametrize("name", sorted(BUILDERS))
class TestAllModels:
    def test_forward_shape(self, name):
        model = BUILDERS[name](num_classes=16)
        out = model(X)
        assert out.shape == (2, 16)
        assert np.isfinite(out).all()

    def test_backward_produces_grads(self, name):
        model = BUILDERS[name](num_classes=16)
        model.train()
        out = model(X)
        loss, grad = nn.cross_entropy(out, np.array([0, 1]))
        model.backward(grad)
        grads = [np.abs(p.grad).sum() for p in model.parameters()]
        nonzero = sum(g > 0 for g in grads)
        assert nonzero >= 0.9 * len(grads), f"{nonzero}/{len(grads)} grads"

    def test_state_dict_roundtrip(self, name):
        m1 = BUILDERS[name]()
        m2 = BUILDERS[name]()
        m2.load_state_dict(m1.state_dict())
        m1.eval(), m2.eval()
        np.testing.assert_allclose(m1(X), m2(X), rtol=1e-5, atol=1e-6)

    def test_quantizable_layer_count_stable(self, name):
        counts = {
            "resnet18": 21,
            "resnet50": 54,
            "mobilenetv2": 29,
            "vit_b": 26,
            "deit_s": 23,
            "swin_t": 19,
        }
        layers = nn.quantizable_layers(BUILDERS[name]())
        assert len(layers) == counts[name]

    def test_registry_contains_model(self, name):
        assert name in MODEL_REGISTRY


class TestTrainingStep:
    """One optimizer step must reduce loss on a fixed batch for every
    architecture family (resnets covered above; test one per family)."""

    @pytest.mark.parametrize("builder", [resnet18_mini, vit_b_mini, swin_t_mini])
    def test_loss_decreases(self, builder):
        nn.seed(3)
        ds = make_dataset("train", 64, seed=5)
        model = builder()
        model.train()
        opt = nn.Adam(model.parameters(), lr=2e-3)
        first = None
        for _ in range(6):
            opt.zero_grad()
            loss, grad = nn.cross_entropy(model(ds.images), ds.labels)
            if first is None:
                first = loss
            model.backward(grad)
            opt.step()
        final, _ = nn.cross_entropy(model(ds.images), ds.labels)
        assert final < first


class TestDeterministicInit:
    def test_seeded_construction_reproducible(self):
        nn.seed(11)
        m1 = resnet18_mini()
        nn.seed(11)
        m2 = resnet18_mini()
        for (n1, p1), (n2, p2) in zip(
            m1.named_parameters(), m2.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)


class TestStructure:
    def test_resnet50_uses_bottlenecks(self):
        from repro.models import Bottleneck

        model = resnet50_mini()
        blocks = [m for _, m in model.named_modules() if isinstance(m, Bottleneck)]
        assert len(blocks) == 16  # [3, 4, 6, 3]

    def test_mobilenet_has_depthwise(self):
        model = mobilenetv2_mini()
        dw = [
            m
            for _, m in model.named_modules()
            if isinstance(m, nn.Conv2d) and m.groups > 1
        ]
        assert dw and all(m.groups == m.in_channels for m in dw)

    def test_deit_has_distillation_token(self):
        model = deit_s_mini()
        assert hasattr(model, "dist_token")
        assert model.num_prefix == 2

    def test_swin_alternates_shifted_windows(self):
        from repro.models import SwinBlock

        model = swin_t_mini()
        shifts = [
            m.attn.shift for _, m in model.named_modules()
            if isinstance(m, SwinBlock)
        ]
        assert 0 in shifts and any(s > 0 for s in shifts)

    def test_downsampling_halves_resolution(self):
        model = resnet18_mini()
        feat = model.stem(X)
        assert feat.shape[2] == 32
        out = model.stages(feat)
        assert out.shape[2] == 4  # three stride-2 stages
