"""Executor backends: replicas, ordering, memoisation, perf merging."""

import pickle

import pytest

from repro.parallel import (
    EvaluatorSpec,
    ExecutorConfig,
    PopulationEvaluator,
    make_executor,
)
from repro.perf import PerfRegistry, diff_snapshots, reset_perf

from .parmodels import build_par_model


def _spec(par_setup, **kwargs):
    model, images, stats = par_setup
    kwargs.setdefault("images", images)
    kwargs.setdefault("stats", stats)
    if "builder" not in kwargs:
        kwargs.setdefault("model", model)
    return EvaluatorSpec(**kwargs)


class TestExecutorConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ExecutorConfig(backend="gpu")

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            ExecutorConfig(workers=0)

    def test_default_workers_positive(self):
        assert ExecutorConfig().resolved_workers() >= 1


class TestEvaluatorSpec:
    def test_requires_exactly_one_model_source(self, par_setup):
        model, images, _ = par_setup
        with pytest.raises(ValueError):
            EvaluatorSpec(images=images)
        with pytest.raises(ValueError):
            EvaluatorSpec(images=images, model=model, builder=build_par_model)

    def test_spec_with_builder_and_state_pickles(self, par_setup):
        model, images, stats = par_setup
        spec = EvaluatorSpec(
            images=images,
            builder=build_par_model,
            state=model.state_dict(),
            stats=stats,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.builder is build_par_model

    def test_spec_with_model_instance_pickles(self, par_setup):
        spec = _spec(par_setup)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.model is not spec.model

    def test_replicas_from_builder_and_model_agree(
        self, par_setup, candidates
    ):
        model, images, stats = par_setup
        from_model = _spec(par_setup).build(copy_model=True)
        from_builder = EvaluatorSpec(
            images=images,
            builder=build_par_model,
            state=model.state_dict(),
            stats=stats,
        ).build()
        for sol in candidates:
            assert from_model.evaluate(sol) == from_builder.evaluate(sol)


class TestBackendsAgree:
    def _serial_scores(self, par_setup, candidates):
        executor = make_executor(
            _spec(par_setup), ExecutorConfig("serial"), PerfRegistry()
        )
        return executor.evaluate_batch(candidates)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_matches_serial_in_order(
        self, par_setup, candidates, backend
    ):
        expected = self._serial_scores(par_setup, candidates)
        executor = make_executor(
            _spec(par_setup),
            ExecutorConfig(backend, workers=2),
            PerfRegistry(),
        )
        try:
            assert executor.evaluate_batch(candidates) == expected
            # a second batch reuses warm worker caches; values must not move
            assert executor.evaluate_batch(candidates) == expected
        finally:
            executor.close()

    def test_broken_spec_raises_instead_of_hanging(self, par_setup):
        """A spec whose replica build fails in the worker must surface a
        RuntimeError on the first task, not hang the pool."""
        from .parmodels import build_par_model

        model, images, stats = par_setup
        bad_state = {"bogus.weight": images}  # guaranteed load failure
        spec = EvaluatorSpec(
            images=images, builder=build_par_model, state=bad_state,
            stats=stats,
        )
        executor = make_executor(
            spec, ExecutorConfig("process", workers=1), PerfRegistry()
        )
        try:
            with pytest.raises(RuntimeError, match="failed to initialize"):
                executor.evaluate_batch([None])
        finally:
            executor.close()

    def test_single_worker_process_backend(self, par_setup, candidates):
        expected = self._serial_scores(par_setup, candidates)
        executor = make_executor(
            _spec(par_setup), ExecutorConfig("process", workers=1),
            PerfRegistry(),
        )
        try:
            assert executor.evaluate_batch(candidates) == expected
        finally:
            executor.close()


class TestPerfMerging:
    def test_worker_cache_traffic_reaches_main_registry(
        self, par_setup, candidates
    ):
        perf = reset_perf()
        with PopulationEvaluator(
            _spec(par_setup), ExecutorConfig("process", workers=2)
        ) as evaluator:
            evaluator.evaluate_many(candidates)
        snap = perf.snapshot()
        # the replicas' evaluation timers and cache stats must have been
        # merged back — a fan-out must not lose observability
        assert snap["timers"]["fitness.evaluate"]["count"] == len(candidates)
        assert snap["caches"]["quant.weight_cache"]["misses"] > 0
        # zero-delta counters are elided from the merged snapshot
        assert snap["counters"].get("replay.layers_reused", 0) >= 0

    def test_diff_snapshots_roundtrip(self):
        a = PerfRegistry()
        a.counter("c").inc(3)
        a.cache("k").hit(2)
        with a.timer("t").time():
            pass
        before = a.snapshot()
        a.counter("c").inc(4)
        a.cache("k").miss()
        delta = diff_snapshots(a.snapshot(), before)
        assert delta["counters"]["c"] == 4
        assert delta["caches"]["k"]["misses"] == 1
        assert delta["caches"]["k"]["hits"] == 0
        merged = PerfRegistry()
        merged.merge_snapshot(before)
        merged.merge_snapshot(delta)
        assert merged.counter("c").value == 7
        assert merged.cache("k").hits == 2
        assert merged.cache("k").misses == 1
        assert merged.timer("t").count == 1


class TestPopulationEvaluator:
    def test_memo_dedupes_within_and_across_batches(
        self, par_setup, candidates
    ):
        reset_perf()
        with PopulationEvaluator(_spec(par_setup)) as evaluator:
            batch = [candidates[0], candidates[1], candidates[0]]
            first = evaluator.evaluate_many(batch)
            assert first[0] == first[2]
            assert evaluator.computed_evaluations == 2
            assert evaluator.evaluations == 3
            again = evaluator.evaluate_many([candidates[1]])
            assert again == [first[1]]
            assert evaluator.computed_evaluations == 2  # memo hit
            assert evaluator.evaluations == 4

    def test_call_interface_matches_batch(self, par_setup, candidates):
        reset_perf()
        with PopulationEvaluator(_spec(par_setup)) as evaluator:
            assert evaluator(candidates[0]) == evaluator.evaluate_many(
                [candidates[0]]
            )[0]

    def test_rejects_external_act_params(self, par_setup, candidates):
        reset_perf()
        with PopulationEvaluator(_spec(par_setup)) as evaluator:
            with pytest.raises(ValueError):
                evaluator(candidates[0], act_params=[])

    def test_objective_spec_builds_output_evaluator(
        self, par_setup, candidates
    ):
        import numpy as np

        reset_perf()
        with PopulationEvaluator(
            _spec(par_setup, objective="mse")
        ) as evaluator:
            assert np.isfinite(evaluator(candidates[0]))
