"""Test models for the parallel executor suite.

Lives in a real module (not conftest) so ``EvaluatorSpec`` can pickle
the builder by reference for process workers.
"""

from repro import nn


class ParBNCNN(nn.Module):
    """Small BN CNN used across the executor tests (fast to evaluate)."""

    def __init__(self):
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, bias=False),
            nn.BatchNorm2d(6),
            nn.ReLU(),
            nn.Conv2d(6, 6, 3, padding=1, bias=False),
            nn.BatchNorm2d(6),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(6, 8, 3, padding=1, bias=False),
            nn.BatchNorm2d(8),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(8, 8)

    def forward(self, x):
        return self.head(self.pool(self.features(x)))


def build_par_model() -> nn.Module:
    """Module-level builder so EvaluatorSpec can pickle it by reference."""
    return ParBNCNN()
