"""Shared fixtures for the parallel population-evaluation tests."""

import numpy as np
import pytest

from repro import nn
from repro.data import calibration_batch
from repro.quant import collect_layer_stats

from .parmodels import ParBNCNN


@pytest.fixture(scope="module")
def par_setup():
    nn.seed(11)
    model = ParBNCNN()
    model.eval()
    images = calibration_batch(8, seed=5)
    stats = collect_layer_stats(model, images)
    return model, images, stats


@pytest.fixture()
def candidates(par_setup):
    from repro.quant import random_solution

    _, _, stats = par_setup
    rng = np.random.default_rng(3)
    return [
        random_solution(rng, len(stats), stats.weight_log_centers, (2, 4, 8))
        for _ in range(5)
    ]
