"""Search determinism across executor backends.

The hard guarantee of the parallel population engine: the genetic search
produces a bitwise-identical :class:`SearchHistory` no matter which
backend scores the candidates — serial, thread pool, or process pool —
and no matter how many workers share the batch.  The engine draws all
candidate RNG before any evaluation runs, and every replica's fast path
is bitwise-equal to the reference path, so fan-out must not move a
single bit.
"""

import numpy as np
import pytest

from repro import nn
from repro.data import calibration_batch
from repro.parallel import EvaluatorSpec, ExecutorConfig, PopulationEvaluator
from repro.quant import (
    FitnessConfig,
    FitnessEvaluator,
    LPQConfig,
    LPQEngine,
    collect_layer_stats,
    derive_activation_params,
)
from repro.perf import reset_perf

SEARCH = LPQConfig(
    population=3,
    passes=1,
    cycles=1,
    block_size=2,
    diversity_parents=3,
    hw_widths=(4, 8),
    seed=13,
)


def _search_history(par_setup, executor=None, fast=True):
    """Run the same search; returns (best fitness, history, solution)."""
    model, images, stats = par_setup
    reset_perf()
    if executor is None:
        evaluator = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=fast)
        )

        def evaluate(solution):
            return evaluator(solution, derive_activation_params(solution, stats))

        engine = LPQEngine(evaluate, stats.weight_log_centers, SEARCH)
        solution, fitness = engine.run()
        return fitness, engine.history, solution
    spec = EvaluatorSpec(images=images, model=model, stats=stats)
    with PopulationEvaluator(spec, executor) as evaluator:
        engine = LPQEngine(evaluator, stats.weight_log_centers, SEARCH)
        solution, fitness = engine.run()
    return fitness, engine.history, solution


class TestBackendDeterminism:
    def test_serial_backend_reproduces_closure_path(self, par_setup):
        fit_ref, hist_ref, sol_ref = _search_history(par_setup)
        fit, hist, sol = _search_history(
            par_setup, ExecutorConfig("serial")
        )
        assert fit == fit_ref
        assert hist.best_fitness == hist_ref.best_fitness
        assert hist.mean_bits == hist_ref.mean_bits
        assert sol == sol_ref

    @pytest.mark.parametrize("backend,workers", [
        ("thread", 2),
        ("process", 2),
        ("process", 3),
    ])
    def test_parallel_backend_identical_history(
        self, par_setup, backend, workers
    ):
        fit_ref, hist_ref, sol_ref = _search_history(
            par_setup, ExecutorConfig("serial")
        )
        fit, hist, sol = _search_history(
            par_setup, ExecutorConfig(backend, workers=workers)
        )
        assert fit == fit_ref
        assert hist.best_fitness == hist_ref.best_fitness
        assert hist.mean_bits == hist_ref.mean_bits
        assert sol == sol_ref

    def test_batched_step_matches_reference_path(self, par_setup):
        """The batched GA step must not change the slow path either."""
        fit_fast, hist_fast, _ = _search_history(par_setup, fast=True)
        fit_slow, hist_slow, _ = _search_history(par_setup, fast=False)
        assert fit_fast == fit_slow
        assert hist_fast.best_fitness == hist_slow.best_fitness


class TestLpqQuantizeExecutor:
    def test_lpq_quantize_executor_knob(self):
        """End-to-end: lpq_quantize(executor=...) matches the default."""
        from repro.quant import lpq_quantize

        nn.seed(11)
        from .parmodels import ParBNCNN

        model = ParBNCNN()
        model.eval()
        images = calibration_batch(8, seed=5)
        config = LPQConfig(population=3, passes=1, cycles=1, block_size=3,
                           diversity_parents=2, hw_widths=(4, 8), seed=2)
        res_default = lpq_quantize(model, images, config=config)
        res_process = lpq_quantize(
            model, images, config=config,
            executor=ExecutorConfig("process", workers=2),
        )
        assert res_default.fitness == res_process.fitness
        assert (
            res_default.history.best_fitness
            == res_process.history.best_fitness
        )
        assert res_default.solution == res_process.solution

    def test_lpq_quantize_executor_with_objective(self):
        from repro.quant import lpq_quantize

        nn.seed(11)
        from .parmodels import ParBNCNN

        model = ParBNCNN()
        model.eval()
        images = calibration_batch(8, seed=5)
        config = LPQConfig(population=3, passes=1, cycles=1, block_size=3,
                           diversity_parents=2, hw_widths=(4, 8), seed=2)
        res_default = lpq_quantize(
            model, images, config=config, objective="mse"
        )
        res_thread = lpq_quantize(
            model, images, config=config, objective="mse",
            executor=ExecutorConfig("thread", workers=2),
        )
        assert np.isfinite(res_thread.fitness)
        assert res_default.fitness == res_thread.fitness
