"""Engine mechanics: disable comments, baseline, registry wiring."""

import json
from pathlib import Path

from repro.analysis import engine as lint_engine
from repro.analysis.engine import (
    Finding,
    LintEngine,
    ModuleSource,
    Project,
    Rule,
    default_rules,
)
from repro.spec import registry as spec_registry


class AlwaysFire(Rule):
    """Test rule: one finding per module, on line 1."""

    name = "always-fire"
    description = "fires on every module"

    def check_module(self, module):
        yield module.finding(self.name, 1, "it fired")


def make_project(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return Project(tmp_path)


def test_project_walks_default_targets(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/a.py": "x = 1\n",
        "scripts/b.py": "y = 2\n",
        "benchmarks/c.py": "z = 3\n",
        "tests/d.py": "ignored = True\n",
    })
    assert sorted(m.path for m in project.modules) == [
        "benchmarks/c.py", "scripts/b.py", "src/repro/a.py",
    ]
    assert project.module("repro.a").dotted == "repro.a"


def test_parse_error_becomes_finding(tmp_path):
    project = make_project(tmp_path, {"src/bad.py": "def broken(:\n"})
    report = LintEngine([AlwaysFire()]).run(project)
    assert any(f.rule == "parse-error" for f in report.findings)


def test_disable_comment_suppresses_with_reason(tmp_path):
    project = make_project(tmp_path, {
        "src/a.py": "x = 1  # lint: disable=always-fire -- test reason\n",
    })
    report = LintEngine([AlwaysFire()]).run(project)
    assert report.findings == []
    assert len(report.disabled) == 1


def test_reasonless_disable_is_itself_a_finding(tmp_path):
    project = make_project(tmp_path, {
        "src/a.py": "x = 1  # lint: disable=always-fire\n",
    })
    report = LintEngine([AlwaysFire()]).run(project)
    assert [f.rule for f in report.findings] == ["lint-disable"]
    assert report.disabled  # the always-fire finding was still disabled


def test_disable_comment_only_covers_its_line(tmp_path):
    project = make_project(tmp_path, {
        "src/a.py": "x = 1\ny = 2  # lint: disable=always-fire -- reason\n",
    })
    report = LintEngine([AlwaysFire()]).run(project)
    # finding is on line 1; the disable on line 2 does not reach it
    assert [f.rule for f in report.findings] == ["always-fire"]


def test_baseline_grandfathers_by_key_not_line(tmp_path):
    project = make_project(tmp_path, {"src/a.py": "x = 1\n"})
    engine = LintEngine([AlwaysFire()])
    first = engine.run(project)
    assert first.exit_code == 1
    baseline_path = tmp_path / lint_engine.BASELINE_FILE
    lint_engine.save_baseline(baseline_path, first.findings)
    # the same finding at a different line still matches its key
    shifted = make_project(tmp_path, {"src/a.py": "\n\nx = 1\n"})
    report = engine.run(shifted, lint_engine.load_baseline(baseline_path))
    assert report.findings == []
    assert len(report.baselined) == 1
    assert report.exit_code == 0


def test_baseline_file_round_trip(tmp_path):
    path = tmp_path / "b.json"
    findings = [Finding("r", "src/a.py", 3, "msg")]
    lint_engine.save_baseline(path, findings)
    assert lint_engine.load_baseline(path) == {findings[0].key()}
    assert json.loads(path.read_text())["findings"]


def test_default_rules_come_from_registry():
    names = {rule.name for rule in default_rules()}
    assert {
        "wire-frame-coverage", "guarded-by", "determinism",
        "counter-namespace", "broad-except", "registry-bypass",
    } <= names
    # the family is a first-class registry citizen
    assert "lint_rule" in spec_registry.REGISTRIES
    assert set(spec_registry.names("lint_rule")) == names


def test_module_source_dotted_names(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/serve/__init__.py": "",
        "scripts/tool.py": "pass\n",
    })
    dotteds = {m.path: m.dotted for m in project.modules}
    assert dotteds["src/repro/serve/__init__.py"] == "repro.serve"
    assert dotteds["scripts/tool.py"] == "scripts.tool"


def test_repo_at_head_is_clean():
    """The acceptance bar: zero non-baselined findings on this repo."""
    report = lint_engine.run_lint(Path(__file__).parents[2])
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )
