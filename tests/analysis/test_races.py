"""LockOrderMonitor: cycle detection, self-deadlock, Condition hooks."""

import threading
import time

import pytest

from repro.analysis.races import (
    LockOrderMonitor,
    LockOrderViolation,
    lock_order_monitor,
)


def test_install_patches_and_uninstall_restores():
    real_lock, real_rlock = threading.Lock, threading.RLock
    monitor = lock_order_monitor()
    with monitor:
        assert threading.Lock is not real_lock
        lock = threading.Lock()
        assert lock.__class__.__name__ == "_Instrumented"
        assert not lock.locked()
    assert threading.Lock is real_lock
    assert threading.RLock is real_rlock


def test_consistent_order_is_clean():
    monitor = LockOrderMonitor()
    with monitor:
        a, b = threading.Lock(), threading.Lock()
        for _ in range(3):
            with a:
                with b:
                    pass
    assert monitor.violations == []
    assert monitor.report() == ""
    monitor.check()  # does not raise
    assert len(monitor.edges) == 1  # a->b, recorded once


def test_abba_cycle_is_detected_with_both_stacks():
    monitor = LockOrderMonitor()
    with monitor:
        a, b = threading.Lock(), threading.Lock()
        with a:
            with b:
                pass
        with b:
            with a:  # closes the a->b cycle
                pass
    assert len(monitor.violations) == 1
    text = monitor.violations[0]
    assert "lock-order cycle" in text
    assert "--- this acquisition ---" in text
    assert "--- prior conflicting acquisition ---" in text
    with pytest.raises(LockOrderViolation):
        monitor.check()


def test_three_lock_cycle_is_detected():
    monitor = LockOrderMonitor()
    with monitor:
        a, b, c = (threading.Lock() for _ in range(3))
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:  # a -> b -> c -> a
                pass
    assert any("lock-order cycle" in v for v in monitor.violations)


def test_cycle_found_across_threads():
    monitor = LockOrderMonitor()
    with monitor:
        a, b = threading.Lock(), threading.Lock()

        def forward():
            with a:
                with b:
                    pass

        thread = threading.Thread(target=forward)
        thread.start()
        thread.join(5)
        with b:
            with a:
                pass
    assert len(monitor.violations) == 1


def test_self_deadlock_raises_immediately():
    monitor = LockOrderMonitor()
    with monitor:
        lock = threading.Lock()
        lock.acquire()
        with pytest.raises(LockOrderViolation, match="self-deadlock"):
            lock.acquire()
        lock.release()
    assert any("self-deadlock" in v for v in monitor.violations)


def test_nonblocking_reacquire_does_not_raise():
    monitor = LockOrderMonitor()
    with monitor:
        lock = threading.Lock()
        lock.acquire()
        assert lock.acquire(blocking=False) is False
        lock.release()
    assert monitor.violations == []


def test_rlock_reentrancy_adds_no_edges():
    monitor = LockOrderMonitor()
    with monitor:
        rlock = threading.RLock()
        with rlock:
            with rlock:
                pass
    assert monitor.violations == []
    assert monitor.edges == {}


def test_condition_over_instrumented_lock():
    """threading.Condition built on an instrumented Lock keeps correct
    held-stack bookkeeping across wait()/notify() (the SearchServer
    wake-condition pattern)."""
    monitor = LockOrderMonitor()
    with monitor:
        lock = threading.Lock()
        cond = threading.Condition(lock)
        other = threading.Lock()
        ready = []

        def waiter():
            with cond:
                while not ready:
                    cond.wait(timeout=5)
                with other:  # held stack must be [lock] here, not stale
                    pass

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        with cond:
            ready.append(1)
            cond.notify()
        thread.join(5)
        assert not thread.is_alive()
        # the notifier took the lock while the waiter was parked in
        # wait(): _release_save/_acquire_restore kept that legal
        with other:
            pass
    assert monitor.violations == []
    # the only ordering edge is lock -> other, from the waiter
    assert len(monitor.edges) == 1


def test_wrapper_degrades_after_uninstall():
    monitor = LockOrderMonitor()
    monitor.install()
    lock = threading.Lock()
    monitor.uninstall()
    lock.acquire()
    lock.acquire(blocking=False)
    lock.release()
    assert monitor.edges == {}
    assert monitor.violations == []
