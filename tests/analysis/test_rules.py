"""One deliberately-bad fixture per rule, plus its clean twin.

Each test builds a tiny project tree under tmp_path, runs a single rule
through the engine, and asserts on the findings.  The front-end tests
at the bottom drive ``scripts/run_lint.py`` over the same bad trees and
check the acceptance bar: non-zero exit per bad fixture, zero on a
clean tree.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analysis.engine import LintEngine, Project
from repro.analysis.rules.broad_except import BroadExceptRule
from repro.analysis.rules.counter_namespace import (
    CounterNamespaceRule,
    load_declared_metrics,
)
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.guarded_by import GuardedByRule
from repro.analysis.rules.registry_bypass import RegistryBypassRule
from repro.analysis.rules.wire_frames import WireFrameCoverageRule

REPO = Path(__file__).resolve().parents[2]


def make_project(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return Project(tmp_path)


def run_rule(rule, tmp_path, files):
    return LintEngine([rule]).run(make_project(tmp_path, files)).findings


# ---------------------------------------------------------------- wire

WIRE_PY = '''\
def task_message(payload):
    return {"type": "task", "payload": payload}


def result_message(payload):
    return {"type": "result", "payload": payload}
'''

REMOTE_BAD = '''\
class SharedRemotePool:
    def _send_task(self, conn, payload):
        conn.send(task_message(payload))
        conn.send({"type": "cancel"})

    def _reader(self, msg):
        kind = msg.get("type")
        if kind == "result":
            return msg


class _WorkerSession:
    def _reader(self, msg):
        kind = msg.get("type")
        if kind == "task":
            return msg
        if kind == "shutdown":
            return None


class WorkerServer:
    def _report(self, conn, payload):
        conn.send(result_message(payload))
'''

SERVER_OK = '''\
class SearchClient:
    def submit(self, conn):
        conn.send({"type": "submit"})

    def _reader(self, msg):
        kind = msg.get("type")
        if kind == "event":
            return msg


class _ServerSession:
    def _handle(self, conn, msg):
        kind = msg.get("type")
        if kind == "submit":
            conn.send({"type": "event"})


class SearchServer:
    pass
'''


def wire_tree(remote_text):
    return {
        "src/repro/spec/wire.py": WIRE_PY,
        "src/repro/serve/remote.py": remote_text,
        "src/repro/serve/server.py": SERVER_OK,
    }


def test_wire_orphan_op_and_dead_handler(tmp_path):
    findings = run_rule(
        WireFrameCoverageRule(), tmp_path, wire_tree(REMOTE_BAD)
    )
    messages = [f.message for f in findings]
    assert any(
        "orphan op" in m and "'cancel'" in m and "pool->worker" in m
        for m in messages
    )
    assert any(
        "dead handler" in m and "'shutdown'" in m for m in messages
    )
    assert len(findings) == 2


def test_wire_clean_protocol(tmp_path):
    good = REMOTE_BAD.replace(
        '        conn.send({"type": "cancel"})\n', ""
    ).replace(
        '        if kind == "shutdown":\n            return None\n', ""
    )
    assert run_rule(WireFrameCoverageRule(), tmp_path, wire_tree(good)) == []


def test_wire_connection_frames_exempt(tmp_path):
    # a ping send with no handler, and a bye arm with no sender: both ok
    good = REMOTE_BAD.replace(
        '{"type": "cancel"}', '{"type": "ping"}'
    ).replace('"shutdown"', '"bye"')
    assert run_rule(WireFrameCoverageRule(), tmp_path, wire_tree(good)) == []


def test_wire_stale_class_list_is_a_finding(tmp_path):
    tree = wire_tree(REMOTE_BAD)
    tree["src/repro/serve/remote.py"] = REMOTE_BAD.replace(
        "class SharedRemotePool:", "class RenamedPool:"
    )
    findings = run_rule(WireFrameCoverageRule(), tmp_path, tree)
    assert any("stale" in f.message for f in findings)


# ----------------------------------------------------------- guarded-by

GUARDED_BAD = '''\
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1

    def reset(self):
        self.value = 0
'''


def test_guarded_by_flags_bare_write(tmp_path):
    findings = run_rule(
        GuardedByRule(), tmp_path, {"src/box.py": GUARDED_BAD}
    )
    assert len(findings) == 1
    assert findings[0].line == 14
    assert "Box.value" in findings[0].message


def test_guarded_by_clean_when_all_writes_guarded(tmp_path):
    good = GUARDED_BAD.replace(
        "    def reset(self):\n        self.value = 0\n",
        "    def reset(self):\n"
        "        with self._lock:\n"
        "            self.value = 0\n",
    )
    assert run_rule(GuardedByRule(), tmp_path, {"src/box.py": good}) == []


def test_guarded_by_init_writes_never_count(tmp_path):
    # the only write outside __init__ is guarded: construction is exempt
    good = GUARDED_BAD.replace(
        "    def reset(self):\n        self.value = 0\n", ""
    )
    assert run_rule(GuardedByRule(), tmp_path, {"src/box.py": good}) == []


def test_guarded_by_condition_alias_guards(tmp_path):
    text = '''\
import threading


class Waiter:
    def __init__(self):
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self.state = "idle"

    def run(self):
        with self._wake:
            self.state = "busy"

    def kill(self):
        self.state = "dead"
'''
    findings = run_rule(GuardedByRule(), tmp_path, {"src/w.py": text})
    assert len(findings) == 1
    assert "Waiter.state" in findings[0].message


# ---------------------------------------------------------- determinism

DETERMINISM_BAD = '''\
import random
import time

import numpy as np


def jitter():
    return time.time() + random.random() + np.random.rand()


def dump(perf):
    for key in perf.snapshot():
        yield key
'''


def test_determinism_flags_entropy_sources(tmp_path):
    findings = run_rule(
        DeterminismRule(), tmp_path, {"src/repro/quant/bad.py": DETERMINISM_BAD}
    )
    messages = " | ".join(f.message for f in findings)
    assert "time.time()" in messages
    assert "random.random" in messages
    assert "numpy.random.rand" in messages
    assert "snapshot()" in messages
    assert len(findings) == 4


def test_determinism_only_watches_engine_packages(tmp_path):
    # the same text outside repro.quant/numerics/parallel is ignored
    assert run_rule(
        DeterminismRule(), tmp_path,
        {"src/repro/obs/ok.py": DETERMINISM_BAD},
    ) == []


def test_determinism_allows_seeded_generators(tmp_path):
    good = '''\
import time

import numpy as np


def sample(seed):
    rng = np.random.default_rng(seed)
    start = time.monotonic()
    return rng.random(), time.monotonic() - start


def dump(perf):
    for key in sorted(perf.snapshot()):
        yield key
'''
    assert run_rule(
        DeterminismRule(), tmp_path, {"src/repro/quant/ok.py": good}
    ) == []


# ------------------------------------------------------ counter-namespace

PERF_MD = '''\
# Perf

## Counter namespaces

| name | kind | meaning |
| --- | --- | --- |
| `lpq.candidates` | counter | candidates scored |
| `lpq.stale` | timer | nothing creates this |

## Other section

| `not.a.metric` | counter | outside the section, ignored |
'''

COUNTER_BAD = '''\
def record(perf):
    perf.counter("lpq.candidates").add(1)
    perf.counter("lpq.bogus").add(1)
    perf.timer("fault.injected")
'''


def test_counter_namespace_both_directions(tmp_path):
    findings = run_rule(
        CounterNamespaceRule(), tmp_path,
        {"docs/perf.md": PERF_MD, "src/repro/lpq.py": COUNTER_BAD},
    )
    messages = " | ".join(f.message for f in findings)
    assert "'lpq.bogus'" in messages          # undeclared, known namespace
    assert "namespace 'fault'" in messages    # undeclared namespace
    assert "stale table row" in messages and "'lpq.stale'" in messages
    assert len(findings) == 3


def test_counter_namespace_kind_mismatch(tmp_path):
    findings = run_rule(
        CounterNamespaceRule(), tmp_path,
        {
            "docs/perf.md": PERF_MD.replace(
                "| `lpq.stale` | timer | nothing creates this |\n", ""
            ),
            "src/repro/lpq.py": (
                'def record(perf):\n'
                '    perf.timer("lpq.candidates")\n'
            ),
        },
    )
    assert len(findings) == 1
    assert "declared as a counter" in findings[0].message


def test_counter_namespace_name_attr_convention(tmp_path):
    # timer_name / memo_name class attributes carry metric names too
    findings = run_rule(
        CounterNamespaceRule(), tmp_path,
        {
            "docs/perf.md": PERF_MD.replace(
                "| `lpq.stale` | timer | nothing creates this |\n", ""
            ),
            "src/repro/ev.py": (
                "class Ev:\n"
                '    timer_name = "lpq.undeclared"\n'
                '    memo_name = "lpq.candidates"\n'
            ),
        },
    )
    messages = " | ".join(f.message for f in findings)
    assert "timer 'lpq.undeclared'" in messages
    assert "cache 'lpq.candidates'" in messages  # kind mismatch vs counter


def test_counter_namespace_missing_docs_is_a_finding(tmp_path):
    findings = run_rule(
        CounterNamespaceRule(), tmp_path, {"src/repro/a.py": "x = 1\n"}
    )
    assert [f.message for f in findings] == ["docs/perf.md is missing"]


def test_load_declared_metrics_scoped_to_section():
    declared = load_declared_metrics(PERF_MD)
    assert set(declared) == {"lpq.candidates", "lpq.stale"}
    assert declared["lpq.candidates"][0] == "counter"


# ----------------------------------------------------------- broad-except

BROAD_BAD = '''\
def swallow(work):
    try:
        work()
    except Exception:
        return None
'''


def test_broad_except_flags_silent_swallow(tmp_path):
    findings = run_rule(
        BroadExceptRule(), tmp_path, {"src/a.py": BROAD_BAD}
    )
    assert len(findings) == 1
    assert "except Exception" in findings[0].message


@pytest.mark.parametrize("clause", ["except:", "except BaseException:"])
def test_broad_except_flags_bare_and_base(tmp_path, clause):
    findings = run_rule(
        BroadExceptRule(), tmp_path,
        {"src/a.py": BROAD_BAD.replace("except Exception:", clause)},
    )
    assert len(findings) == 1


def test_broad_except_reraise_is_fine(tmp_path):
    good = BROAD_BAD.replace("        return None\n", "        raise\n")
    assert run_rule(BroadExceptRule(), tmp_path, {"src/a.py": good}) == []


def test_broad_except_narrow_type_is_fine(tmp_path):
    good = BROAD_BAD.replace("except Exception:", "except ValueError:")
    assert run_rule(BroadExceptRule(), tmp_path, {"src/a.py": good}) == []


def test_broad_except_justified_disable_suppresses(tmp_path):
    text = BROAD_BAD.replace(
        "except Exception:",
        "except Exception:"
        "  # lint: disable=broad-except -- boundary: becomes error result",
    )
    report = LintEngine([BroadExceptRule()]).run(
        make_project(tmp_path, {"src/a.py": text})
    )
    assert report.findings == []
    assert len(report.disabled) == 1


# -------------------------------------------------------- registry-bypass

BYPASS_BAD = '''\
from repro.numerics.formats import PositFormat


def build():
    return PositFormat(8)
'''


def test_registry_bypass_cross_package_import(tmp_path):
    findings = run_rule(
        RegistryBypassRule(), tmp_path,
        {"src/repro/quant/uses.py": BYPASS_BAD},
    )
    assert len(findings) == 1
    assert "PositFormat" in findings[0].message
    assert "'format_family'" in findings[0].message


def test_registry_bypass_relative_import_resolved(tmp_path):
    text = BYPASS_BAD.replace(
        "from repro.numerics.formats import", "from ..numerics.formats import"
    )
    findings = run_rule(
        RegistryBypassRule(), tmp_path,
        {"src/repro/quant/uses.py": text},
    )
    assert len(findings) == 1


def test_registry_bypass_home_package_is_fine(tmp_path):
    assert run_rule(
        RegistryBypassRule(), tmp_path,
        {"src/repro/numerics/helper.py": BYPASS_BAD},
    ) == []


def test_registry_bypass_ignores_unlisted_names(tmp_path):
    text = "from repro.numerics.formats import quantize_tensor\n"
    assert run_rule(
        RegistryBypassRule(), tmp_path,
        {"src/repro/quant/uses.py": text},
    ) == []


# ----------------------------------------------------- run_lint front end


def load_run_lint():
    spec = importlib.util.spec_from_file_location(
        "run_lint_under_test", REPO / "scripts" / "run_lint.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


BAD_TREES = {
    "wire-frame-coverage": wire_tree(REMOTE_BAD),
    "guarded-by": {"src/box.py": GUARDED_BAD},
    "determinism": {"src/repro/quant/bad.py": DETERMINISM_BAD},
    "counter-namespace": {
        "docs/perf.md": PERF_MD,
        "src/repro/lpq.py": COUNTER_BAD,
    },
    "broad-except": {"src/a.py": BROAD_BAD},
    "registry-bypass": {"src/repro/quant/uses.py": BYPASS_BAD},
}


@pytest.mark.parametrize("rule_name", sorted(BAD_TREES))
def test_run_lint_exits_nonzero_on_bad_fixture(tmp_path, capsys, rule_name):
    for rel, text in BAD_TREES[rule_name].items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    run_lint = load_run_lint()
    code = run_lint.main(["--root", str(tmp_path), "--json"])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert rule_name in {f["rule"] for f in report["findings"]}


def test_run_lint_exits_zero_on_clean_tree(tmp_path, capsys):
    files = {
        "docs/perf.md": PERF_MD.replace(
            "| `lpq.stale` | timer | nothing creates this |\n", ""
        ),
        "src/repro/lpq.py": (
            'def record(perf):\n'
            '    perf.counter("lpq.candidates").add(1)\n'
        ),
    }
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    run_lint = load_run_lint()
    assert run_lint.main(["--root", str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
