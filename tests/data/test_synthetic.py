"""Tests for the synthetic dataset substrate."""

import numpy as np
import pytest

from repro.data import NUM_CLASSES, calibration_batch, make_dataset


class TestDataset:
    def test_shapes_and_dtype(self):
        ds = make_dataset("train", 64)
        assert ds.images.shape == (64, 3, 32, 32)
        assert ds.images.dtype == np.float32
        assert ds.labels.shape == (64,)
        assert len(ds) == 64

    def test_deterministic(self):
        a = make_dataset("val", 32, seed=3)
        b = make_dataset("val", 32, seed=3)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_splits_differ(self):
        a = make_dataset("train", 32, seed=3)
        b = make_dataset("val", 32, seed=3)
        assert not np.array_equal(a.images, b.images)

    def test_seeds_differ(self):
        a = make_dataset("train", 32, seed=3)
        b = make_dataset("train", 32, seed=4)
        assert not np.array_equal(a.images, b.images)

    def test_all_classes_present(self):
        ds = make_dataset("train", 1024)
        assert set(ds.labels.tolist()) == set(range(NUM_CLASSES))

    def test_rejects_bad_split(self):
        with pytest.raises(ValueError):
            make_dataset("bogus", 8)

    def test_rejects_too_many_classes(self):
        with pytest.raises(ValueError):
            make_dataset("train", 8, num_classes=99)

    def test_values_bounded(self):
        ds = make_dataset("train", 128)
        assert np.abs(ds.images).max() < 10.0

    def test_batches_cover_dataset(self):
        ds = make_dataset("train", 100)
        total = sum(len(y) for _, y in ds.batches(32))
        assert total == 100

    def test_batches_shuffle(self):
        ds = make_dataset("train", 100)
        rng = np.random.default_rng(0)
        first_plain = next(iter(ds.batches(32)))[1]
        first_shuf = next(iter(ds.batches(32, rng)))[1]
        assert not np.array_equal(first_plain, first_shuf)


class TestClassesAreLearnable:
    def test_classes_statistically_distinct(self):
        """Per-class mean images must differ — the labels carry signal."""
        ds = make_dataset("train", 2048)
        means = np.stack(
            [ds.images[ds.labels == c].mean(axis=0).ravel() for c in range(4)]
        )
        dists = np.linalg.norm(means[:, None] - means[None, :], axis=-1)
        off_diag = dists[~np.eye(4, dtype=bool)]
        assert off_diag.min() > 0.1


class TestCalibration:
    def test_calibration_batch_shape(self):
        c = calibration_batch(128)
        assert c.shape == (128, 3, 32, 32)

    def test_calibration_differs_from_train_head(self):
        c = calibration_batch(16, seed=0)
        t = make_dataset("train", 16, seed=0)
        assert not np.array_equal(c, t.images)
