"""Tests for the experiment harnesses (smoke effort, cached models)."""

import numpy as np
import pytest

from repro.experiments import (
    EFFORTS,
    TABLE1,
    TABLE2,
    TABLE3,
    TABLE4,
    accuracy_profiles,
    format_table,
    get_lpq_result,
    lpq_row,
    paper_drop,
    resnet50_bits,
    run_fig1,
    run_fig5b,
    run_fig6,
    run_table3,
)


class TestReferenceConstants:
    def test_table1_lpq_beats_baselines_on_size(self):
        for model in ("resnet18", "resnet50", "mobilenetv2"):
            lpq_size = TABLE1["LPQ"][model][1]
            fp_size = TABLE1["baseline"][model][1]
            assert lpq_size < fp_size / 6

    def test_paper_drop_under_one_point(self):
        # the paper's own tables: CNN drops are <1.3pp each, ViT-B is the
        # outlier at 4.4pp; the abstract's "<1% average" is generous
        drops = [paper_drop(m) for m in
                 ("resnet18", "resnet50", "mobilenetv2", "vit_b", "deit_s",
                  "swin_t")]
        assert np.mean(drops) < 2.0

    def test_table3_density_ratio(self):
        assert TABLE3["LPA"][2] / TABLE3["ANT"][2] == pytest.approx(1.9, abs=0.2)

    def test_table4_orderings(self):
        assert TABLE4["LPA-2"][0] > TABLE4["LPA-2/4/8"][0] > TABLE4["LPA-8"][0]
        assert TABLE4["LPA-2"][1] == 0.0  # 2-bit everywhere collapses

    def test_table2_shapes(self):
        assert set(TABLE2["LPQ"]) == {"vit_b", "deit_s", "swin_t"}


class TestCommon:
    def test_efforts_defined(self):
        assert {"smoke", "fast", "paper"} <= set(EFFORTS)
        assert EFFORTS["paper"].config.population == 20
        assert EFFORTS["paper"].config.passes == 10
        assert EFFORTS["paper"].config.cycles == 4
        assert EFFORTS["paper"].calib == 128

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2], [3, 44]])
        assert "a" in out and "44" in out
        assert len(out.splitlines()) == 4

    def test_lpq_result_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ZOO_DIR", str(tmp_path))
        # copy the trained checkpoint so get_model does not retrain
        import shutil
        from repro.models import zoo_dir

        monkeypatch.delenv("REPRO_ZOO_DIR")
        src = zoo_dir() / "resnet18.npz"
        monkeypatch.setenv("REPRO_ZOO_DIR", str(tmp_path))
        shutil.copy(src, tmp_path / "resnet18.npz")
        _, sol1, _, _ = get_lpq_result("resnet18", "smoke")
        _, sol2, _, _ = get_lpq_result("resnet18", "smoke")
        assert sol1.encode().tolist() == sol2.encode().tolist()
        assert (tmp_path / "lpq_resnet18_smoke.json").exists()


class TestFig1:
    def test_accuracy_profiles_structure(self):
        prof = accuracy_profiles(points=33)
        assert set(prof["curves"]) >= {"AdaptivFloat"}
        for c in prof["curves"].values():
            assert c.shape == prof["magnitudes"].shape

    def test_run_fig1_claims(self):
        res = run_fig1()
        assert res["lp_taper_range"] > res["af_taper_range"]
        assert all(v > 0.4 for v in res["median_log10_spread"].values())


class TestQuantHarnesses:
    def test_lpq_row_fields(self):
        row = lpq_row("resnet18", "smoke")
        assert 2.0 <= row["w_bits"] <= 8.0
        assert row["size_mb"] < row["fp_size_mb"]
        assert 0.0 <= row["top1"] <= 100.0

    def test_resnet50_bits_cover_paper_layers(self):
        w, a = resnet50_bits("smoke")
        assert len(w) == len(a) == 54
        assert all(b in (2, 4, 8) for b in w)


class TestHardwareHarnesses:
    def test_table3_areas_match_paper(self):
        res = run_table3("smoke")
        for arch, (area, *_ ) in TABLE3.items():
            assert res["rows"][arch]["compute_area_um2"] == pytest.approx(
                area, rel=1e-3
            )

    def test_fig6_checks(self):
        res = run_fig6("smoke")
        assert res["checks"]["lpa_lowest_latency"]

    def test_fig5b_lp_best(self):
        res = run_fig5b()
        assert res["best_format"] == "lp"
