"""Property-based tests on quantization invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import LPParams, lp_quantize
from repro.quant import QuantSolution, compression_ratio, random_solution


def solution_strategy(num_layers=4):
    return st.integers(0, 10_000).map(
        lambda seed: random_solution(
            np.random.default_rng(seed), num_layers, [0.0] * num_layers
        )
    )


class TestSolutionProperties:
    @given(solution_strategy())
    @settings(max_examples=100, deadline=None)
    def test_compression_ratio_bounds(self, sol):
        """n ∈ [2, 8] implies L_CR ∈ [0.25, 1]."""
        r = compression_ratio(sol, [100] * len(sol))
        assert 0.25 <= r <= 1.0

    @given(solution_strategy())
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_stable(self, sol):
        """decode(encode(s)) is a fixed point (all fields feasible)."""
        once = QuantSolution.decode(sol.encode())
        twice = QuantSolution.decode(once.encode())
        assert once.encode().tolist() == twice.encode().tolist()

    @given(solution_strategy(), st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_mean_bits_changes_with_layer(self, sol, idx):
        new = sol.replace_layer(idx, LPParams(2, 0, 1, 0.0))
        assert new.mean_weight_bits() <= sol.mean_weight_bits()


class TestQuantizationErrorProperties:
    @given(
        st.integers(3, 8),
        st.floats(min_value=-4, max_value=4),
        st.integers(0, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_error_bounded_by_dynamic_range_clamp(self, n, sf, seed):
        """For values inside the dynamic range, relative error is bounded
        by the coarsest log-domain step of the format."""
        from repro.numerics import LogPositFormat

        params = LPParams(n, min(1, max(n - 3, 0)), 2, sf)
        fmt = LogPositFormat(params)
        lo, hi = fmt.dynamic_range()
        rng = np.random.default_rng(seed)
        x = np.exp2(rng.uniform(np.log2(lo) + 0.1, np.log2(hi) - 0.1, 50))
        q = fmt.quantize(x)
        # coarsest gap in log2 domain
        vals = fmt.all_values()
        vals = vals[np.isfinite(vals) & (vals > 0)]
        worst_gap = np.max(np.diff(np.log2(vals)))
        rel_log_err = np.abs(np.log2(q) - np.log2(x))
        assert np.all(rel_log_err <= worst_gap / 2 + 1e-9)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_quantized_dot_error_shrinks_with_bits(self, seed):
        """Dot-product error decreases from 3 to 8 bits *on average*
        (a single low-bit dot product can get lucky via cancellation)."""
        rng = np.random.default_rng(seed)
        from repro.numerics import tensor_log_center

        errs = {3: 0.0, 8: 0.0}
        for _ in range(16):
            w = rng.normal(0, 0.1, 256)
            a = rng.normal(0, 0.1, 256)
            exact = w @ a
            for n in errs:
                p = LPParams(n, min(1, max(n - 3, 0)), 2, tensor_log_center(w))
                errs[n] += abs(lp_quantize(w, p) @ a - exact)
        assert errs[8] <= errs[3] + 1e-12
