"""Shared fixtures: a small trained-ish model and calibration data."""

import numpy as np
import pytest

from repro import nn
from repro.data import calibration_batch, make_dataset


class TinyCNN(nn.Module):
    """Small conv net used across quant tests (fast to run)."""

    def __init__(self, num_classes: int = 16) -> None:
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(8, 16, 3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(16, 32, 3, padding=1),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(32, num_classes)

    def forward(self, x):
        return self.head(self.pool(self.features(x)))

    def backward(self, grad):
        return self.features.backward(
            self.pool.backward(self.head.backward(grad))
        )


@pytest.fixture(scope="session")
def tiny_model():
    """A TinyCNN briefly trained so weights/activations are structured."""
    nn.seed(7)  # deterministic regardless of test execution order
    rng = np.random.default_rng(0)
    train = make_dataset("train", 512, seed=1)
    model = TinyCNN()
    opt = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
    for _ in range(3):
        model.train()
        for xb, yb in train.batches(64, rng):
            opt.zero_grad()
            loss, grad = nn.cross_entropy(model(xb), yb)
            model.backward(grad)
            opt.step()
    model.eval()
    return model


@pytest.fixture(scope="session")
def calib_images():
    return calibration_batch(32, seed=3)


@pytest.fixture(scope="session")
def val_data():
    ds = make_dataset("val", 256, seed=1)
    return ds.images, ds.labels
