"""Incremental fitness engine: bitwise equivalence with the reference path."""

import numpy as np
import pytest

from repro import nn
from repro.data import calibration_batch
from repro.quant import (
    FitnessConfig,
    FitnessEvaluator,
    LPQConfig,
    WeightQuantCache,
    collect_layer_stats,
    derive_activation_params,
    lpq_quantize,
    random_solution,
)


class TinyBNCNN(nn.Module):
    """Small BN CNN: exercises the fused recalibration pass."""

    def __init__(self):
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, bias=False),
            nn.BatchNorm2d(6),
            nn.ReLU(),
            nn.Conv2d(6, 6, 3, padding=1, bias=False),
            nn.BatchNorm2d(6),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(6, 8, 3, padding=1, bias=False),
            nn.BatchNorm2d(8),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(8, 8)

    def forward(self, x):
        return self.head(self.pool(self.features(x)))


@pytest.fixture(scope="module")
def bn_setup():
    nn.seed(21)
    model = TinyBNCNN()
    model.eval()
    images = calibration_batch(8, seed=9)
    stats = collect_layer_stats(model, images)
    return model, images, stats


def _candidates(stats, count=6, seed=0):
    """Random candidates plus block-wise related variants (search-like)."""
    rng = np.random.default_rng(seed)
    sols = [
        random_solution(rng, len(stats), stats.weight_log_centers, (2, 4, 8))
        for _ in range(count)
    ]
    # consecutive candidates differing in a single layer, as in the GA
    for i in range(1, count):
        if i % 2 == 0:
            sols[i] = sols[i - 1].replace_layer(
                len(stats) - 1, sols[0][len(stats) - 1]
            )
    return sols


class TestBitwiseEquivalence:
    def test_bn_model_fast_equals_reference(self, bn_setup):
        model, images, stats = bn_setup
        slow = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=False)
        )
        fast = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        for sol in _candidates(stats):
            acts = derive_activation_params(sol, stats)
            assert slow(sol, acts) == fast(sol, acts)

    def test_bn_stats_restored_after_fast_eval(self, bn_setup):
        model, images, stats = bn_setup
        bns = [m for _, m in model.named_modules()
               if isinstance(m, nn.BatchNorm2d)]
        saved = [(bn.running_mean.copy(), bn.running_var.copy()) for bn in bns]
        fast = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        sol = _candidates(stats, count=1)[0]
        fast(sol, derive_activation_params(sol, stats))
        for bn, (mean, var) in zip(bns, saved):
            np.testing.assert_array_equal(bn.running_mean, mean)
            np.testing.assert_array_equal(bn.running_var, var)

    def test_ln_free_model_fast_equals_reference(self, tiny_model, calib_images):
        from repro.nn import quantizable_layers

        counts = [l.weight.size for _, l in quantizable_layers(tiny_model)]
        stats = collect_layer_stats(tiny_model, calib_images)
        slow = FitnessEvaluator(
            tiny_model, calib_images, counts, FitnessConfig(fast=False)
        )
        fast = FitnessEvaluator(
            tiny_model, calib_images, counts, FitnessConfig(fast=True)
        )
        for sol in _candidates(stats, count=4, seed=3):
            acts = derive_activation_params(sol, stats)
            assert slow(sol, acts) == fast(sol, acts)


class TestMemo:
    def test_duplicate_candidates_skip_computation(self, bn_setup):
        model, images, stats = bn_setup
        fast = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        sol = _candidates(stats, count=1)[0]
        acts = derive_activation_params(sol, stats)
        f1 = fast(sol, acts)
        computed = fast.computed_evaluations
        f2 = fast(sol, acts)
        assert f1 == f2
        assert fast.computed_evaluations == computed  # memo hit
        assert fast.evaluations == 2  # but both evaluations counted

    def test_reset_caches_recomputes_identically(self, bn_setup):
        model, images, stats = bn_setup
        fast = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        sol = _candidates(stats, count=1)[0]
        acts = derive_activation_params(sol, stats)
        f1 = fast(sol, acts)
        fast.reset_caches()
        assert fast(sol, acts) == f1
        assert fast.computed_evaluations == 2


class ReorderedNet(nn.Module):
    """Forward executes `second` before `first` — definition order lies."""

    def __init__(self):
        super().__init__()
        self.first = nn.Linear(12, 12)
        self.second = nn.Linear(12, 12)

    def forward(self, x):
        return self.first(self.second(x))


class TestExecutionOrderGuard:
    def test_reordered_forward_disables_replay_but_stays_correct(self):
        nn.seed(5)
        model = ReorderedNet()
        model.eval()
        images = np.random.default_rng(2).normal(size=(8, 12))
        stats = collect_layer_stats(model, images)
        slow = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=False)
        )
        fast = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        for sol in _candidates(stats, count=3, seed=1):
            acts = derive_activation_params(sol, stats)
            assert slow(sol, acts) == fast(sol, acts)
        # the guard must have tripped after the first full record pass
        assert not fast.fast


class TestEndToEndSearch:
    def test_search_trajectories_identical(self, bn_setup):
        model, images, _ = bn_setup
        config = LPQConfig(population=3, passes=1, cycles=1, block_size=2,
                           diversity_parents=2, hw_widths=(4, 8), seed=7)
        res_slow = lpq_quantize(model, images, config=config,
                                fitness_config=FitnessConfig(fast=False))
        res_fast = lpq_quantize(model, images, config=config,
                                fitness_config=FitnessConfig(fast=True))
        assert res_slow.fitness == res_fast.fitness
        assert res_slow.history.best_fitness == res_fast.history.best_fitness
        assert res_slow.solution == res_fast.solution


class TestOutputObjectiveEngine:
    """The Fig. 5(a) baseline evaluator shares the incremental engine."""

    @pytest.mark.parametrize("objective", ["mse", "kl", "cosine",
                                           "global_contrastive"])
    def test_bn_model_fast_equals_reference(self, bn_setup, objective):
        from repro.quant import OutputObjectiveEvaluator

        model, images, stats = bn_setup
        slow = OutputObjectiveEvaluator(
            model, images, stats.param_counts, objective,
            FitnessConfig(fast=False),
        )
        fast = OutputObjectiveEvaluator(
            model, images, stats.param_counts, objective,
            FitnessConfig(fast=True),
        )
        for sol in _candidates(stats, count=4, seed=5):
            acts = derive_activation_params(sol, stats)
            assert slow(sol, acts) == fast(sol, acts)

    def test_ln_free_model_fast_equals_reference(
        self, tiny_model, calib_images
    ):
        from repro.nn import quantizable_layers
        from repro.quant import OutputObjectiveEvaluator

        counts = [l.weight.size for _, l in quantizable_layers(tiny_model)]
        stats = collect_layer_stats(tiny_model, calib_images)
        slow = OutputObjectiveEvaluator(
            tiny_model, calib_images, counts, "mse", FitnessConfig(fast=False)
        )
        fast = OutputObjectiveEvaluator(
            tiny_model, calib_images, counts, "mse", FitnessConfig(fast=True)
        )
        for sol in _candidates(stats, count=4, seed=8):
            acts = derive_activation_params(sol, stats)
            assert slow(sol, acts) == fast(sol, acts)

    def test_counter_parity_with_fitness_evaluator(self, bn_setup):
        """Satellite parity: computed_evaluations + perf wiring exist."""
        from repro.perf import reset_perf
        from repro.quant import OutputObjectiveEvaluator

        model, images, stats = bn_setup
        perf = reset_perf()
        evaluator = OutputObjectiveEvaluator(
            model, images, stats.param_counts, "mse"
        )
        sol = _candidates(stats, count=1)[0]
        acts = derive_activation_params(sol, stats)
        f1 = evaluator(sol, acts)
        f2 = evaluator(sol, acts)
        assert f1 == f2
        assert evaluator.evaluations == 2
        assert evaluator.computed_evaluations == 1  # second was a memo hit
        snap = perf.snapshot()
        assert snap["timers"]["objective.evaluate"]["count"] == 1
        assert snap["caches"]["objective.memo"]["hits"] == 1

    def test_rejects_unknown_objective(self, bn_setup):
        from repro.quant import OutputObjectiveEvaluator

        model, images, stats = bn_setup
        with pytest.raises(ValueError):
            OutputObjectiveEvaluator(
                model, images, stats.param_counts, "nope"
            )


class TestWeightQuantCache:
    def test_cache_returns_identical_tensors(self, bn_setup):
        from repro.nn import quantizable_layers
        from repro.numerics import lp_quantize

        model, _, stats = bn_setup
        sol = _candidates(stats, count=1)[0]
        cache = WeightQuantCache(max_entries=8)
        layers = quantizable_layers(model)
        for i, (_, layer) in enumerate(layers):
            direct = lp_quantize(layer.weight.data, sol[i]).astype(
                layer.weight.data.dtype
            )
            np.testing.assert_array_equal(
                cache.quantized_weight(layer, sol[i]), direct
            )
            # second lookup is a hit and returns the same array object
            assert cache.quantized_weight(layer, sol[i]) is not None

    def test_lru_eviction_bounds_memory(self, bn_setup):
        from repro.nn import quantizable_layers
        from repro.numerics import LPParams

        model, _, _ = bn_setup
        _, layer = quantizable_layers(model)[0]
        cache = WeightQuantCache(max_entries=2)
        for n in (2, 4, 8):
            cache.quantized_weight(layer, LPParams(n=n, es=0, rs=2))
        assert len(cache) == 2


class TestPopulationVectorized:
    """``evaluate_many`` (stacked-LUT weight prefill + serial replay)
    must be bitwise-equal to calling the evaluator one candidate at a
    time — the vectorized path changes wall clock, never fitness."""

    def test_evaluate_many_equals_serial_loop(self, bn_setup):
        model, images, stats = bn_setup
        sols = _candidates(stats, count=6, seed=11)
        acts = [derive_activation_params(s, stats) for s in sols]
        one_by_one = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        serial = [one_by_one(s, a) for s, a in zip(sols, acts)]
        batched_eval = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        assert batched_eval.evaluate_many(sols, acts) == serial
        # second batch: all memoized, still identical
        assert batched_eval.evaluate_many(sols, acts) == serial

    def test_evaluate_many_matches_reference_path(self, bn_setup):
        model, images, stats = bn_setup
        sols = _candidates(stats, count=3, seed=4)
        acts = [derive_activation_params(s, stats) for s in sols]
        reference = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=False)
        )
        fast = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        assert fast.evaluate_many(sols, acts) == [
            reference(s, a) for s, a in zip(sols, acts)
        ]

    def test_prefill_counts_and_dedupes(self, bn_setup):
        from repro.perf import PerfRegistry

        model, images, stats = bn_setup
        sols = _candidates(stats, count=4, seed=2)
        perf = PerfRegistry()
        evaluator = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True),
            perf=perf,
        )
        filled = evaluator.prefill_weights(sols)
        assert filled > 0
        assert perf.counter("population.prefill_entries").value == filled
        assert evaluator.prefill_weights(sols) == 0  # warm: nothing to do

    def test_lut_registry_serves_repeat_formats(self, bn_setup):
        from repro.perf import get_perf, reset_perf

        model, images, stats = bn_setup
        sol = _candidates(stats, count=1, seed=8)[0]
        evaluator = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        evaluator(sol, derive_activation_params(sol, stats))  # build LUTs
        reset_perf()
        evaluator2 = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=True)
        )
        evaluator2(sol, derive_activation_params(sol, stats))
        stats_cache = get_perf().cache("numerics.lut_cache")
        # the process-wide registry answers every repeat format
        assert stats_cache.hits > 0
        assert stats_cache.misses == 0
