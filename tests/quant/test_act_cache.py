"""ActQuantCache: bitwise identity with uncached lp_quantize, identity
keying, and end-to-end equivalence of cached activation quantizers."""

import numpy as np
import pytest

from repro.numerics import LPParams, lp_quantize
from repro.quant import (
    ActQuantCache,
    QuantSolution,
    apply_quantization,
    clear_quantization,
    collect_layer_stats,
    derive_activation_params,
)
from repro.nn import quantizable_layers


@pytest.fixture()
def act_tensor():
    return np.random.default_rng(7).normal(0, 1.0, (4, 6, 8, 8)).astype(
        np.float32
    )


class _FakeLayer:
    pass


PARAMS = LPParams(n=6, es=1, rs=3, sf=0.5)


class TestBitwiseIdentity:
    def test_cached_equals_uncached(self, act_tensor):
        cache = ActQuantCache(max_entries=4)
        layer = _FakeLayer()
        direct = lp_quantize(act_tensor, PARAMS).astype(act_tensor.dtype)
        np.testing.assert_array_equal(
            cache.quantize(layer, act_tensor, PARAMS), direct
        )
        # the hit path returns the stored tensor — still bitwise equal
        hit = cache.quantize(layer, act_tensor, PARAMS)
        np.testing.assert_array_equal(hit, direct)

    def test_hit_requires_same_array_object(self, act_tensor):
        cache = ActQuantCache(max_entries=4)
        layer = _FakeLayer()
        first = cache.quantize(layer, act_tensor, PARAMS)
        twin = act_tensor.copy()  # equal contents, different identity
        second = cache.quantize(layer, twin, PARAMS)
        assert first is not second
        assert len(cache) == 2  # the twin occupied its own entry
        np.testing.assert_array_equal(first, second)

    def test_distinct_params_and_layers_are_distinct_entries(
        self, act_tensor
    ):
        cache = ActQuantCache(max_entries=8)
        a, b = _FakeLayer(), _FakeLayer()
        other = LPParams(n=4, es=0, rs=2, sf=0.5)
        cache.quantize(a, act_tensor, PARAMS)
        cache.quantize(a, act_tensor, other)
        cache.quantize(b, act_tensor, PARAMS)
        assert len(cache) == 3


class TestBookkeeping:
    def test_lru_eviction_bounds_memory(self, act_tensor):
        cache = ActQuantCache(max_entries=2)
        layer = _FakeLayer()
        for n in (2, 4, 6, 8):
            cache.quantize(layer, act_tensor, LPParams(n=n, es=0, rs=2))
        assert len(cache) == 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ActQuantCache(max_entries=0)

    def test_stats_wiring(self, act_tensor):
        from repro.perf import CacheStats

        stats = CacheStats("act")
        cache = ActQuantCache(max_entries=4, stats=stats)
        layer = _FakeLayer()
        cache.quantize(layer, act_tensor, PARAMS)
        cache.quantize(layer, act_tensor, PARAMS)
        assert stats.hits == 1
        assert stats.misses == 1

    def test_clear(self, act_tensor):
        cache = ActQuantCache(max_entries=4)
        cache.quantize(_FakeLayer(), act_tensor, PARAMS)
        cache.clear()
        assert len(cache) == 0


class TestEndToEnd:
    def test_forward_with_cached_quantizers_is_bitwise_identical(
        self, tiny_model, calib_images
    ):
        stats = collect_layer_stats(tiny_model, calib_images)
        layers = quantizable_layers(tiny_model)
        sol = QuantSolution(
            tuple(LPParams(4, 1, 2, stats.weight_log_centers[i])
                  for i in range(len(layers)))
        )
        acts = derive_activation_params(sol, stats)
        try:
            apply_quantization(tiny_model, sol, acts)
            plain = tiny_model(calib_images)
            cache = ActQuantCache(max_entries=32)
            apply_quantization(tiny_model, sol, acts, act_cache=cache)
            cached_once = tiny_model(calib_images)
            cached_again = tiny_model(calib_images)  # now served from cache
        finally:
            clear_quantization(tiny_model)
        np.testing.assert_array_equal(plain, cached_once)
        np.testing.assert_array_equal(plain, cached_again)
        assert len(cache) > 0
