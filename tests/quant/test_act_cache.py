"""ActQuantCache: bitwise identity with uncached lp_quantize, identity
keying, and end-to-end equivalence of cached activation quantizers."""

import numpy as np
import pytest

from repro.numerics import LPParams, lp_quantize
from repro.quant import (
    ActQuantCache,
    FitnessConfig,
    FitnessEvaluator,
    QuantSolution,
    apply_quantization,
    clear_quantization,
    collect_layer_stats,
    derive_activation_params,
)
from repro.nn import quantizable_layers


@pytest.fixture()
def act_tensor():
    return np.random.default_rng(7).normal(0, 1.0, (4, 6, 8, 8)).astype(
        np.float32
    )


class _FakeLayer:
    pass


PARAMS = LPParams(n=6, es=1, rs=3, sf=0.5)


class TestConfigurableCapacity:
    """``FitnessConfig.{weight,act}_cache_entries`` size the evaluator's
    LRU caches; evictions surface through the perf registry, which is
    where the bench summary reads them from."""

    def test_fitness_config_sets_cache_capacities(
        self, tiny_model, calib_images
    ):
        stats = collect_layer_stats(tiny_model, calib_images)
        evaluator = FitnessEvaluator(
            tiny_model, calib_images, stats.param_counts,
            FitnessConfig(
                fast=True, act_cache_entries=3, weight_cache_entries=9
            ),
        )
        assert evaluator._act_cache.max_entries == 3
        assert evaluator._weight_cache.max_entries == 9

    def test_tight_act_capacity_evicts_and_counts(
        self, tiny_model, calib_images
    ):
        from repro.perf import PerfRegistry
        from repro.quant import random_solution

        stats = collect_layer_stats(tiny_model, calib_images)
        perf = PerfRegistry()
        evaluator = FitnessEvaluator(
            tiny_model, calib_images, stats.param_counts,
            FitnessConfig(fast=True, act_cache_entries=1), perf=perf,
        )
        rng = np.random.default_rng(5)
        sol = random_solution(
            rng, len(stats), stats.weight_log_centers, (2, 4, 8)
        )
        evaluator(sol, derive_activation_params(sol, stats))
        assert perf.cache("quant.act_cache").evictions > 0

    def test_capacities_round_trip_through_search_spec(self):
        from repro.spec import CalibSpec, SearchSpec

        spec = SearchSpec(
            model="tiny:resnet", calib=CalibSpec(batch=4, seed=3),
            fitness=FitnessConfig(
                fast=True, act_cache_entries=5, weight_cache_entries=11
            ),
        )
        again = SearchSpec.from_dict(spec.to_dict())
        assert again.fitness.act_cache_entries == 5
        assert again.fitness.weight_cache_entries == 11


class TestBitwiseIdentity:
    def test_cached_equals_uncached(self, act_tensor):
        cache = ActQuantCache(max_entries=4)
        layer = _FakeLayer()
        direct = lp_quantize(act_tensor, PARAMS).astype(act_tensor.dtype)
        np.testing.assert_array_equal(
            cache.quantize(layer, act_tensor, PARAMS), direct
        )
        # the hit path returns the stored tensor — still bitwise equal
        hit = cache.quantize(layer, act_tensor, PARAMS)
        np.testing.assert_array_equal(hit, direct)

    def test_hit_requires_same_array_object(self, act_tensor):
        cache = ActQuantCache(max_entries=4)
        layer = _FakeLayer()
        first = cache.quantize(layer, act_tensor, PARAMS)
        twin = act_tensor.copy()  # equal contents, different identity
        second = cache.quantize(layer, twin, PARAMS)
        assert first is not second
        assert len(cache) == 2  # the twin occupied its own entry
        np.testing.assert_array_equal(first, second)

    def test_distinct_params_and_layers_are_distinct_entries(
        self, act_tensor
    ):
        cache = ActQuantCache(max_entries=8)
        a, b = _FakeLayer(), _FakeLayer()
        other = LPParams(n=4, es=0, rs=2, sf=0.5)
        cache.quantize(a, act_tensor, PARAMS)
        cache.quantize(a, act_tensor, other)
        cache.quantize(b, act_tensor, PARAMS)
        assert len(cache) == 3


class TestBookkeeping:
    def test_lru_eviction_bounds_memory(self, act_tensor):
        cache = ActQuantCache(max_entries=2)
        layer = _FakeLayer()
        for n in (2, 4, 6, 8):
            cache.quantize(layer, act_tensor, LPParams(n=n, es=0, rs=2))
        assert len(cache) == 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ActQuantCache(max_entries=0)

    def test_stats_wiring(self, act_tensor):
        from repro.perf import CacheStats

        stats = CacheStats("act")
        cache = ActQuantCache(max_entries=4, stats=stats)
        layer = _FakeLayer()
        cache.quantize(layer, act_tensor, PARAMS)
        cache.quantize(layer, act_tensor, PARAMS)
        assert stats.hits == 1
        assert stats.misses == 1

    def test_clear(self, act_tensor):
        cache = ActQuantCache(max_entries=4)
        cache.quantize(_FakeLayer(), act_tensor, PARAMS)
        cache.clear()
        assert len(cache) == 0


class TestEndToEnd:
    def test_forward_with_cached_quantizers_is_bitwise_identical(
        self, tiny_model, calib_images
    ):
        stats = collect_layer_stats(tiny_model, calib_images)
        layers = quantizable_layers(tiny_model)
        sol = QuantSolution(
            tuple(LPParams(4, 1, 2, stats.weight_log_centers[i])
                  for i in range(len(layers)))
        )
        acts = derive_activation_params(sol, stats)
        try:
            apply_quantization(tiny_model, sol, acts)
            plain = tiny_model(calib_images)
            cache = ActQuantCache(max_entries=32)
            apply_quantization(tiny_model, sol, acts, act_cache=cache)
            cached_once = tiny_model(calib_images)
            cached_again = tiny_model(calib_images)  # now served from cache
        finally:
            clear_quantization(tiny_model)
        np.testing.assert_array_equal(plain, cached_once)
        np.testing.assert_array_equal(plain, cached_again)
        assert len(cache) > 0
