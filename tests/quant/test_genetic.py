"""Tests for the LPQ genetic engine (Steps 1-4) and the high-level API."""

import numpy as np
import pytest

from repro.nn import quantizable_layers
from repro.numerics import LPParams
from repro.quant import (
    LPQConfig,
    LPQEngine,
    QuantSolution,
    lpq_quantize,
    quantized,
)

FAST = LPQConfig(
    population=6, passes=1, cycles=1, block_size=4, diversity_parents=2, seed=0
)


class BitCounterEvaluator:
    """Deterministic toy fitness: prefers (n−4)² + |sf| — optimum at n=4."""

    def __init__(self):
        self.evaluations = 0

    def __call__(self, solution, act_params=None):
        self.evaluations += 1
        return float(
            sum((p.n - 4) ** 2 + abs(p.sf) for p in solution.layer_params)
        )


class TestEngineMechanics:
    def _engine(self, layers=6, config=FAST):
        return LPQEngine(BitCounterEvaluator(), [0.0] * layers, config)

    def test_initialize_population_size(self):
        eng = self._engine()
        eng.initialize()
        assert len(eng.population) == FAST.population
        # ranked ascending by fitness
        fits = [f for _, f in eng.population]
        assert fits == sorted(fits)

    def test_blocks_cover_all_layers(self):
        eng = self._engine(layers=10)
        blocks = eng._blocks()
        covered = sorted(i for b in blocks for i in b)
        assert covered == list(range(10))
        assert all(len(b) <= FAST.block_size for b in blocks)

    def test_non_blockwise_single_block(self):
        cfg = LPQConfig(
            population=4, passes=1, cycles=1, blockwise=False, seed=0
        )
        eng = self._engine(layers=10, config=cfg)
        assert [list(b) for b in eng._blocks()] == [list(range(10))]

    def test_child_outside_block_copies_best_parent(self):
        eng = self._engine(layers=8)
        eng.initialize()
        best = eng.population[0][0]
        child = eng._make_child(best, eng.population[1][0], range(0, 4))
        for i in range(4, 8):
            assert child[i] == best[i]

    def test_run_improves_fitness(self):
        eng = self._engine(layers=8)
        eng.initialize()
        first = eng.history.best_fitness[0]
        sol, fit = eng.run()
        assert fit <= first
        # toy optimum drives n toward 4
        assert abs(sol.mean_weight_bits() - 4) < abs(8 - 4)

    def test_history_monotone_nonincreasing(self):
        eng = self._engine(layers=8)
        eng.run()
        hist = eng.history.best_fitness
        assert all(b <= a + 1e-12 for a, b in zip(hist, hist[1:]))

    def test_population_bounded(self):
        eng = self._engine(layers=8)
        eng.run()
        assert len(eng.population) <= FAST.population

    def test_diversity_off_fewer_evaluations(self):
        cfg_on = LPQConfig(population=4, passes=1, cycles=2, seed=0,
                           diversity=True, diversity_parents=3)
        cfg_off = LPQConfig(population=4, passes=1, cycles=2, seed=0,
                            diversity=False)
        e_on, e_off = BitCounterEvaluator(), BitCounterEvaluator()
        LPQEngine(e_on, [0.0] * 4, cfg_on).run()
        LPQEngine(e_off, [0.0] * 4, cfg_off).run()
        assert e_off.evaluations < e_on.evaluations

    def test_hw_width_constraint_enforced_throughout(self):
        cfg = LPQConfig(population=4, passes=2, cycles=1, seed=1,
                        hw_widths=(2, 4, 8))
        eng = LPQEngine(BitCounterEvaluator(), [0.0] * 6, cfg)
        sol, _ = eng.run()
        assert all(p.n in (2, 4, 8) for p in sol.layer_params)

    def test_seed_reproducible(self):
        s1, f1 = LPQEngine(BitCounterEvaluator(), [0.0] * 5, FAST).run()
        s2, f2 = LPQEngine(BitCounterEvaluator(), [0.0] * 5, FAST).run()
        assert f1 == f2
        assert s1.encode().tolist() == s2.encode().tolist()


class TestRegenerationEquations:
    """Eqs. 2-5: child field ranges derived from the parents."""

    def _regen(self, p1, p2, seed=0, trials=200):
        eng = LPQEngine(
            BitCounterEvaluator(), [0.0],
            LPQConfig(seed=seed, hw_widths=None),
        )
        return [eng._regenerate_layer(p1, p2, 0.0) for _ in range(trials)]

    def test_n_within_minmax_pm1(self):
        p1, p2 = LPParams(4, 1, 2, 0.0), LPParams(6, 1, 3, 0.0)
        children = self._regen(p1, p2)
        assert {c.n for c in children} <= {3, 4, 5, 6, 7}

    def test_es_within_minmax_pm1(self):
        p1, p2 = LPParams(8, 1, 3, 0.0), LPParams(8, 3, 3, 0.0)
        children = self._regen(p1, p2)
        assert {c.es for c in children} <= {0, 1, 2, 3, 4}

    def test_rs_bounded_by_mean_plus_one(self):
        p1, p2 = LPParams(8, 1, 4, 0.0), LPParams(8, 1, 6, 0.0)
        children = self._regen(p1, p2)
        assert max(c.rs for c in children) <= int(np.ceil((4 + 6) / 2)) + 1

    def test_sf_near_parent_mean(self):
        p1, p2 = LPParams(8, 1, 3, 2.0), LPParams(8, 1, 3, 4.0)
        children = self._regen(p1, p2)
        for c in children:
            assert abs(c.sf - 3.0) <= 1e-3 + 1e-9


class TestLpqQuantizeEndToEnd:
    def test_full_pipeline_on_tiny_model(self, tiny_model, calib_images, val_data):
        from repro.models.zoo import evaluate

        res = lpq_quantize(tiny_model, calib_images, config=FAST)
        assert len(res.solution) == len(quantizable_layers(tiny_model))
        assert len(res.act_params) == len(res.solution)
        assert res.evaluations > 0
        images, labels = val_data
        fp_acc = evaluate(tiny_model, images, labels)
        with quantized(tiny_model, res.solution, res.act_params):
            q_acc = evaluate(tiny_model, images, labels)
        # searched mixed precision keeps most of the accuracy
        assert q_acc >= fp_acc - 20.0
        assert res.mean_weight_bits <= 8.0

    def test_baseline_objective_pipeline(self, tiny_model, calib_images):
        res = lpq_quantize(
            tiny_model, calib_images, config=FAST, objective="mse"
        )
        assert np.isfinite(res.fitness)

    def test_rejects_unknown_objective(self, tiny_model, calib_images):
        with pytest.raises(ValueError):
            lpq_quantize(
                tiny_model, calib_images, config=FAST, objective="nope"
            )

    def test_compression_achieved(self, tiny_model, calib_images):
        res = lpq_quantize(tiny_model, calib_images, config=FAST)
        fp_mb = sum(res.stats.param_counts) * 4 / 1e6
        assert res.model_size_mb() < fp_mb / 3  # ≥3x smaller than FP32
