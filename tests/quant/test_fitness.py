"""Tests for kurtosis pooling, the contrastive objective, and L_CR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import LPParams
from repro.quant import (
    FitnessConfig,
    FitnessEvaluator,
    QuantSolution,
    compression_ratio,
    contrastive_objective,
    ir_fingerprints,
    kurtosis3,
    pool_representation,
)


class TestKurtosis:
    def test_gaussian_is_near_zero(self):
        x = np.random.default_rng(0).normal(0, 1, (8, 20000))
        k = kurtosis3(x, axis=1)
        assert np.all(np.abs(k) < 0.2)

    def test_heavy_tail_positive(self):
        x = np.random.default_rng(0).standard_t(3, (4, 20000))
        assert np.all(kurtosis3(x, axis=1) > 1.0)

    def test_uniform_negative(self):
        x = np.random.default_rng(0).uniform(-1, 1, (4, 20000))
        k = kurtosis3(x, axis=1)
        assert np.all(np.abs(k + 1.2) < 0.1)  # uniform excess kurtosis = -1.2

    def test_constant_rows_pool_to_zero(self):
        x = np.ones((3, 50))
        assert np.all(kurtosis3(x, axis=1) == 0.0)

    def test_scale_invariant(self):
        x = np.random.default_rng(1).normal(0, 1, (2, 5000))
        np.testing.assert_allclose(
            kurtosis3(x, axis=1), kurtosis3(100 * x, axis=1), rtol=1e-8
        )

    def test_pool_representation_shapes(self):
        assert pool_representation(np.random.rand(4, 8, 3, 3)).shape == (4,)
        assert pool_representation(np.random.rand(4, 100)).shape == (4,)


class TestContrastiveObjective:
    def test_identical_fingerprints_low_loss(self):
        f = np.random.default_rng(0).normal(size=(16, 10))
        same = contrastive_objective(f, f.copy())
        shuffled = contrastive_objective(f, np.roll(f, 1, axis=0))
        assert same < shuffled

    def test_degrades_with_noise_monotonically(self):
        rng = np.random.default_rng(0)
        f = rng.normal(size=(16, 12))
        losses = [
            contrastive_objective(f + rng.normal(0, s, f.shape), f)
            for s in (0.0, 0.5, 2.0)
        ]
        assert losses[0] < losses[1] < losses[2]

    def test_finite_for_extreme_values(self):
        f1 = np.full((4, 3), 1e8)
        f2 = -f1
        assert np.isfinite(contrastive_objective(f1, f2))

    @given(st.integers(2, 12), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_nonnegative(self, b, l):
        rng = np.random.default_rng(b * 100 + l)
        f1, f2 = rng.normal(size=(2, b, l))
        assert contrastive_objective(f1, f2) >= 0.0


class TestCompressionRatio:
    def test_all_8bit_is_one(self):
        sol = QuantSolution((LPParams(8, 2, 3, 0.0),) * 3)
        assert compression_ratio(sol, [10, 20, 30]) == 1.0

    def test_all_2bit_is_quarter(self):
        sol = QuantSolution((LPParams(2, 0, 1, 0.0),) * 2)
        assert compression_ratio(sol, [5, 5]) == 0.25

    def test_weighting_by_params(self):
        sol = QuantSolution((LPParams(8, 2, 3, 0.0), LPParams(2, 0, 1, 0.0)))
        # 8 bits on 1 param, 2 bits on 99 params
        r = compression_ratio(sol, [1, 99])
        assert r == pytest.approx((8 + 2 * 99) / (8 * 100))


class TestFitnessEvaluator:
    def test_lower_bits_lower_lcr_component(self, tiny_model, calib_images):
        from repro.nn import quantizable_layers

        n_layers = len(quantizable_layers(tiny_model))
        ev = FitnessEvaluator(
            tiny_model,
            calib_images,
            [layer.weight.size for _, layer in quantizable_layers(tiny_model)],
        )
        sol8 = QuantSolution((LPParams(8, 2, 3, 4.0),) * n_layers)
        sol2 = QuantSolution((LPParams(2, 0, 1, 4.0),) * n_layers)
        f8, f2 = ev(sol8), ev(sol2)
        # 8-bit: near-perfect IR match -> low L_CO; 2-bit destroys IRs.
        assert f8 < f2

    def test_restores_model(self, tiny_model, calib_images):
        from repro.nn import quantizable_layers

        layers = quantizable_layers(tiny_model)
        ev = FitnessEvaluator(
            tiny_model, calib_images, [l.weight.size for _, l in layers]
        )
        sol = QuantSolution(
            (LPParams(4, 1, 2, 0.0),) * len(layers)
        )
        ev(sol)
        assert all(l.weight_fq is None for _, l in layers)

    def test_counts_evaluations(self, tiny_model, calib_images):
        from repro.nn import quantizable_layers

        layers = quantizable_layers(tiny_model)
        ev = FitnessEvaluator(
            tiny_model, calib_images, [l.weight.size for _, l in layers]
        )
        sol = QuantSolution((LPParams(8, 2, 3, 0.0),) * len(layers))
        ev(sol), ev(sol)
        assert ev.evaluations == 2

    def test_mean_pooling_option(self, tiny_model, calib_images):
        from repro.nn import quantizable_layers

        layers = quantizable_layers(tiny_model)
        ev = FitnessEvaluator(
            tiny_model,
            calib_images,
            [l.weight.size for _, l in layers],
            FitnessConfig(pooling="mean"),
        )
        sol = QuantSolution((LPParams(8, 2, 3, 0.0),) * len(layers))
        assert np.isfinite(ev(sol))

    def test_fingerprint_shape(self, tiny_model, calib_images):
        from repro.nn import quantizable_layers

        names = [n for n, _ in quantizable_layers(tiny_model)]
        f = ir_fingerprints(tiny_model, calib_images, names)
        assert f.shape == (len(calib_images), len(names))
