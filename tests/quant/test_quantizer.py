"""Tests for fake-quantization application and activation-param rules."""

import numpy as np
import pytest

from repro.nn import quantizable_layers
from repro.numerics import LPParams, lp_quantize
from repro.quant import (
    QuantSolution,
    apply_quantization,
    clear_quantization,
    collect_layer_stats,
    derive_activation_params,
    quantized,
)


def _uniform_solution(model, n=8, es=2, rs=3, sf=4.0):
    layers = quantizable_layers(model)
    return QuantSolution(tuple(LPParams(n, es, rs, sf) for _ in layers))


class TestCollectStats:
    def test_stats_cover_all_layers(self, tiny_model, calib_images):
        stats = collect_layer_stats(tiny_model, calib_images)
        assert len(stats) == len(quantizable_layers(tiny_model))
        assert all(c > 0 for c in stats.param_counts)
        assert all(np.isfinite(c) for c in stats.weight_log_centers)
        assert all(np.isfinite(c) for c in stats.act_log_centers)

    def test_weight_centers_track_distributions(self, tiny_model, calib_images):
        stats = collect_layer_stats(tiny_model, calib_images)
        for (_, layer), center in zip(
            quantizable_layers(tiny_model), stats.weight_log_centers
        ):
            w = np.abs(layer.weight.data)
            mean_log = -np.mean(np.log2(w[w > 0]))
            assert center == pytest.approx(mean_log, rel=1e-5)


class TestApplyQuantization:
    def test_weights_projected_onto_lp_grid(self, tiny_model):
        sol = _uniform_solution(tiny_model, n=4, es=1, rs=2)
        apply_quantization(tiny_model, sol)
        for i, (_, layer) in enumerate(quantizable_layers(tiny_model)):
            expected = lp_quantize(layer.weight.data, sol[i])
            np.testing.assert_allclose(layer.weight_fq, expected, rtol=1e-6)
        clear_quantization(tiny_model)

    def test_fp_weights_untouched(self, tiny_model):
        before = {n: p.data.copy() for n, p in tiny_model.named_parameters()}
        sol = _uniform_solution(tiny_model, n=2, es=0, rs=1)
        apply_quantization(tiny_model, sol)
        clear_quantization(tiny_model)
        for n, p in tiny_model.named_parameters():
            np.testing.assert_array_equal(p.data, before[n])

    def test_context_manager_restores(self, tiny_model, calib_images):
        sol = _uniform_solution(tiny_model, n=3, es=0, rs=2)
        fp_out = tiny_model(calib_images)
        with quantized(tiny_model, sol):
            q_out = tiny_model(calib_images)
        restored = tiny_model(calib_images)
        np.testing.assert_allclose(fp_out, restored)
        assert not np.allclose(fp_out, q_out)  # 3-bit must differ

    def test_8bit_nearly_lossless(self, tiny_model, calib_images):
        stats = collect_layer_stats(tiny_model, calib_images)
        layers = quantizable_layers(tiny_model)
        sol = QuantSolution(
            tuple(
                LPParams(8, 1, 3, stats.weight_log_centers[i])
                for i in range(len(layers))
            )
        )
        fp_out = tiny_model(calib_images)
        with quantized(tiny_model, sol):
            q_out = tiny_model(calib_images)
        rel = np.linalg.norm(q_out - fp_out) / np.linalg.norm(fp_out)
        assert rel < 0.1

    def test_rejects_layer_count_mismatch(self, tiny_model):
        with pytest.raises(ValueError):
            apply_quantization(
                tiny_model, QuantSolution((LPParams(8, 2, 3, 0.0),))
            )

    def test_activation_quantizers_installed_from_layer1(
        self, tiny_model, calib_images
    ):
        stats = collect_layer_stats(tiny_model, calib_images)
        sol = _uniform_solution(tiny_model, n=4, es=1, rs=2)
        act = derive_activation_params(sol, stats)
        apply_quantization(tiny_model, sol, act)
        layers = quantizable_layers(tiny_model)
        assert layers[0][1].input_fq is None  # image input not quantized
        assert all(layer.input_fq is not None for _, layer in layers[1:])
        clear_quantization(tiny_model)


class TestActivationRules:
    def test_paper_field_rules(self, tiny_model, calib_images):
        """n_act = min(8, 2 n_w), es_act = min(5, 2 es_w), rs_act = rs_w."""
        stats = collect_layer_stats(tiny_model, calib_images)
        sol = _uniform_solution(tiny_model, n=4, es=1, rs=3)
        act = derive_activation_params(sol, stats)
        for ap in act:
            assert ap.n == 8
            assert ap.es == 2
            assert ap.rs == 3

    def test_act_bits_capped_at_8(self, tiny_model, calib_images):
        stats = collect_layer_stats(tiny_model, calib_images)
        sol = _uniform_solution(tiny_model, n=8, es=2, rs=3)
        act = derive_activation_params(sol, stats)
        assert all(ap.n == 8 for ap in act)

    def test_calibrated_sf_matches_act_centers(self, tiny_model, calib_images):
        stats = collect_layer_stats(tiny_model, calib_images)
        sol = _uniform_solution(tiny_model, n=4, es=1, rs=2)
        act = derive_activation_params(sol, stats, mode="calibrated")
        for ap, center in zip(act, stats.act_log_centers):
            assert ap.sf == pytest.approx(center)

    def test_recurrence_mode(self, tiny_model, calib_images):
        """Paper rule: sf_act^l = sf_act^{l-1} + sf_w^l."""
        stats = collect_layer_stats(tiny_model, calib_images)
        layers = quantizable_layers(tiny_model)
        sols = QuantSolution(
            tuple(LPParams(4, 1, 2, 0.5) for _ in layers)
        )
        act = derive_activation_params(
            sols, stats, mode="recurrence", input_log_center=1.0
        )
        expected = 1.0
        for ap in act:
            expected += 0.5
            assert ap.sf == pytest.approx(expected)

    def test_recurrence_accumulates_heterogeneous_sf(
        self, tiny_model, calib_images
    ):
        """sf_act^l must be the running sum of all weight sfs so far
        (plus the input log-centre), not just the local layer's."""
        stats = collect_layer_stats(tiny_model, calib_images)
        layers = quantizable_layers(tiny_model)
        sfs = [0.25 * (i + 1) for i in range(len(layers))]
        sol = QuantSolution(
            tuple(LPParams(4, 1, 2, sf) for sf in sfs)
        )
        act = derive_activation_params(sol, stats, mode="recurrence")
        running = 0.0
        for ap, sf in zip(act, sfs):
            running += sf
            assert ap.sf == pytest.approx(running)

    def test_recurrence_ignores_calibration_centers(
        self, tiny_model, calib_images
    ):
        """Recurrence mode models the PPU's analytic scale chain: the
        calibrated activation centres must play no role."""
        stats = collect_layer_stats(tiny_model, calib_images)
        shifted = type(stats)(
            stats.names,
            stats.param_counts,
            stats.weight_log_centers,
            [c + 100.0 for c in stats.act_log_centers],
        )
        sol = _uniform_solution(tiny_model, n=4, es=1, rs=2, sf=0.5)
        a = derive_activation_params(sol, stats, mode="recurrence")
        b = derive_activation_params(sol, shifted, mode="recurrence")
        assert a == b
        calibrated = derive_activation_params(sol, shifted, mode="calibrated")
        assert calibrated != a

    def test_recurrence_keeps_field_rules(self, tiny_model, calib_images):
        """n/es/rs derivation is mode-independent (Section 4 rules)."""
        stats = collect_layer_stats(tiny_model, calib_images)
        sol = _uniform_solution(tiny_model, n=4, es=1, rs=3)
        rec = derive_activation_params(sol, stats, mode="recurrence")
        cal = derive_activation_params(sol, stats, mode="calibrated")
        for r, c in zip(rec, cal):
            assert (r.n, r.es, r.rs) == (c.n, c.es, c.rs) == (8, 2, 3)

    def test_rejects_unknown_mode(self, tiny_model, calib_images):
        stats = collect_layer_stats(tiny_model, calib_images)
        sol = _uniform_solution(tiny_model)
        with pytest.raises(ValueError):
            derive_activation_params(sol, stats, mode="bogus")
