"""Tests for the Δ-vector solution encoding and search-space clamping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import LPParams
from repro.quant import QuantSolution, clamp_lp_params, random_solution


class TestClamp:
    def test_clamps_n_range(self):
        assert clamp_lp_params(0, 0, 2, 0.0).n == 2
        assert clamp_lp_params(12, 0, 2, 0.0).n == 8

    def test_clamps_es_to_n_minus_3(self):
        p = clamp_lp_params(6, 9, 2, 0.0)
        assert p.es == 3

    def test_clamps_rs_to_n_minus_1(self):
        p = clamp_lp_params(6, 0, 9, 0.0)
        assert p.rs == 5
        assert clamp_lp_params(6, 0, 0, 0.0).rs == 2

    def test_hw_widths_snap_to_powers_of_two(self):
        # equidistant n (e.g. 6) snaps to the cheaper width
        for n, want in [(2, 2), (3, 2), (5, 4), (6, 4), (7, 8), (8, 8)]:
            assert clamp_lp_params(n, 0, 2, 0.0, hw_widths=(2, 4, 8)).n == want

    @given(
        st.integers(-5, 20), st.integers(-5, 20), st.integers(-5, 20),
        st.floats(-10, 10),
    )
    @settings(max_examples=200, deadline=None)
    def test_always_valid(self, n, es, rs, sf):
        p = clamp_lp_params(n, es, rs, sf)
        assert 2 <= p.n <= 8
        assert 0 <= p.es <= max(p.n - 3, 0)
        assert 2 <= p.rs <= max(p.n - 1, 2)


class TestQuantSolution:
    def _sol(self):
        return QuantSolution(
            (LPParams(8, 2, 3, 0.5), LPParams(4, 1, 2, -1.0), LPParams(2, 0, 1, 0.0))
        )

    def test_encode_decode_roundtrip(self):
        sol = self._sol()
        back = QuantSolution.decode(sol.encode())
        # decode clamps; the first two layers are already feasible
        assert back[0] == sol[0].clamped()
        assert back[1] == sol[1].clamped()

    def test_encode_length_4n(self):
        assert self._sol().encode().shape == (12,)

    def test_decode_rejects_bad_length(self):
        with pytest.raises(ValueError):
            QuantSolution.decode(np.zeros(7))

    def test_mean_weight_bits(self):
        assert self._sol().mean_weight_bits() == pytest.approx((8 + 4 + 2) / 3)

    def test_weighted_bits_respects_param_counts(self):
        sol = self._sol()
        wb = sol.weighted_bits([100, 100, 800])
        assert wb == pytest.approx((8 * 100 + 4 * 100 + 2 * 800) / 1000)

    def test_model_size(self):
        sol = self._sol()
        size = sol.model_size_mb([1000, 1000, 1000])
        assert size == pytest.approx((8 + 4 + 2) * 1000 / 8 / 1e6)

    def test_replace_layer(self):
        sol = self._sol()
        new = sol.replace_layer(1, LPParams(6, 1, 3, 0.0))
        assert new[1].n == 6
        assert sol[1].n == 4  # original untouched


class TestRandomSolution:
    def test_respects_search_space(self):
        rng = np.random.default_rng(0)
        centers = [0.0, 2.0, -3.0, 4.0]
        for _ in range(50):
            sol = random_solution(rng, 4, centers)
            for i, p in enumerate(sol.layer_params):
                assert 2 <= p.n <= 8
                assert abs(p.sf - centers[i]) <= 1e-3 + 1e-9

    def test_hw_widths(self):
        rng = np.random.default_rng(0)
        sol = random_solution(rng, 8, [0.0] * 8, hw_widths=(2, 4, 8))
        assert all(p.n in (2, 4, 8) for p in sol.layer_params)

    def test_rejects_center_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_solution(rng, 3, [0.0, 1.0])
