"""Tests for the LP (Logarithmic Posit) data type — paper Section 3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import (
    LogPositFormat,
    LPParams,
    PositFormat,
    lp_decode,
    lp_quantize,
    quantization_rmse,
    relative_decimal_accuracy,
    tensor_log_center,
)


def lp_param_strategy():
    return st.integers(min_value=3, max_value=8).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.integers(min_value=0, max_value=max(n - 3, 0)),
            st.integers(min_value=2, max_value=max(n - 1, 2)),
            st.floats(min_value=-8.0, max_value=8.0),
        )
    )


class TestLPDecodeStructure:
    def test_zero(self):
        p = LPParams(8, 2, 3, 0.0)
        assert lp_decode(np.array([0]), p)[0] == 0.0

    def test_nar(self):
        p = LPParams(8, 2, 3, 0.0)
        assert np.isnan(lp_decode(np.array([0x80]), p)[0])

    def test_one(self):
        # 0 10 00 000: k=0, ulfx=0 -> 2^0 = 1 (sf=0)
        p = LPParams(8, 2, 3, 0.0)
        assert lp_decode(np.array([0b01000000]), p)[0] == 1.0

    def test_log_domain_fraction(self):
        # 0 10 00 100: k=0, e=0, f'=0.5 -> 2^0.5 (NOT 1.5: LP fraction is log2)
        p = LPParams(8, 2, 3, 0.0)
        assert lp_decode(np.array([0b01000100]), p)[0] == pytest.approx(2**0.5)

    def test_exponent_field(self):
        # 0 10 01 000: k=0, e=1 -> 2^1
        p = LPParams(8, 2, 3, 0.0)
        assert lp_decode(np.array([0b01001000]), p)[0] == 2.0

    def test_regime_value(self):
        # 0 110 01 00: k=1 (run of two 1s), es=2 -> 2^(4+1)=32 with e=1
        p = LPParams(8, 2, 3, 0.0)
        assert lp_decode(np.array([0b01100100]), p)[0] == 32.0

    def test_scale_factor_shifts_everything(self):
        p0 = LPParams(8, 2, 3, 0.0)
        p2 = LPParams(8, 2, 3, 2.0)
        patterns = np.arange(1, 128)
        v0 = lp_decode(patterns, p0)
        v2 = lp_decode(patterns, p2)
        assert np.allclose(v2, v0 / 4.0)

    def test_regime_cap_rs(self):
        """rs caps the regime run; LP<8,0,2> cannot reach posit<8,0>'s range."""
        lp_small_rs = LogPositFormat(LPParams(8, 0, 2, 0.0))
        lp_big_rs = LogPositFormat(LPParams(8, 0, 7, 0.0))
        assert lp_big_rs.dynamic_range()[1] > lp_small_rs.dynamic_range()[1]

    def test_negative_twos_complement(self):
        p = LPParams(8, 2, 3, 0.0)
        pos = lp_decode(np.array([0b01000100]), p)[0]
        neg = lp_decode(np.array([(1 << 8) - 0b01000100]), p)[0]
        assert neg == -pos


class TestLPQuantize:
    def test_idempotent(self):
        p = LPParams(8, 2, 3, 1.3)
        x = np.random.default_rng(0).normal(0, 1, 100)
        q = lp_quantize(x, p)
        assert np.allclose(lp_quantize(q, p), q)

    def test_sign_symmetry(self):
        p = LPParams(6, 1, 3, 0.7)
        x = np.linspace(-4, 4, 81)
        assert np.allclose(lp_quantize(x, p), -lp_quantize(-x, p))

    def test_zero_preserved(self):
        p = LPParams(8, 2, 3, 0.0)
        assert lp_quantize(np.array([0.0]), p)[0] == 0.0

    def test_clamps_not_underflows(self):
        p = LPParams(8, 2, 3, 0.0)
        fmt = LogPositFormat(p)
        minpos, maxpos = fmt.dynamic_range()
        assert lp_quantize(np.array([1e-20]), p)[0] == pytest.approx(minpos)
        assert lp_quantize(np.array([1e20]), p)[0] == pytest.approx(maxpos)

    def test_wider_n_reduces_error(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 0.05, 2000)
        sf = tensor_log_center(x)
        errs = [
            quantization_rmse(LogPositFormat(LPParams(n, 1, 3, sf)), x)
            for n in (4, 6, 8)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_es_doubles_dynamic_range(self):
        """Paper: 'Each increment in es doubles the dynamic range' (log scale)."""
        for es in (0, 1, 2):
            lo0, hi0 = LogPositFormat(LPParams(8, es, 3, 0.0)).dynamic_range()
            lo1, hi1 = LogPositFormat(LPParams(8, es + 1, 3, 0.0)).dynamic_range()
            assert np.log2(hi1) / np.log2(hi0) == pytest.approx(2.0, rel=0.35)

    def test_sf_centers_accuracy_region(self):
        """Moving sf toward the tensor's log-center reduces error."""
        rng = np.random.default_rng(2)
        x = rng.normal(0, 0.01, 2000)  # centered near 2^-7
        good = LPParams(6, 1, 3, tensor_log_center(x))
        bad = LPParams(6, 1, 3, 0.0)
        assert quantization_rmse(LogPositFormat(good), x) < quantization_rmse(
            LogPositFormat(bad), x
        )

    def test_quantize_equals_encode_decode(self):
        p = LPParams(7, 1, 4, 0.33)
        fmt = LogPositFormat(p)
        x = np.random.default_rng(3).normal(0, 1, 500)
        assert np.allclose(fmt.quantize(x), fmt.decode(fmt.encode(x)))


class TestLPTaperedAccuracy:
    """Fig. 1(b): LP has tapered relative accuracy, floats are flat."""

    def test_peak_at_sf_center(self):
        fmt = LogPositFormat(LPParams(8, 1, 4, 0.0))
        mags = np.logspace(-4, 4, 41)
        acc = relative_decimal_accuracy(fmt, mags)
        peak = mags[np.argmax(acc)]
        assert 0.25 <= peak <= 4.0  # peak near magnitude 1 when sf=0

    def test_taper_monotone_decay(self):
        fmt = LogPositFormat(LPParams(8, 1, 4, 0.0))
        mags = np.logspace(0, 4, 17)
        acc = relative_decimal_accuracy(fmt, mags)
        # accuracy at the far edge is lower than at the centre
        assert acc[-1] < acc[0]

    def test_sf_moves_peak(self):
        mags = np.logspace(-6, 2, 65) * 1.0317  # avoid exact code points
        f0 = LogPositFormat(LPParams(8, 1, 4, 0.0))
        f4 = LogPositFormat(LPParams(8, 1, 4, 4.0))
        a0 = relative_decimal_accuracy(f0, mags)
        a4 = relative_decimal_accuracy(f4, mags)
        # compare accuracy centroids in log-magnitude space
        c0 = np.sum(np.log10(mags) * a0) / np.sum(a0)
        c4 = np.sum(np.log10(mags) * a4) / np.sum(a4)
        assert c4 < c0 - 0.5  # sf>0 shifts accuracy toward small magnitudes


class TestLPParamsValidation:
    def test_clamping_rules(self):
        p = LPParams(4, 3, 7, 0.0)
        assert p.es_eff == 1  # n-3
        assert p.rs_eff == 3  # n-1

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            LPParams(1, 0, 2, 0.0)
        with pytest.raises(ValueError):
            LPParams(8, -1, 2, 0.0)
        with pytest.raises(ValueError):
            LPParams(8, 0, 0, 0.0)

    def test_random_within_search_space(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            p = LPParams.random(rng)
            assert 2 <= p.n <= 8
            assert 0 <= p.es <= max(p.n - 3, 0)
            assert 2 <= p.rs <= max(p.n - 1, 2)
            assert -1e-3 <= p.sf <= 1e-3


class TestLPProperties:
    @given(lp_param_strategy())
    @settings(max_examples=100, deadline=None)
    def test_decode_encode_roundtrip_all_patterns(self, params):
        n, es, rs, sf = params
        fmt = LogPositFormat(LPParams(n, es, rs, sf))
        patterns = fmt.all_patterns()
        values = fmt.decode(patterns)
        finite = np.isfinite(values) & (values != 0)
        q = fmt.quantize(values[finite])
        assert np.allclose(q, values[finite], rtol=1e-12)

    @given(
        lp_param_strategy(),
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=30,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, params, xs):
        n, es, rs, sf = params
        fmt = LogPositFormat(LPParams(n, es, rs, sf))
        x = np.sort(np.asarray(xs))
        q = fmt.quantize(x)
        assert np.all(np.diff(q) >= 0)

    @given(lp_param_strategy())
    @settings(max_examples=60, deadline=None)
    def test_value_set_symmetric(self, params):
        n, es, rs, sf = params
        fmt = LogPositFormat(LPParams(n, es, rs, sf))
        vals = fmt.all_values()
        vals = vals[np.isfinite(vals)]
        assert np.allclose(np.sort(-vals), np.sort(vals))

    @given(
        lp_param_strategy(),
        st.floats(min_value=1e-4, max_value=1e4),
    )
    @settings(max_examples=150, deadline=None)
    def test_log_domain_rounding_error_bound(self, params, x):
        """Within the dynamic range, log-domain rounding error of the
        quantized magnitude is at most half the local ulfx step."""
        n, es, rs, sf = params
        p = LPParams(n, es, rs, sf)
        fmt = LogPositFormat(p)
        lo, hi = fmt.dynamic_range()
        if not (lo <= x <= hi):
            return
        q = fmt.quantize(np.array([x]))[0]
        vals = fmt.all_values()
        vals = vals[np.isfinite(vals) & (vals > 0)]
        logv = np.log2(vals)
        i = min(np.searchsorted(vals, q), len(vals) - 1)
        gap_left = logv[i] - logv[i - 1] if i > 0 else np.inf
        gap_right = logv[i + 1] - logv[i] if i + 1 < len(vals) else np.inf
        err = abs(np.log2(q) - np.log2(x))
        assert err <= max(gap_left, gap_right) / 2 + 1e-9

    @given(lp_param_strategy())
    @settings(max_examples=40, deadline=None)
    def test_standard_posit_is_lp_special_case_range(self, params):
        """With rs=n-1 and sf=0, LP's dynamic range equals posit's."""
        n, es, rs, sf = params
        lp = LogPositFormat(LPParams(n, es, n - 1, 0.0))
        po = PositFormat(n, min(es, max(n - 3, 0)))
        lo_lp, hi_lp = lp.dynamic_range()
        lo_po, hi_po = po.dynamic_range()
        assert hi_lp == pytest.approx(hi_po)
        assert lo_lp == pytest.approx(lo_po)


class TestLPQuantizeMany:
    """The population-vectorized path must equal pair-by-pair
    quantization bitwise — grouping and stacking change wall clock,
    never bits."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(lp_param_strategy(), min_size=1, max_size=6),
        st.integers(0, 2**32 - 1),
    )
    def test_bitwise_equals_single_pair_path(self, raw_params, seed):
        from repro.numerics import lp_quantize_many

        rng = np.random.default_rng(seed)
        params, tensors = [], []
        for i, (n, es, rs, sf) in enumerate(raw_params):
            params.append(LPParams(n, es, rs, sf))
            shape = [(3, 4), (2, 3, 2), (5,)][i % 3]
            tensors.append(
                rng.normal(0, 2.0 ** rng.integers(-4, 5), shape)
            )
        many = lp_quantize_many(tensors, params)
        for got, x, p in zip(many, tensors, params):
            ref = lp_quantize(x, p)
            assert got.dtype == ref.dtype and got.shape == ref.shape
            assert got.tobytes() == ref.tobytes()

    def test_shared_format_group_handles_specials(self):
        """NaN, ±0, negatives, and shared ⟨n,es,rs⟩ with different sf
        all ride one stacked pass."""
        from repro.numerics import lp_quantize_many

        base = dict(n=6, es=1, rs=3)
        params = [
            LPParams(sf=0.0, **base),
            LPParams(sf=2.5, **base),
            LPParams(sf=-3.0, **base),
        ]
        x = np.array([np.nan, -0.0, 0.0, -1.5, 1e-8, 3e7], dtype=np.float64)
        tensors = [x, x * 2, -x]
        many = lp_quantize_many(tensors, params)
        for got, t, p in zip(many, tensors, params):
            ref = lp_quantize(t, p)
            assert got.tobytes() == ref.tobytes()

    def test_empty_and_single_groups(self):
        from repro.numerics import lp_quantize_many

        assert lp_quantize_many([], []) == []
        x = np.arange(4, dtype=np.float64)
        p = LPParams(5, 1, 2, 0.0)
        (only,) = lp_quantize_many([x], [p])
        assert only.tobytes() == lp_quantize(x, p).tobytes()
