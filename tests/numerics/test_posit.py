"""Tests for the standard posit format against known ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import PositFormat, posit_decode, posit_encode


class TestPositDecodeKnownValues:
    """Hand-computed code points from the posit standard."""

    def test_zero_pattern(self):
        assert posit_decode(np.array([0]), 8, 1)[0] == 0.0

    def test_nar_pattern_is_nan(self):
        assert np.isnan(posit_decode(np.array([0x80]), 8, 1)[0])

    def test_one(self):
        # 0 1 0 ... : sign 0, regime "10" -> k=0, e=0, f=0 -> 1.0
        assert posit_decode(np.array([0b01000000]), 8, 0)[0] == 1.0

    def test_minus_one(self):
        assert posit_decode(np.array([0b11000000]), 8, 0)[0] == -1.0

    def test_posit8_0_half(self):
        # 0 01 00000 : k=-1, es=0 -> 2^-1
        assert posit_decode(np.array([0b00100000]), 8, 0)[0] == 0.5

    def test_posit8_0_fraction(self):
        # 0 10 10000 : k=0, f=0.5 -> 1.5
        assert posit_decode(np.array([0b01010000]), 8, 0)[0] == 1.5

    def test_posit8_1_exponent(self):
        # 0 10 1 0000 : k=0, e=1, f=0 -> 2^(2*0+1) = 2
        assert posit_decode(np.array([0b01010000]), 8, 1)[0] == 2.0

    def test_posit6_2_maxpos(self):
        # maxpos posit<6,2>: 0 11111 -> k=4, scale=2^(4*4)=65536
        assert posit_decode(np.array([0b011111]), 6, 2)[0] == 2.0 ** 16

    def test_posit6_2_minpos(self):
        # minpos: 0 00001 -> k=-4 -> 2^-16
        assert posit_decode(np.array([0b000001]), 6, 2)[0] == 2.0 ** -16

    def test_posit16_1_value(self):
        # posit<16,1>: 0 0001 1 0111011101 -> k=-3, e=1, f=477/1024
        pattern = 0b0000110111011101
        expected = 2.0 ** -5 * (1 + 477 / 1024)
        assert posit_decode(np.array([pattern]), 16, 1)[0] == pytest.approx(expected)

    def test_negative_is_twos_complement(self):
        pos = posit_decode(np.array([0b01010000]), 8, 1)[0]
        neg_pattern = (1 << 8) - 0b01010000
        neg = posit_decode(np.array([neg_pattern]), 8, 1)[0]
        assert neg == -pos


class TestPositEncode:
    def test_exact_roundtrip_all_patterns(self):
        for n, es in [(6, 0), (6, 1), (8, 0), (8, 1), (8, 2)]:
            fmt = PositFormat(n, es)
            patterns = fmt.all_patterns()
            values = fmt.decode(patterns)
            finite = np.isfinite(values)
            re_encoded = fmt.encode(values[finite])
            assert np.array_equal(
                fmt.decode(re_encoded), values[finite]
            ), f"roundtrip failed for posit<{n},{es}>"

    def test_clamps_to_maxpos(self):
        fmt = PositFormat(8, 1)
        _, maxpos = fmt.dynamic_range()
        assert fmt.quantize(np.array([1e30]))[0] == maxpos

    def test_clamps_to_minpos_no_underflow(self):
        fmt = PositFormat(8, 1)
        minpos, _ = fmt.dynamic_range()
        assert fmt.quantize(np.array([1e-30]))[0] == minpos

    def test_zero_maps_to_zero(self):
        assert PositFormat(8, 1).quantize(np.array([0.0]))[0] == 0.0

    def test_sign_symmetry(self):
        fmt = PositFormat(8, 2)
        x = np.linspace(-5, 5, 101)
        assert np.allclose(fmt.quantize(x), -fmt.quantize(-x))

    def test_value_count(self):
        # n-bit posit has 2^n patterns: 0, NaR, and 2^n - 2 nonzero values
        fmt = PositFormat(8, 1)
        vals = fmt.all_values()
        finite = vals[np.isfinite(vals)]
        assert len(finite) == 2**8 - 1  # includes 0


class TestPositProperties:
    @given(
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=0, max_value=2),
        st.floats(
            min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_quantize_idempotent(self, n, es, x):
        fmt = PositFormat(n, es)
        q1 = fmt.quantize(np.array([x]))
        q2 = fmt.quantize(q1)
        assert q1[0] == q2[0]

    @given(
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=1e-6, max_value=1e6),
    )
    @settings(max_examples=200, deadline=None)
    def test_quantize_within_neighbor_gap(self, n, es, x):
        """Quantized value must be one of the two neighbours of x."""
        fmt = PositFormat(n, es)
        vals = fmt.all_values()
        vals = vals[np.isfinite(vals) & (vals > 0)]
        q = fmt.quantize(np.array([x]))[0]
        xc = min(max(x, vals[0]), vals[-1])
        lo = vals[np.searchsorted(vals, xc, side="right") - 1]
        hi_idx = np.searchsorted(vals, xc, side="left")
        hi = vals[min(hi_idx, len(vals) - 1)]
        assert q in (lo, hi)

    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_values_strictly_increasing_with_pattern_order(self, n, es):
        """Posits are monotone: ordering patterns as 2's-complement ints
        orders the values — a headline property of the format."""
        fmt = PositFormat(n, es)
        patterns = np.arange(1, 1 << (n - 1))  # positive patterns
        vals = fmt.decode(patterns)
        assert np.all(np.diff(vals) > 0)

    @given(
        st.integers(min_value=4, max_value=8),
        st.integers(min_value=0, max_value=2),
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_quantization(self, n, es, xs):
        fmt = PositFormat(n, es)
        x = np.sort(np.asarray(xs))
        q = fmt.quantize(x)
        assert np.all(np.diff(q) >= 0)


class TestPositValidation:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            PositFormat(1, 0)
        with pytest.raises(ValueError):
            PositFormat(17, 0)

    def test_rejects_negative_es(self):
        with pytest.raises(ValueError):
            PositFormat(8, -1)
