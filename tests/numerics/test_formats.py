"""Tests for the baseline formats: LNS, minifloat, AdaptivFloat, INT, flint."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import (
    AdaptivFloatFormat,
    FlintFormat,
    FORMAT_FAMILIES,
    IntFormat,
    LNSFormat,
    MiniFloatFormat,
    QuantizationStats,
    calibrated_format,
    make_format,
    quantization_rmse,
    relative_decimal_accuracy,
)


class TestIntFormat:
    def test_grid_is_uniform(self):
        f = IntFormat(4, 0.5)
        x = np.linspace(-5, 5, 101)
        q = f.quantize(x)
        codes = np.unique(np.round(q / 0.5))
        assert np.all(codes == np.round(codes))

    def test_clamps_at_qmax(self):
        f = IntFormat(4, 1.0)
        assert f.quantize(np.array([100.0]))[0] == 7.0
        assert f.quantize(np.array([-100.0]))[0] == -8.0

    def test_for_tensor_covers_max(self):
        x = np.array([-3.0, 0.1, 2.7])
        f = IntFormat.for_tensor(x, 8)
        assert f.quantize(np.array([2.7]))[0] == pytest.approx(2.7, rel=0.02)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            IntFormat(1, 1.0)
        with pytest.raises(ValueError):
            IntFormat(8, 0.0)

    @given(st.integers(min_value=2, max_value=10), st.floats(min_value=1e-4, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, n, scale):
        f = IntFormat(n, scale)
        x = np.linspace(-3, 3, 37)
        assert np.allclose(f.quantize(f.quantize(x)), f.quantize(x))


class TestMiniFloat:
    def test_fp8_e4m3_known_values(self):
        f = MiniFloatFormat(8, 4)
        for v in (1.0, 0.5, 1.5, 448.0):  # 448 = e4m3 max (no inf/nan codes)
            assert f.quantize(np.array([v]))[0] == v

    def test_subnormals_representable(self):
        f = MiniFloatFormat(8, 4)
        min_sub, _ = f.dynamic_range()
        assert f.quantize(np.array([min_sub]))[0] == min_sub

    def test_flat_relative_accuracy(self):
        """Floats have ~flat accuracy across normal binades (Fig. 1(b))."""
        f = MiniFloatFormat(8, 4)
        # offset avoids magnitudes that are exactly representable
        mags = np.logspace(-1.8, 1.8, 9) * 1.0371
        acc = relative_decimal_accuracy(f, mags)
        assert np.std(acc) < 0.5

    @given(st.floats(min_value=-400, max_value=400, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, x):
        f = MiniFloatFormat(8, 4)
        q = f.quantize(np.array([x]))
        assert f.quantize(q)[0] == q[0]


class TestAdaptivFloat:
    def test_bias_calibration_covers_tensor(self):
        x = np.random.default_rng(0).normal(0, 0.02, 1000)
        f = AdaptivFloatFormat.for_tensor(x, 8)
        _, maxval = f.dynamic_range()
        assert maxval >= np.abs(x).max()
        # and not wastefully large: within 2 binades
        assert maxval <= np.abs(x).max() * 4

    def test_adapts_position_not_shape(self):
        """AdaptivFloat shifts the range; accuracy profile stays flat."""
        x_small = np.random.default_rng(0).normal(0, 1e-3, 500)
        f = AdaptivFloatFormat.for_tensor(x_small, 8)
        rel = quantization_rmse(f, x_small) / np.std(x_small)
        assert rel < 0.05

    def test_beats_fixed_float_on_shifted_data(self):
        x = np.random.default_rng(1).normal(0, 1e-3, 2000)
        fixed = MiniFloatFormat(6, 4)
        adapt = AdaptivFloatFormat.for_tensor(x, 6)
        assert quantization_rmse(adapt, x) < quantization_rmse(fixed, x)


class TestLNS:
    def test_values_are_powers_of_two_exponent_grid(self):
        f = LNSFormat(6, 2, bias=0.0)
        x = np.array([1.3, 0.7, 2.9])
        q = f.quantize(x)
        exps = np.log2(np.abs(q))
        step = 2.0 ** -(6 - 1 - 2)
        assert np.allclose(np.round(exps / step), exps / step)

    def test_flat_relative_error(self):
        """LNS relative error is magnitude-independent inside its range."""
        f = LNSFormat(8, 4)
        rng = np.random.default_rng(0)
        small = rng.uniform(0.01, 0.02, 4000)
        large = rng.uniform(10, 20, 4000)
        rel_s = np.mean(np.abs(f.quantize(small) - small) / small)
        rel_l = np.mean(np.abs(f.quantize(large) - large) / large)
        assert rel_s == pytest.approx(rel_l, rel=0.15)

    def test_for_tensor_centers_range(self):
        x = np.random.default_rng(0).lognormal(-5, 1, 1000)
        f = LNSFormat.for_tensor(x, 8)
        q = f.quantize(x)
        assert np.all(q > 0)
        assert quantization_rmse(f, x) < 0.05 * np.std(x) + 1e-3

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LNSFormat(1, 0)
        with pytest.raises(ValueError):
            LNSFormat(8, 8)


class TestFlint:
    def test_int_like_near_zero(self):
        """flint's first binade is uniform (int-like)."""
        # dense sweep so every grid cell in the first binade is hit
        vals = FlintFormat(8).quantize(np.linspace(0.005, 0.92, 2000))
        vals = vals[vals < 0.95]  # stay inside the first (integer) binade
        diffs = np.unique(np.round(np.diff(np.unique(vals)), 9))
        assert len(diffs) == 1  # uniform spacing below 1.0

    def test_float_like_tail(self):
        """Spacing grows with magnitude above the int region."""
        f = FlintFormat(8)
        vals = f._values()
        big = vals[vals > 2]
        assert np.all(np.diff(np.diff(big)) >= -1e-9)

    def test_for_tensor(self):
        x = np.random.default_rng(0).laplace(0, 0.02, 1000)
        f = FlintFormat.for_tensor(x, 8)
        assert quantization_rmse(f, x) < np.std(x) * 0.08

    def test_rejects_narrow(self):
        with pytest.raises(ValueError):
            FlintFormat(2)


class TestRegistry:
    def test_make_format_specs(self):
        assert make_format("lp:8,2,3,0.5").name.startswith("lp<8,2,3")
        assert make_format("posit:8,1").name == "posit<8,1>"
        assert make_format("int:8,0.01").bits == 8
        assert make_format("fp:8,4").name.startswith("fp<8")
        assert make_format("lns:8,3").bits == 8
        assert make_format("flint:8").bits == 8
        assert make_format("afloat:8,4,7").bits == 8

    def test_make_format_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_format("bogus:1")

    @pytest.mark.parametrize("spec", [
        "lp:8",          # truncated: lp takes 3..4 args
        "lp:8,2",
        "posit:",        # empty args
        "posit:8",
        "posit:8,1,9",   # too many
        "int:8",
        "fp:8",
        "lns:8",
        "afloat:8,4",
        "flint:",
    ])
    def test_make_format_malformed_arity_names_spec(self, spec):
        """Truncated/overlong arg lists raise ValueError naming the full
        spec string and the expected signature — never IndexError."""
        with pytest.raises(ValueError) as exc_info:
            make_format(spec)
        message = str(exc_info.value)
        assert repr(spec) in message
        assert "takes" in message

    @pytest.mark.parametrize("spec", [
        "lp:a,2,3",
        "posit:8,x",
        "int:8,notafloat",
    ])
    def test_make_format_unparsable_numbers_name_spec(self, spec):
        with pytest.raises(ValueError) as exc_info:
            make_format(spec)
        assert repr(spec) in str(exc_info.value)

    def test_make_format_unknown_kind_lists_known(self):
        with pytest.raises(ValueError, match="known kinds.*posit"):
            make_format("warp:8")

    def test_calibrated_families_all_work(self):
        x = np.random.default_rng(0).normal(0, 0.05, 500)
        for fam in FORMAT_FAMILIES:
            f = calibrated_format(fam, x, 8)
            q = f.quantize(x)
            assert q.shape == x.shape
            assert np.isfinite(q).all()

    def test_calibrated_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            calibrated_format("nope", np.ones(3), 8)

    def test_lp_wins_on_dnn_like_weights(self):
        """The Fig. 5(b) headline: searched LP has the lowest RMSE among the
        formats the paper compares (INT, float, AdaptivFloat, posit, LNS, LP)
        on heavy-tailed, DNN-like weights."""
        rng = np.random.default_rng(42)
        w = rng.standard_t(4, 4000) * 0.02
        fig5b_formats = ("int", "float", "adaptivfloat", "posit", "lns", "lp")
        errs = {
            fam: quantization_rmse(calibrated_format(fam, w, 6), w)
            for fam in fig5b_formats
        }
        assert min(errs, key=errs.get) == "lp"


class TestQuantizationStats:
    def test_stats_fields(self):
        x = np.linspace(-1, 1, 100)
        f = IntFormat(4, 0.15)
        s = QuantizationStats.from_tensors(x, f.quantize(x))
        assert s.rmse > 0
        assert s.max_abs_err >= s.rmse
        assert s.sqnr_db > 0

    def test_perfect_quantization(self):
        x = np.array([1.0, -2.0])
        s = QuantizationStats.from_tensors(x, x.copy())
        assert s.rmse == 0
        assert s.sqnr_db == np.inf
