"""Format round-trip property tests.

Exhaustive checks over a grid of (n, es, rs, sf) that for both
:class:`PositFormat` and :class:`LogPositFormat`:

* ``decode(encode(all_values()))`` is the identity,
* ``quantize`` is idempotent,
* the fused LUT quantize path is bitwise identical to the old
  encode→decode round trip,
* NaN encodes to the NaR pattern and round-trips as NaN.
"""

import numpy as np
import pytest

from repro.numerics import LogPositFormat, LPParams, PositFormat
from repro.numerics.logposit import lp_decode, lp_encode, lp_quantize
from repro.numerics.posit import posit_decode, posit_encode

POSIT_GRID = [
    (n, es) for n in (2, 3, 4, 6, 8, 10) for es in (0, 1, 2)
]

LP_GRID = [
    (n, es, rs, sf)
    for n in (3, 4, 6, 8)
    for es in (0, 1, 2)
    for rs in (2, 3, n - 1)
    if rs <= n - 1
    for sf in (0.0, 0.371, -1.25)
]


def _finite_values(fmt):
    vals = fmt.all_values()
    return vals[np.isfinite(vals)]


class TestPositRoundTrip:
    @pytest.mark.parametrize("n,es", POSIT_GRID)
    def test_decode_encode_identity_on_all_values(self, n, es):
        fmt = PositFormat(n, es)
        vals = _finite_values(fmt)
        round_tripped = fmt.decode(fmt.encode(vals))
        np.testing.assert_array_equal(round_tripped, vals)

    @pytest.mark.parametrize("n,es", POSIT_GRID)
    def test_quantize_idempotent(self, n, es):
        fmt = PositFormat(n, es)
        rng = np.random.default_rng(n * 31 + es)
        x = rng.normal(scale=10.0, size=512)
        q = fmt.quantize(x)
        np.testing.assert_array_equal(fmt.quantize(q), q)

    @pytest.mark.parametrize("n,es", POSIT_GRID)
    def test_lut_path_matches_encode_decode(self, n, es):
        fmt = PositFormat(n, es)
        rng = np.random.default_rng(n * 131 + es)
        x = np.concatenate([
            rng.normal(scale=s, size=256) for s in (1e-3, 1.0, 1e3)
        ] + [np.array([0.0, -0.0, np.nan, np.inf, -np.inf])])
        fused = fmt.quantize(x)  # LUT path (PositFormat._lut)
        legacy = fmt.decode(fmt.encode(x))
        np.testing.assert_array_equal(fused, legacy)


class TestLogPositRoundTrip:
    @pytest.mark.parametrize("n,es,rs,sf", LP_GRID)
    def test_decode_encode_identity_on_all_values(self, n, es, rs, sf):
        fmt = LogPositFormat.make(n, es, rs, sf)
        vals = _finite_values(fmt)
        round_tripped = fmt.decode(fmt.encode(vals))
        np.testing.assert_array_equal(round_tripped, vals)

    @pytest.mark.parametrize("n,es,rs,sf", LP_GRID)
    def test_quantize_idempotent(self, n, es, rs, sf):
        fmt = LogPositFormat.make(n, es, rs, sf)
        rng = np.random.default_rng(n * 31 + es * 7 + rs)
        x = rng.normal(scale=4.0, size=512)
        q = fmt.quantize(x)
        np.testing.assert_array_equal(fmt.quantize(q), q)

    @pytest.mark.parametrize("n,es,rs,sf", LP_GRID)
    def test_quantize_matches_encode_decode(self, n, es, rs, sf):
        params = LPParams(n=n, es=es, rs=rs, sf=sf)
        rng = np.random.default_rng(n * 131 + es * 17 + rs)
        x = np.concatenate([
            rng.normal(scale=s, size=256) for s in (1e-2, 1.0, 1e2)
        ] + [np.array([0.0, -0.0, np.nan, np.inf, -np.inf])])
        fused = lp_quantize(x, params)
        legacy = lp_decode(lp_encode(x, params), params)
        np.testing.assert_array_equal(fused, legacy)


class TestNaRHandling:
    @pytest.mark.parametrize("n,es", [(4, 0), (8, 1), (8, 2), (16, 2)])
    def test_posit_nan_encodes_to_nar(self, n, es):
        nar = 1 << (n - 1)
        codes = posit_encode(np.array([np.nan, 1.0, np.nan]), n, es)
        assert codes[0] == nar and codes[2] == nar
        assert codes[1] != nar
        decoded = posit_decode(codes, n, es)
        assert np.isnan(decoded[0]) and np.isnan(decoded[2])

    @pytest.mark.parametrize("n,es,rs", [(4, 0, 2), (6, 1, 3), (8, 2, 4)])
    def test_lp_nan_encodes_to_nar(self, n, es, rs):
        params = LPParams(n=n, es=es, rs=rs, sf=0.5)
        nar = 1 << (n - 1)
        codes = lp_encode(np.array([np.nan, -2.5]), params)
        assert codes[0] == nar and codes[1] != nar
        assert np.isnan(lp_decode(codes, params)[0])

    def test_quantize_maps_nan_to_nan(self):
        x = np.array([np.nan, 1.0, -np.nan])
        assert np.isnan(PositFormat(8, 1).quantize(x)[[0, 2]]).all()
        p = LPParams(n=6, es=1, rs=3, sf=0.2)
        assert np.isnan(lp_quantize(x, p)[[0, 2]]).all()

    def test_zero_still_encodes_to_zero_pattern(self):
        assert posit_encode(np.array([0.0]), 8, 1)[0] == 0
        assert lp_encode(np.array([0.0]), LPParams(6, 1, 3))[0] == 0
