"""The unified component registry: registration, resolution, and the
legacy lookup tables now backed by it."""

import pytest

from repro.spec import registry
from repro.spec.registry import Registry


class TestRegistry:
    def test_register_resolve_names(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.register("b", 2)
        assert reg.resolve("a") == 1
        assert reg.names() == ("a", "b")

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("fn")
        def fn():
            return 42

        assert reg.resolve("fn") is fn

    def test_duplicate_name_raises_unless_replace(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        reg.register("a", 2, replace=True)
        assert reg.resolve("a") == 2

    def test_invalid_name_raises(self):
        reg = Registry("widget")
        with pytest.raises(ValueError, match="non-empty string"):
            reg.register("", 1)

    def test_failed_bootstrap_import_stays_visible(self):
        """A bootstrap module that fails to import must keep raising the
        real ImportError on every lookup, not degrade later lookups to
        'registered <kind>s: <none>'."""
        reg = Registry("widget", bootstrap=("definitely_missing_mod_xyz",))
        with pytest.raises(ModuleNotFoundError):
            reg.names()
        with pytest.raises(ModuleNotFoundError):  # retried, not masked
            reg.resolve("anything")

    def test_unknown_name_raises_actionable_keyerror(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(KeyError, match="unknown widget 'b'.*a"):
            reg.resolve("b")

    def test_mapping_interface(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.register("b", 2)
        assert "a" in reg and "c" not in reg
        assert sorted(reg) == ["a", "b"]
        assert len(reg) == 2
        assert reg["b"] == 2
        assert dict(reg) == {"a": 1, "b": 2}


class TestModuleLevelApi:
    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown registry"):
            registry.registry("nope")

    def test_builtin_executors(self):
        assert registry.names("executor") == (
            "serial", "thread", "process", "remote"
        )

    def test_builtin_shared_pools(self):
        assert registry.names("shared_pool") == (
            "serial", "thread", "process", "remote"
        )

    def test_builtin_objectives_bootstrap_on_lookup(self):
        assert "global_local_contrastive" in registry.names("objective")
        assert registry.resolve("objective", "mse") == "MSE"

    def test_builtin_models_include_every_suite(self):
        names = registry.names("model")
        assert "tiny:resnet" in names and "tiny:mlp" in names
        assert "zoo:resnet18" in names
        assert "bench:vit" in names

    def test_register_and_resolve_extension(self):
        registry.register(
            "model", "test:ext", lambda: None, replace=True
        )
        try:
            assert registry.resolve("model", "test:ext")() is None
        finally:
            # global registries outlive the test; leave no trace
            registry.registry("model")._entries.pop("test:ext", None)


class TestLegacyTablesAreRegistries:
    def test_objectives_table(self):
        from repro.quant import OBJECTIVES

        assert OBJECTIVES is registry.registry("objective")
        assert OBJECTIVES["mse"] == "MSE"
        assert "kl" in OBJECTIVES
        assert len(sorted(OBJECTIVES)) == len(OBJECTIVES)

    def test_format_families_table(self):
        from repro.numerics.registry import FORMAT_FAMILIES

        assert FORMAT_FAMILIES is registry.registry("format_family")
        assert sorted(FORMAT_FAMILIES) == sorted(
            ["int", "float", "adaptivfloat", "posit", "lns", "flint", "lp"]
        )

    def test_executor_config_accepts_registered_backend(self):
        from repro.parallel import ExecutorConfig

        with pytest.raises(ValueError, match="unknown backend"):
            ExecutorConfig("warp-drive")
        registry.register(
            "executor", "test-backend", lambda spec, config, perf: None,
            replace=True,
        )
        try:
            assert ExecutorConfig("test-backend").backend == "test-backend"
        finally:
            registry.registry("executor")._entries.pop("test-backend", None)
