"""Content-addressed blob store: digests, transports, and decode safety.

The properties that make zero-copy transport sound:

* :func:`repro.spec.blob.blob_digest` is a pure function of content —
  stable under copies, layout, and byte order; distinct for any change
  of bytes, dtype, or shape (hypothesis pins both directions);
* every transport round trip (in-memory, shared-memory, disk cache,
  inline fallback) reproduces the array bitwise;
* decoded arrays cannot corrupt the store: inline decodes are fresh
  writable copies, blob-resolved views are read-only.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import PerfRegistry
from repro.spec.blob import (
    BlobStore,
    account_transport,
    attach_transport_table,
    blob_digest,
    blob_transport_table,
)
from repro.spec.serde import decode_array, encode_array, inline_nbytes

DTYPES = (np.float64, np.float32, np.int32, np.int8, np.uint16)


@st.composite
def arrays(draw):
    dtype = np.dtype(draw(st.sampled_from(DTYPES)))
    shape = tuple(draw(st.lists(st.integers(0, 4), min_size=0, max_size=3)))
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    raw = draw(st.binary(min_size=count * dtype.itemsize,
                         max_size=count * dtype.itemsize))
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return (
        a.dtype == b.dtype
        and a.shape == b.shape
        and np.ascontiguousarray(a).tobytes()
        == np.ascontiguousarray(b).tobytes()
    )


class TestDigest:
    @settings(max_examples=60, deadline=None)
    @given(arrays())
    def test_digest_stable_across_copies_and_layout(self, arr):
        assert blob_digest(arr) == blob_digest(arr.copy())
        if arr.ndim:  # asfortranarray would promote 0-d to (1,)
            assert blob_digest(arr) == blob_digest(np.asfortranarray(arr))
        swapped = arr.astype(arr.dtype.newbyteorder(">"))
        assert blob_digest(arr) == blob_digest(swapped)

    @settings(max_examples=60, deadline=None)
    @given(arrays())
    def test_store_roundtrip_is_bitwise(self, arr):
        store = BlobStore(perf=PerfRegistry())
        digest = store.put(arr)
        assert digest == blob_digest(arr)
        assert bitwise_equal(store.get(digest), arr)
        payload = encode_array(arr, blobs=store)
        assert payload["blob"] == digest
        assert bitwise_equal(decode_array(payload, blobs=store), arr)

    @settings(max_examples=60, deadline=None)
    @given(arrays(), st.integers(0, 1_000_000))
    def test_distinct_content_distinct_digest(self, arr, pos):
        if arr.size == 0:
            changed = np.ones(1, dtype=arr.dtype)  # shape change instead
        else:
            flat = arr.copy().reshape(-1)
            raw = flat.view(np.uint8)
            raw[pos % raw.size] ^= 0xFF
            changed = flat.reshape(arr.shape)
            if bitwise_equal(changed, arr):
                return  # bit flip landed on ignored padding? not for these dtypes
        assert blob_digest(changed) != blob_digest(arr)

    def test_dtype_and_shape_are_part_of_identity(self):
        a = np.zeros(4, dtype=np.float32)
        assert blob_digest(a) != blob_digest(a.astype(np.float64))
        assert blob_digest(a) != blob_digest(a.reshape(2, 2))

    def test_put_counts_hits_and_misses(self):
        perf = PerfRegistry()
        store = BlobStore(perf=perf)
        a = np.arange(5, dtype=np.float32)
        store.put(a)
        store.put(a.copy())
        stats = perf.cache("blob")
        assert (stats.hits, stats.misses) == (1, 1)


class TestTransports:
    def test_shm_roundtrip_zero_copy(self):
        store = BlobStore(perf=PerfRegistry())
        a = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        empty = np.empty((0, 3), dtype=np.float32)
        digests = [store.put(a), store.put(empty)]
        with store:
            table = store.export_shm()
            assert set(table) == set(digests)
            with BlobStore(perf=PerfRegistry()).attach_shm(table) as worker:
                for digest, src in zip(digests, (a, empty)):
                    assert bitwise_equal(worker.get(digest), src)

    def test_export_shm_reuses_segments(self):
        perf = PerfRegistry()
        store = BlobStore(perf=perf)
        store.put(np.arange(8, dtype=np.float32))
        with store:
            first = store.export_shm()
            sent = perf.counter("transport.bytes_sent").value
            assert sent == 32  # one-time publication cost
            assert store.export_shm() == first  # warm: same segments...
            assert perf.counter("transport.bytes_sent").value == sent  # ...free

    def test_disk_cache_rehydrates_bitwise(self, tmp_path):
        a = np.linspace(-1, 1, 7, dtype=np.float64)
        digest = BlobStore(cache_dir=tmp_path, perf=PerfRegistry()).put(a)
        restarted = BlobStore(cache_dir=tmp_path, perf=PerfRegistry())
        assert digest in restarted
        assert bitwise_equal(restarted.get(digest), a)

    def test_transport_table_roundtrip(self):
        store = BlobStore(perf=PerfRegistry())
        a = np.arange(6, dtype=np.int32)
        digest = store.put(a)
        with store:
            table = blob_transport_table(store)
            with attach_transport_table(table, perf=PerfRegistry()) as worker:
                assert bitwise_equal(worker.get(digest), a)

    def test_inline_fallback_table(self, monkeypatch):
        store = BlobStore(perf=PerfRegistry())
        a = np.arange(6, dtype=np.int32)
        digest = store.put(a)

        def no_shm():
            raise OSError("shared memory unavailable")

        monkeypatch.setattr(store, "export_shm", no_shm)
        table = blob_transport_table(store)
        assert set(table) == {"inline"}
        worker = attach_transport_table(table, perf=PerfRegistry())
        assert bitwise_equal(worker.get(digest), a)

    def test_clear_forgets_memory_not_disk(self, tmp_path):
        store = BlobStore(cache_dir=tmp_path, perf=PerfRegistry())
        digest = store.put(np.arange(3, dtype=np.float32))
        store.clear()
        assert len(store) == 0
        assert digest in store  # disk cache still serves it
        memory_only = BlobStore(perf=PerfRegistry())
        memory_only.put(np.arange(3, dtype=np.float32))
        memory_only.clear()
        with pytest.raises(KeyError):
            memory_only.get(digest)

    def test_account_transport_counts_refs_per_occurrence(self):
        perf = PerfRegistry()
        store = BlobStore(perf=PerfRegistry())
        a = np.arange(16, dtype=np.float64)
        ref = encode_array(a, blobs=store)
        payload = {"state": {"w1": ref, "w2": dict(ref)}}
        account_transport(perf, payload, {}, workers=2)
        sent = perf.counter("transport.bytes_sent").value
        saved = perf.counter("transport.bytes_saved").value
        assert sent > 0
        # two occurrences of the same digest, shipped to two workers
        assert saved == 2 * 2 * inline_nbytes(ref)


class TestDecodeSafety:
    def test_inline_decode_is_writable_and_isolated(self):
        a = np.arange(4, dtype=np.float32)
        payload = encode_array(a)
        decoded = decode_array(payload)
        decoded[0] = 99.0  # regression: frombuffer views are read-only
        assert decode_array(payload)[0] == a[0]  # payload unharmed

    def test_blob_decode_is_readonly_view(self):
        store = BlobStore(perf=PerfRegistry())
        a = np.arange(4, dtype=np.float32)
        payload = encode_array(a, blobs=store)
        decoded = decode_array(payload, blobs=store)
        with pytest.raises((ValueError, RuntimeError)):
            decoded[0] = 99.0  # the store's bytes must never change
        assert bitwise_equal(store.get(payload["blob"]), a)

    def test_unresolvable_blob_raises_with_digest(self):
        store = BlobStore(perf=PerfRegistry())
        payload = encode_array(np.arange(3), blobs=store)
        with pytest.raises(ValueError, match=payload["blob"][:16]):
            decode_array(payload, blobs=BlobStore(perf=PerfRegistry()))

    def test_fetch_on_miss_populates_store(self):
        origin = BlobStore(perf=PerfRegistry())
        a = np.arange(5, dtype=np.float64)
        payload = encode_array(a, blobs=origin)
        local = BlobStore(perf=PerfRegistry())
        fetched = decode_array(
            payload, blobs=local, fetch=lambda d: origin.get(d)
        )
        assert bitwise_equal(fetched, a)
        assert payload["blob"] in local  # cached for the next decode
