"""Sweep expansion and digest-keyed result caching."""

import dataclasses
import json

import pytest

from repro.parallel import ExecutorConfig
from repro.quant import LPQConfig
from repro.spec import CalibSpec, SearchSpec, expand_sweep, load_sweep

BASE = {
    "model": "tiny:mlp",
    "calib": {"batch": 4, "seed": 1},
    "config": {
        "population": 3,
        "passes": 1,
        "cycles": 1,
        "diversity_parents": 2,
        "hw_widths": [4, 8],
    },
    "objective": "mse",
    "name": "tiny-mlp",
}


class TestExpandSweep:
    def test_cartesian_product_names_and_values(self):
        specs = expand_sweep({
            "version": 1,
            "name": "study",
            "base": BASE,
            "grid": {"seed": [1, 2], "config.population": [3, 4]},
        })
        assert list(specs) == [
            "study-seed1-population3",
            "study-seed1-population4",
            "study-seed2-population3",
            "study-seed2-population4",
        ]
        spec = specs["study-seed2-population4"]
        assert spec.seed == 2
        assert spec.config.population == 4
        assert spec.name == "study-seed2-population4"
        assert spec.model == "tiny:mlp"
        # every expanded spec still serializes (fully declarative)
        assert all(s.serializable for s in specs.values())

    def test_name_falls_back_to_base_then_sweep(self):
        specs = expand_sweep({"base": BASE, "grid": {"seed": [5]}})
        assert list(specs) == ["tiny-mlp-seed5"]
        anon = dict(BASE)
        anon.pop("name")
        specs = expand_sweep({"base": anon, "grid": {"seed": [5]}})
        assert list(specs) == ["sweep-seed5"]

    def test_dotted_path_creates_missing_section(self):
        """Sweeping fitness.fast over a base with fitness=null works —
        the intermediate dict is created on the fly."""
        specs = expand_sweep({
            "base": BASE, "grid": {"fitness.fast": [True, False]},
        })
        assert specs["tiny-mlp-fastTrue"].fitness.fast is True
        assert specs["tiny-mlp-fastFalse"].fitness.fast is False

    def test_malformed_documents_raise(self):
        with pytest.raises(ValueError, match="dict"):
            expand_sweep([])
        with pytest.raises(ValueError, match="version"):
            expand_sweep({"version": 99, "base": BASE, "grid": {"seed": [1]}})
        with pytest.raises(ValueError, match="base"):
            expand_sweep({"grid": {"seed": [1]}})
        with pytest.raises(ValueError, match="grid"):
            expand_sweep({"base": BASE})
        with pytest.raises(ValueError, match="non-empty"):
            expand_sweep({"base": BASE, "grid": {"seed": []}})
        with pytest.raises(ValueError, match="unknown sweep field"):
            expand_sweep({"base": BASE, "grid": {"seed": [1]}, "jobs": 3})

    def test_invalid_sweep_point_names_the_point(self):
        with pytest.raises(ValueError, match="tiny-mlp-wormhole9"):
            expand_sweep({
                "base": BASE, "grid": {"config.wormhole": [9]},
            })

    def test_load_sweep_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "base": BASE, "grid": {"seed": [1, 2]},
        }))
        specs = load_sweep(path)
        assert sorted(specs) == ["tiny-mlp-seed1", "tiny-mlp-seed2"]
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_sweep(bad)

    def test_committed_example_sweep_expands(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "examples/specs/tiny_sweep.json"
        )
        specs = load_sweep(path)
        assert len(specs) == 4
        assert all(s.serializable for s in specs.values())


class TestDigest:
    def _spec(self, **overrides) -> SearchSpec:
        fields = dict(
            model="tiny:mlp",
            calib=CalibSpec(batch=4, seed=1),
            config=LPQConfig(population=3, passes=1, cycles=1,
                             diversity_parents=2, hw_widths=(4, 8)),
        )
        fields.update(overrides)
        return SearchSpec(**fields)

    def test_stable_across_processes(self):
        """The digest is a pure content hash — recomputable anywhere."""
        spec = self._spec()
        import hashlib

        payload = spec.to_dict()
        del payload["executor"]
        del payload["name"]
        expected = hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            .encode()
        ).hexdigest()
        assert spec.digest() == expected

    def test_ignores_executor_and_name(self):
        spec = self._spec()
        assert spec.digest() == self._spec(
            name="label",
            executor=ExecutorConfig("thread", workers=2),
        ).digest()

    def test_sensitive_to_search_content(self):
        spec = self._spec()
        assert spec.digest() != self._spec(seed=9).digest()
        assert spec.digest() != self._spec(
            calib=CalibSpec(batch=8, seed=1)
        ).digest()
        assert spec.digest() != self._spec(objective="mse").digest()

    def test_roundtripped_spec_keeps_digest(self):
        spec = self._spec()
        back = SearchSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back.digest() == spec.digest()

    def test_inline_spec_refuses(self):
        with pytest.raises(ValueError, match="inline"):
            SearchSpec().digest()


class TestRunSearchCache:
    def test_cache_replay_skips_rerun(self, tmp_path):
        """Second identical run replays from the cache — asserted via
        the CLI, which is what CI exercises."""
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        spec_path = repo / "examples/specs/tiny_mlp.json"
        cache = tmp_path / "cache"

        def run():
            return subprocess.run(
                [sys.executable, str(repo / "scripts/run_search.py"),
                 "--spec", str(spec_path), "--cache-dir", str(cache)],
                capture_output=True, text=True, cwd=repo,
            )

        first = run()
        assert first.returncode == 0, first.stderr
        assert "[cache replay]" not in first.stdout
        assert len(list(cache.glob("*.json"))) == 1
        second = run()
        assert second.returncode == 0, second.stderr
        assert "[cache replay]" in second.stdout
        # same fitness either way
        line = [l for l in first.stdout.splitlines() if "fitness:" in l]
        line2 = [l for l in second.stdout.splitlines() if "fitness:" in l]
        assert line and line == line2

    def test_records_redact_worker_token(self, tmp_path):
        """The shared-secret auth token must never land in --out
        records or cache files (both get committed/uploaded)."""
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        sys.path.insert(0, str(repo / "scripts"))
        try:
            import run_search
        finally:
            sys.path.pop(0)

        spec = SearchSpec(
            model="tiny:mlp", calib=CalibSpec(batch=4),
            executor=ExecutorConfig(
                "remote", addresses=("127.0.0.1:7301",), token="s3cret"
            ),
        )

        class FakeResult:
            fitness = 1.0
            mean_weight_bits = 4.0
            mean_act_bits = 8.0
            evaluations = 1

            class solution:
                layer_params = ()

            @staticmethod
            def model_size_mb():
                return 0.1

        # the record builder now lives in repro.serve.store (the daemon
        # shares it); run_search re-exports it
        record = run_search.result_record(spec, FakeResult, None)
        assert record["spec"]["executor"]["token"] is None
        assert "s3cret" not in json.dumps(record)
        # the live spec is untouched (the run itself still needs it)
        assert spec.executor.token == "s3cret"
