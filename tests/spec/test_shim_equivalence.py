"""Legacy-kwarg shim ≡ spec path, bitwise, on every executor backend.

``lpq_quantize(model, images, ...)`` now constructs an inline
:class:`~repro.spec.SearchSpec` and runs it through the same engine as
``lpq_quantize(spec=...)``.  These tests pin the acceptance criterion:
the two call styles produce bitwise-identical :class:`LPQResult`s
(solution, history, fitness) on serial, thread, and process backends.
"""

import pytest

from repro.models.tiny import tiny_mlp, tiny_resnet
from repro.parallel import ExecutorConfig
from repro.quant import FitnessConfig, LPQConfig, lpq_quantize
from repro.spec import CalibSpec, SearchSpec

CALIB = CalibSpec(batch=4, seed=3)
CONFIG = LPQConfig(population=3, passes=1, cycles=1, block_size=2,
                   diversity_parents=2, hw_widths=(4, 8), seed=13)


def assert_same_result(got, ref):
    assert got.solution == ref.solution
    assert got.fitness == ref.fitness
    assert got.history.best_fitness == ref.history.best_fitness
    assert got.history.mean_bits == ref.history.mean_bits
    assert got.act_params == ref.act_params
    assert got.evaluations == ref.evaluations


class TestShimEquivalence:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", None),
        ("thread", 2),
        ("process", 2),
    ])
    def test_legacy_kwargs_equal_spec_path(self, backend, workers):
        executor = (
            None if backend == "serial"
            else ExecutorConfig(backend, workers=workers)
        )
        spec = SearchSpec(model="tiny:resnet", calib=CALIB, config=CONFIG,
                          executor=executor)
        ref = lpq_quantize(spec=spec)
        legacy = lpq_quantize(
            tiny_resnet(), CALIB.build(), config=CONFIG, executor=executor
        )
        assert_same_result(legacy, ref)

    def test_objective_and_fitness_knobs_carry_over(self):
        fitness = FitnessConfig(lam=0.15)
        spec = SearchSpec(model="tiny:mlp", calib=CALIB, config=CONFIG,
                          fitness=fitness, objective="mse",
                          act_sf_mode="recurrence")
        ref = lpq_quantize(spec=spec)
        legacy = lpq_quantize(
            tiny_mlp(), CALIB.build(), config=CONFIG,
            fitness_config=fitness, objective="mse",
            act_sf_mode="recurrence",
        )
        assert_same_result(legacy, ref)


class TestCallConventionErrors:
    def test_spec_plus_kwargs_raises(self):
        spec = SearchSpec(model="tiny:mlp", calib=CALIB, config=CONFIG)
        with pytest.raises(ValueError, match="conflicting"):
            lpq_quantize(tiny_mlp(), spec=spec)
        with pytest.raises(ValueError, match="objective"):
            lpq_quantize(spec=spec, objective="mse")

    def test_missing_model_raises(self):
        with pytest.raises(TypeError, match="model and calib_images"):
            lpq_quantize()

    def test_non_spec_spec_raises(self):
        with pytest.raises(TypeError, match="SearchSpec"):
            lpq_quantize(spec={"model": "tiny:mlp"})

    def test_inline_spec_without_live_objects_raises(self):
        inline = SearchSpec(config=CONFIG)
        with pytest.raises(ValueError, match="no model reference"):
            lpq_quantize(spec=inline)
