"""SearchSpec JSON round-trip property tests.

The spec layer's contract: ``spec → to_dict → json.dumps → json.loads →
from_dict`` is the identity, and *running* the reconstructed spec
reproduces the identical search trajectory (solution, history, fitness —
bitwise).  Serde errors must be loud: unknown fields, bad versions, and
malformed payloads raise instead of silently defaulting.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import ExecutorConfig
from repro.quant import FitnessConfig, LPQConfig, lpq_quantize
from repro.spec import CalibSpec, SearchSpec
from repro.spec.serde import decode_array, encode_array


def roundtrip(spec: SearchSpec) -> SearchSpec:
    return SearchSpec.from_json(json.dumps(json.loads(spec.to_json())))


# -- strategies ----------------------------------------------------------
lpq_configs = st.builds(
    LPQConfig,
    population=st.integers(2, 8),
    passes=st.integers(1, 3),
    cycles=st.integers(1, 2),
    block_size=st.integers(1, 4),
    diversity_parents=st.integers(2, 5),
    hw_widths=st.one_of(
        st.none(),
        st.sets(st.sampled_from([2, 4, 8, 16]), min_size=1).map(
            lambda s: tuple(sorted(s))
        ),
    ),
    diversity=st.booleans(),
    blockwise=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)

fitness_configs = st.builds(
    FitnessConfig,
    tau=st.floats(0.01, 10.0, allow_nan=False),
    lam=st.floats(0.0, 1.0, allow_nan=False),
    pooling=st.sampled_from(["kurtosis", "mean"]),
    fast=st.booleans(),
    weight_cache_entries=st.integers(1, 4096),
    act_cache_entries=st.integers(1, 256),
)

executor_configs = st.builds(
    ExecutorConfig,
    backend=st.sampled_from(["serial", "thread", "process"]),
    workers=st.one_of(st.none(), st.integers(1, 8)),
)

search_specs = st.builds(
    SearchSpec,
    model=st.sampled_from(["tiny:resnet", "tiny:mlp", "bench:resnet"]),
    calib=st.builds(
        CalibSpec, batch=st.integers(1, 32), seed=st.integers(0, 1000)
    ),
    config=lpq_configs,
    fitness=st.one_of(st.none(), fitness_configs),
    objective=st.sampled_from(
        ["mse", "kl", "cosine", "global_contrastive",
         "global_local_contrastive"]
    ),
    act_sf_mode=st.sampled_from(["calibrated", "recurrence"]),
    executor=st.one_of(st.none(), executor_configs),
    seed=st.one_of(st.none(), st.integers(0, 2**31 - 1)),
    name=st.one_of(st.none(), st.text(min_size=1, max_size=20)),
)


class TestJsonRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(spec=search_specs)
    def test_roundtrip_is_identity(self, spec):
        assert roundtrip(spec) == spec

    @settings(max_examples=50, deadline=None)
    @given(config=lpq_configs)
    def test_lpq_config_roundtrip(self, config):
        assert LPQConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        ) == config

    @settings(max_examples=50, deadline=None)
    @given(config=fitness_configs)
    def test_fitness_config_roundtrip_bitwise_floats(self, config):
        back = FitnessConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        # float fields must survive JSON exactly (shortest-repr parses
        # back to identical bits), not approximately
        assert back.tau == config.tau and back.lam == config.lam
        assert back == config

    @settings(max_examples=30, deadline=None)
    @given(config=executor_configs)
    def test_executor_config_roundtrip(self, config):
        assert ExecutorConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        ) == config

    @settings(max_examples=20, deadline=None)
    @given(
        shape=st.sampled_from([(3,), (2, 4), (1, 3, 2, 2)]),
        seed=st.integers(0, 1000),
        dtype=st.sampled_from(["float32", "float64", "int32"]),
    )
    def test_array_roundtrip_bitwise(self, shape, seed, dtype):
        rng = np.random.default_rng(seed)
        array = (rng.normal(size=shape) * 100).astype(dtype)
        back = decode_array(json.loads(json.dumps(encode_array(array))))
        assert back.dtype == array.dtype
        np.testing.assert_array_equal(back, array)


class TestRoundTrippedSpecRunsIdentically:
    def test_identical_search_trajectory(self):
        spec = SearchSpec(
            model="tiny:resnet",
            calib=CalibSpec(batch=4, seed=3),
            config=LPQConfig(population=3, passes=1, cycles=1,
                             block_size=2, diversity_parents=2,
                             hw_widths=(4, 8)),
            seed=11,
        )
        ref = lpq_quantize(spec=spec)
        got = lpq_quantize(spec=roundtrip(spec))
        assert got.solution == ref.solution
        assert got.fitness == ref.fitness
        assert got.history.best_fitness == ref.history.best_fitness
        assert got.history.mean_bits == ref.history.mean_bits
        assert got.act_params == ref.act_params
        assert got.evaluations == ref.evaluations

    def test_dump_load_file_roundtrip(self, tmp_path):
        spec = SearchSpec(
            model="tiny:mlp", calib=CalibSpec(batch=4),
            config=LPQConfig(population=3, passes=1, cycles=1,
                             diversity_parents=2, hw_widths=(4, 8)),
            objective="mse", executor=ExecutorConfig("thread", workers=2),
            seed=5, name="roundtrip",
        )
        path = spec.dump(tmp_path / "spec.json")
        assert SearchSpec.load(path) == spec

    def test_spec_seed_overrides_config_seed(self):
        config = LPQConfig(population=3, passes=1, cycles=1,
                           diversity_parents=2, hw_widths=(4, 8), seed=0)
        base = SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4),
                          config=config)
        reseeded = dataclasses.replace(base, seed=9)
        assert reseeded.search_config().seed == 9
        ref = lpq_quantize(
            spec=dataclasses.replace(
                base, config=dataclasses.replace(config, seed=9)
            )
        )
        got = lpq_quantize(spec=reseeded)
        assert got.solution == ref.solution and got.fitness == ref.fitness


class TestSerdeErrors:
    def test_unknown_spec_field_raises(self):
        spec = SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4))
        payload = spec.to_dict()
        payload["typo_field"] = 1
        with pytest.raises(ValueError, match="typo_field"):
            SearchSpec.from_dict(payload)

    def test_unknown_config_field_raises(self):
        with pytest.raises(ValueError, match="populatoin"):
            LPQConfig.from_dict({"populatoin": 4})

    def test_unsupported_version_raises(self):
        payload = SearchSpec(
            model="tiny:mlp", calib=CalibSpec(batch=4)
        ).to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version 99"):
            SearchSpec.from_dict(payload)

    def test_non_dict_payload_raises(self):
        with pytest.raises(ValueError, match="must be a dict"):
            SearchSpec.from_dict([1, 2, 3])

    def test_inline_spec_refuses_to_serialize(self):
        inline = SearchSpec(config=LPQConfig(population=3, passes=1,
                                             cycles=1, diversity_parents=2))
        assert not inline.serializable
        with pytest.raises(ValueError, match="inline"):
            inline.to_dict()

    def test_unknown_model_ref_raises_with_known_names(self):
        spec = SearchSpec(model="zoo:warp-drive", calib=CalibSpec(batch=4))
        with pytest.raises(KeyError, match="unknown model"):
            spec.build_model()

    def test_unknown_objective_raises(self):
        with pytest.raises(ValueError, match="unknown objective"):
            SearchSpec(model="tiny:mlp", objective="nope")

    def test_unknown_act_sf_mode_raises(self):
        with pytest.raises(ValueError, match="activation sf mode"):
            SearchSpec(model="tiny:mlp", act_sf_mode="nope")

    def test_live_model_instance_rejected(self):
        from repro import nn

        with pytest.raises(ValueError, match="registered model name"):
            SearchSpec(model=nn.Linear(2, 2))

    def test_bad_calib_batch_raises(self):
        with pytest.raises(ValueError, match="positive"):
            CalibSpec(batch=0)

    def test_calib_dict_form_coerced(self):
        spec = SearchSpec(model="tiny:mlp", calib={"batch": 4, "seed": 2})
        assert spec.calib == CalibSpec(batch=4, seed=2)
        assert roundtrip(spec) == spec

    def test_calib_wrong_type_raises(self):
        import numpy as np

        with pytest.raises(ValueError, match="CalibSpec"):
            SearchSpec(model="tiny:mlp", calib=np.zeros((1, 3, 8, 8)))
