"""Numerical gradient checks for every layer's backward pass."""

import numpy as np
import pytest

from repro import nn

RNG = np.random.default_rng(1234)
EPS = 1e-6
TOL = 1e-5


def numerical_grad(f, x, eps=EPS):
    """Central-difference gradient of scalar f at x."""
    g = np.zeros_like(x)
    flat_x = x.ravel()
    flat_g = g.ravel()
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        fp = f()
        flat_x[i] = orig - eps
        fm = f()
        flat_x[i] = orig
        flat_g[i] = (fp - fm) / (2 * eps)
    return g


def check_input_grad(layer, x, tol=TOL, loss_weight=None):
    """Compare layer.backward against finite differences on the input."""
    out = layer(x)
    w = RNG.normal(size=out.shape) if loss_weight is None else loss_weight

    def loss():
        return float((layer(x) * w).sum())

    want = numerical_grad(loss, x)
    layer(x)
    got = layer.backward(w)
    np.testing.assert_allclose(got, want, rtol=tol, atol=tol)


def check_param_grads(layer, x, tol=TOL):
    """Compare parameter grads against finite differences."""
    out = layer(x)
    w = RNG.normal(size=out.shape)
    layer.zero_grad()
    layer(x)
    layer.backward(w)
    analytic = {name: p.grad.copy() for name, p in layer.named_parameters()}
    for name, p in layer.named_parameters():

        def loss():
            return float((layer(x) * w).sum())

        want = numerical_grad(loss, p.data)
        np.testing.assert_allclose(
            analytic[name], want, rtol=tol, atol=tol, err_msg=f"param {name}"
        )


class TestLinear:
    def test_input_grad(self):
        layer = nn.Linear(5, 4)
        check_input_grad(layer, RNG.normal(size=(3, 5)))

    def test_param_grads(self):
        layer = nn.Linear(4, 3)
        check_param_grads(layer, RNG.normal(size=(2, 4)))

    def test_3d_input(self):
        layer = nn.Linear(6, 5)
        check_input_grad(layer, RNG.normal(size=(2, 3, 6)))
        check_param_grads(layer, RNG.normal(size=(2, 3, 6)))


class TestConv2d:
    def test_basic_conv(self):
        layer = nn.Conv2d(2, 3, 3, stride=1, padding=1)
        x = RNG.normal(size=(2, 2, 5, 5))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_strided_conv(self):
        layer = nn.Conv2d(2, 4, 3, stride=2, padding=1)
        x = RNG.normal(size=(1, 2, 7, 7))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_1x1_conv(self):
        layer = nn.Conv2d(3, 5, 1)
        x = RNG.normal(size=(2, 3, 4, 4))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_depthwise_conv(self):
        layer = nn.Conv2d(4, 4, 3, padding=1, groups=4)
        x = RNG.normal(size=(2, 4, 5, 5))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_grouped_conv(self):
        layer = nn.Conv2d(4, 6, 3, padding=1, groups=2)
        x = RNG.normal(size=(1, 4, 5, 5))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_no_bias(self):
        layer = nn.Conv2d(2, 2, 3, padding=1, bias=False)
        x = RNG.normal(size=(1, 2, 4, 4))
        check_input_grad(layer, x)

    def test_output_shape(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer(np.zeros((2, 3, 8, 8))).shape == (2, 8, 4, 4)

    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 3, groups=2)


class TestNorms:
    def test_batchnorm_train_grads(self):
        layer = nn.BatchNorm2d(3)
        x = RNG.normal(size=(4, 3, 3, 3))
        check_input_grad(layer, x, tol=1e-4)
        check_param_grads(layer, x, tol=1e-4)

    def test_batchnorm_eval_uses_running_stats(self):
        layer = nn.BatchNorm2d(2)
        for _ in range(20):
            layer(RNG.normal(loc=2.0, size=(8, 2, 4, 4)))
        layer.eval()
        out = layer(np.full((1, 2, 2, 2), 2.0))
        assert np.all(np.abs(out) < 1.0)  # roughly centered

    def test_batchnorm_eval_grad(self):
        layer = nn.BatchNorm2d(2)
        layer(RNG.normal(size=(4, 2, 3, 3)))
        layer.eval()
        x = RNG.normal(size=(2, 2, 3, 3))
        check_input_grad(layer, x)

    def test_layernorm_grads(self):
        layer = nn.LayerNorm(6)
        x = RNG.normal(size=(2, 3, 6))
        check_input_grad(layer, x, tol=1e-4)
        check_param_grads(layer, x, tol=1e-4)

    def test_layernorm_normalizes(self):
        layer = nn.LayerNorm(16)
        out = layer(RNG.normal(loc=5, scale=3, size=(4, 16)))
        np.testing.assert_allclose(out.mean(axis=-1), 0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1, atol=1e-2)


class TestActivations:
    def test_relu_grad(self):
        layer = nn.ReLU()
        x = RNG.normal(size=(3, 4)) + 0.05  # avoid kink at 0
        check_input_grad(layer, x)

    def test_gelu_grad(self):
        layer = nn.GELU()
        check_input_grad(layer, RNG.normal(size=(3, 4)), tol=1e-4)

    def test_gelu_matches_reference(self):
        x = np.linspace(-4, 4, 50)
        from scipy.stats import norm

        exact = x * norm.cdf(x)
        np.testing.assert_allclose(nn.gelu(x), exact, atol=2e-3)


class TestPooling:
    def test_maxpool_grad(self):
        layer = nn.MaxPool2d(2)
        x = RNG.normal(size=(2, 2, 4, 4))
        check_input_grad(layer, x)

    def test_maxpool_values(self):
        layer = nn.MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = layer(x)
        assert out.tolist() == [[[[5, 7], [13, 15]]]]

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            nn.MaxPool2d(3)(np.zeros((1, 1, 4, 4)))

    def test_global_avgpool_grad(self):
        layer = nn.GlobalAvgPool()
        check_input_grad(layer, RNG.normal(size=(2, 3, 4, 4)))

    def test_flatten_roundtrip(self):
        layer = nn.Flatten()
        x = RNG.normal(size=(2, 3, 4, 4))
        out = layer(x)
        assert out.shape == (2, 48)
        assert layer.backward(out).shape == x.shape


class TestAttention:
    def test_mhsa_input_grad(self):
        layer = nn.MultiHeadSelfAttention(8, 2)
        x = RNG.normal(size=(2, 5, 8))
        check_input_grad(layer, x, tol=1e-4)

    def test_mhsa_param_grads(self):
        layer = nn.MultiHeadSelfAttention(6, 2)
        x = RNG.normal(size=(1, 4, 6))
        check_param_grads(layer, x, tol=1e-4)

    def test_window_attention_grad(self):
        layer = nn.WindowAttention(4, 2, window=2)
        x = RNG.normal(size=(1, 4, 4, 4))
        check_input_grad(layer, x, tol=1e-4)

    def test_shifted_window_attention_grad(self):
        layer = nn.WindowAttention(4, 2, window=2, shift=1)
        x = RNG.normal(size=(1, 4, 4, 4))
        check_input_grad(layer, x, tol=1e-4)

    def test_window_attention_locality(self):
        """Without shift, tokens in different windows never interact."""
        layer = nn.WindowAttention(4, 1, window=2)
        x = RNG.normal(size=(1, 4, 4, 4))
        out1 = layer(x)
        x2 = x.copy()
        x2[0, 3, 3] += 100.0  # perturb bottom-right window only
        out2 = layer(x2)
        # top-left window output unchanged
        np.testing.assert_allclose(out1[0, :2, :2], out2[0, :2, :2])

    def test_shift_breaks_locality(self):
        """With shift, some cross-window interaction appears."""
        layer = nn.WindowAttention(4, 1, window=2, shift=1)
        x = RNG.normal(size=(1, 4, 4, 4))
        out1 = layer(x)
        x2 = x.copy()
        x2[0, 2, 2] += 100.0
        out2 = layer(x2)
        assert not np.allclose(out1[0, :2, :2], out2[0, :2, :2])

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(7, 2)
        with pytest.raises(ValueError):
            nn.WindowAttention(8, 2, window=2, shift=2)


class TestSequentialAndModule:
    def test_sequential_chain_grad(self):
        model = nn.Sequential(
            nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 3)
        )
        x = RNG.normal(size=(2, 4)) + 0.01
        check_input_grad(model, x, tol=1e-4)

    def test_named_parameters_unique(self):
        model = nn.Sequential(nn.Linear(4, 4), nn.Linear(4, 4))
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_state_dict_roundtrip(self):
        m1 = nn.Sequential(nn.Linear(4, 4), nn.ReLU(), nn.Linear(4, 2))
        m2 = nn.Sequential(nn.Linear(4, 4), nn.ReLU(), nn.Linear(4, 2))
        m2.load_state_dict(m1.state_dict())
        x = RNG.normal(size=(3, 4))
        np.testing.assert_allclose(m1(x), m2(x))

    def test_state_dict_rejects_mismatch(self):
        m1 = nn.Linear(4, 4)
        m2 = nn.Linear(4, 5)
        with pytest.raises((KeyError, ValueError)):
            m2.load_state_dict(m1.state_dict())

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert not model[1].training
        model.train()
        assert model[1].training

    def test_dropout_eval_identity(self):
        d = nn.Dropout(0.5)
        d.eval()
        x = RNG.normal(size=(10, 10))
        np.testing.assert_array_equal(d(x), x)

    def test_dropout_train_scales(self):
        d = nn.Dropout(0.5)
        x = np.ones((200, 200))
        out = d(x)
        assert abs(out.mean() - 1.0) < 0.05  # inverted dropout preserves mean


class TestLosses:
    def test_cross_entropy_grad(self):
        logits = RNG.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        loss, grad = nn.cross_entropy(logits, labels)

        def f():
            return nn.cross_entropy(logits, labels)[0]

        want = numerical_grad(f, logits)
        np.testing.assert_allclose(grad, want, atol=1e-6)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = nn.cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_label_smoothing_increases_loss_floor(self):
        logits = np.array([[100.0, 0.0]])
        l0, _ = nn.cross_entropy(logits, np.array([0]), label_smoothing=0.0)
        l1, _ = nn.cross_entropy(logits, np.array([0]), label_smoothing=0.1)
        assert l1 > l0

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert nn.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestOptim:
    def _quadratic_step(self, opt_cls, **kwargs):
        p = nn.Parameter(np.array([5.0, -3.0]))
        opt = opt_cls([p], **kwargs)
        for _ in range(200):
            opt.zero_grad()
            p.accumulate(2 * p.data)  # grad of ||p||^2
            opt.step()
        return p.data

    def test_sgd_converges(self):
        final = self._quadratic_step(nn.SGD, lr=0.05, momentum=0.9)
        assert np.all(np.abs(final) < 1e-3)

    def test_adam_converges(self):
        final = self._quadratic_step(nn.Adam, lr=0.1)
        assert np.all(np.abs(final) < 1e-3)

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.zero_grad()
        opt.step()  # grad 0, decay only
        assert p.data[0] < 1.0


class TestTraining:
    def test_overfits_tiny_problem(self):
        """A 2-layer MLP must overfit 32 random points — end-to-end check
        that forward, backward and the optimizer glue together."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=(32, 10))
        y = rng.integers(0, 3, 32)
        model = nn.Sequential(nn.Linear(10, 32), nn.ReLU(), nn.Linear(32, 3))
        opt = nn.Adam(model.parameters(), lr=1e-2)
        for _ in range(150):
            opt.zero_grad()
            logits = model(x)
            loss, grad = nn.cross_entropy(logits, y)
            model.backward(grad)
            opt.step()
        assert nn.accuracy(model(x), y) == 1.0
