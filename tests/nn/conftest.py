"""Gradient checks need float64 parameters for tight tolerances."""

import numpy as np
import pytest

from repro import nn


@pytest.fixture(autouse=True)
def float64_parameters():
    nn.set_default_dtype(np.float64)
    yield
    nn.set_default_dtype(np.float32)
