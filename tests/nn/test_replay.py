"""Prefix-reuse forward cache (repro.nn.replay.ForwardCache)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ForwardCache, quantizable_layers, record_activations


class SmallCNN(nn.Module):
    def __init__(self):
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1),
            nn.ReLU(),
            nn.Conv2d(4, 4, 3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(4, 8, 3, padding=1),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(8, 4)

    def forward(self, x):
        return self.head(self.pool(self.features(x)))


@pytest.fixture()
def model():
    nn.seed(11)
    m = SmallCNN()
    m.eval()
    return m


@pytest.fixture()
def x():
    rng = np.random.default_rng(5)
    return rng.normal(size=(2, 3, 8, 8))


class TestForwardCache:
    def test_record_pass_matches_plain_forward(self, model, x):
        plain = model(x)
        cache = ForwardCache(model)
        np.testing.assert_array_equal(cache.forward(x), plain)
        assert cache.primed

    def test_nothing_dirty_replays_final_output(self, model, x):
        cache = ForwardCache(model)
        out = cache.forward(x)
        before = cache.calls_computed
        replayed = cache.forward(x, dirty=None)
        np.testing.assert_array_equal(replayed, out)
        assert cache.calls_computed == before  # nothing executed

    def test_suffix_recomputed_after_weight_change(self, model, x):
        layers = quantizable_layers(model)
        cache = ForwardCache(model)
        cache.forward(x)
        # change the second conv's weights through the fq override
        _, dirty_layer = layers[1]
        dirty_layer.weight_fq = dirty_layer.weight.data * 0.5
        fast = cache.forward(x, dirty=dirty_layer)
        plain = model(x)  # uncached ground truth, same override installed
        np.testing.assert_array_equal(fast, plain)
        assert cache.calls_replayed > 0
        dirty_layer.clear_quant()

    def test_repeated_incremental_passes_stay_exact(self, model, x):
        layers = quantizable_layers(model)
        cache = ForwardCache(model)
        cache.forward(x)
        rng = np.random.default_rng(0)
        for _ in range(4):
            idx = int(rng.integers(0, len(layers)))
            _, layer = layers[idx]
            layer.weight_fq = layer.weight.data * float(rng.uniform(0.5, 1.5))
            np.testing.assert_array_equal(
                cache.forward(x, dirty=layer), model(x)
            )

    def test_hooks_fire_for_executed_suffix_layers(self, model, x):
        layers = quantizable_layers(model)
        names = [n for n, _ in layers]
        cache = ForwardCache(model)
        cache.forward(x)
        _, dirty_layer = layers[1]
        suffix = names[1:]
        with record_activations(model, suffix) as acts:
            cache.forward(x, dirty=dirty_layer)
        assert set(acts) == set(suffix)

    def test_different_input_forces_full_recompute(self, model, x):
        cache = ForwardCache(model)
        cache.forward(x)
        other = x + 1.0
        np.testing.assert_array_equal(
            cache.forward(other, dirty=None), model(other)
        )

    def test_aborted_replay_pass_unprimes_cache(self, model, x):
        layers = quantizable_layers(model)
        cache = ForwardCache(model)
        cache.forward(x)
        _, dirty_layer = layers[1]
        _, last_layer = layers[-1]

        def boom(_mod, _out):
            raise RuntimeError("hook failure mid-pass")

        remove = last_layer.add_forward_hook(boom)
        dirty_layer.weight_fq = dirty_layer.weight.data * 0.5
        with pytest.raises(RuntimeError):
            cache.forward(x, dirty=dirty_layer)
        remove()
        # the aborted pass mixed old and new outputs: it must not be
        # usable as a replay reference
        assert not cache.primed
        np.testing.assert_array_equal(
            cache.forward(x, dirty=dirty_layer), model(x)
        )
        dirty_layer.clear_quant()

    def test_invalidate_drops_cached_pass(self, model, x):
        cache = ForwardCache(model)
        cache.forward(x)
        cache.invalidate()
        assert not cache.primed
        records_before = cache.record_passes
        cache.forward(x, dirty=None)  # must re-record, not replay
        assert cache.record_passes == records_before + 1


class SharedModuleNet(nn.Module):
    """Calls the same Linear twice — unsupported for replay."""

    def __init__(self):
        super().__init__()
        self.lin = nn.Linear(4, 4)

    def forward(self, x):
        return self.lin(self.lin(x))


class TestUnsupportedModels:
    def test_module_called_twice_falls_back_to_full_compute(self):
        nn.seed(3)
        net = SharedModuleNet()
        net.eval()
        x = np.random.default_rng(1).normal(size=(2, 4))
        cache = ForwardCache(net)
        out = cache.forward(x)
        np.testing.assert_array_equal(out, net(x))
        assert not cache.primed  # replay disabled, correctness kept
        np.testing.assert_array_equal(
            cache.forward(x, dirty=net.lin), net(x)
        )


class TestThreadIsolation:
    """The active-replay state must be thread-local: parallel population
    evaluation runs one replica (and one ForwardCache) per thread."""

    def test_active_replay_not_visible_across_threads(self, model, x):
        import threading

        from repro.nn import module as _module

        cache = ForwardCache(model)
        prev = cache._activate()
        try:
            assert _module._REPLAY.active is cache
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(_module._REPLAY.active)
            )
            thread.start()
            thread.join()
            assert seen == [None]  # other threads run plain forwards
        finally:
            _module._REPLAY.active = prev

    def test_concurrent_cached_forwards_stay_correct(self):
        """Two models replaying concurrently in two threads must each
        produce exactly what they produce serially."""
        import threading

        nn.seed(17)
        models = [SmallCNN() for _ in range(2)]
        for m in models:
            m.eval()
        x = np.random.default_rng(9).normal(size=(2, 3, 8, 8))
        expected = [m(x) for m in models]
        caches = [ForwardCache(m) for m in models]
        for cache in caches:
            cache.forward(x)  # record passes

        failures = []
        barrier = threading.Barrier(2)

        def worker(idx):
            try:
                barrier.wait()
                for _ in range(25):
                    dirty = quantizable_layers(models[idx])[1][1]
                    out = caches[idx].forward(x, dirty=dirty)
                    np.testing.assert_array_equal(out, expected[idx])
            except Exception as exc:  # pragma: no cover - failure path
                failures.append((idx, exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures
