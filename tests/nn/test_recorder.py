"""Tests for activation recording and the quantization hooks on layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import quantizable_layers, record_activations


def small_model():
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1),
        nn.ReLU(),
        nn.Conv2d(4, 8, 3, padding=1, bias=False),
        nn.Flatten(),
        nn.Linear(8 * 4 * 4, 5),
    )


X = np.random.default_rng(0).normal(size=(2, 3, 4, 4))


class TestQuantizableLayers:
    def test_finds_conv_and_linear_in_order(self):
        model = small_model()
        layers = quantizable_layers(model)
        assert len(layers) == 3
        kinds = [type(l).__name__ for _, l in layers]
        assert kinds == ["Conv2d", "Conv2d", "Linear"]

    def test_names_are_addressable(self):
        model = small_model()
        names = [n for n, _ in quantizable_layers(model)]
        assert names == ["layers.0", "layers.2", "layers.4"]


class TestRecordActivations:
    def test_records_all_layers(self):
        model = small_model()
        with record_activations(model) as acts:
            out = model(X)
        assert set(acts) == {"layers.0", "layers.2", "layers.4"}
        np.testing.assert_array_equal(acts["layers.4"], out)

    def test_records_subset(self):
        model = small_model()
        with record_activations(model, ["layers.2"]) as acts:
            model(X)
        assert set(acts) == {"layers.2"}

    def test_hooks_removed_after_context(self):
        model = small_model()
        with record_activations(model) as acts:
            model(X)
        acts.clear()
        model(X)
        assert not acts  # hooks no longer fire

    def test_shapes_match_layer_outputs(self):
        model = small_model()
        with record_activations(model) as acts:
            model(X)
        assert acts["layers.0"].shape == (2, 4, 4, 4)
        assert acts["layers.2"].shape == (2, 8, 4, 4)


class TestQuantHooks:
    def test_weight_fq_overrides_forward_only(self):
        layer = nn.Linear(4, 3)
        x = np.random.default_rng(1).normal(size=(2, 4))
        fp = layer(x)
        layer.weight_fq = np.zeros_like(layer.weight.data)
        assert np.allclose(layer(x), layer.bias.data)  # zero weights
        layer.clear_quant()
        np.testing.assert_allclose(layer(x), fp)

    def test_input_fq_applied(self):
        layer = nn.Conv2d(3, 2, 1, bias=False)
        calls = []

        def fq(x):
            calls.append(x.shape)
            return x * 0.0

        layer.input_fq = fq
        out = layer(X)
        assert calls == [X.shape]
        np.testing.assert_allclose(out, 0.0)
        layer.clear_quant()

    def test_effective_weight_switches(self):
        layer = nn.Linear(2, 2)
        assert layer.effective_weight() is layer.weight.data
        fq = np.ones_like(layer.weight.data)
        layer.weight_fq = fq
        assert layer.effective_weight() is fq
