"""Perf-counter subsystem (repro.perf)."""

import threading
import time

from repro.perf import PerfRegistry, get_perf, reset_perf


class TestPrimitives:
    def test_counter_accumulates(self):
        reg = PerfRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_timer_accumulates_wall_clock(self):
        reg = PerfRegistry()
        with reg.timer("t").time():
            time.sleep(0.01)
        with reg.timer("t").time():
            pass
        t = reg.timer("t")
        assert t.count == 2
        assert t.total >= 0.01
        assert t.mean == t.total / 2

    def test_cache_stats_hit_rate(self):
        reg = PerfRegistry()
        s = reg.cache("c")
        s.hit(3)
        s.miss()
        assert s.lookups == 4
        assert s.hit_rate == 0.75
        s.evict()
        assert s.evictions == 1

    def test_empty_cache_hit_rate_is_zero(self):
        assert PerfRegistry().cache("x").hit_rate == 0.0


class TestRegistry:
    def test_snapshot_is_json_serialisable(self):
        import json

        reg = PerfRegistry()
        reg.counter("n").inc()
        with reg.timer("t").time():
            pass
        reg.cache("c").hit()
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["n"] == 1
        assert snap["timers"]["t"]["count"] == 1
        assert snap["caches"]["c"]["hits"] == 1

    def test_report_mentions_all_sections(self):
        reg = PerfRegistry()
        reg.counter("evals").inc()
        with reg.timer("step").time():
            pass
        reg.cache("memo").miss()
        report = reg.report()
        for token in ("evals", "step", "memo", "hit rate"):
            assert token in report

    def test_reset_clears_state(self):
        reg = PerfRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}, "caches": {}}

    def test_global_registry_round_trip(self):
        reg = get_perf()
        reg.counter("test.global").inc()
        assert get_perf().counter("test.global").value >= 1
        reset_perf()
        assert "test.global" not in get_perf().counters


class TestSnapshotUnderMutation:
    """Regression for the telemetry-era race (ISSUE 9 satellite 3):
    ``snapshot()`` iterates the metric dicts while worker threads call
    the create-on-first-use accessors.  Before the registry grew its
    lock, a concurrent insert could blow up the iteration with
    ``RuntimeError: dictionary changed size during iteration``."""

    def test_snapshot_while_threads_create_metrics(self):
        reg = PerfRegistry()
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn(worker: int) -> None:
            try:
                i = 0
                while not stop.is_set():
                    reg.counter(f"churn.c{worker}.{i}").inc()
                    with reg.timer(f"churn.t{worker}.{i}").time():
                        pass
                    reg.cache(f"churn.m{worker}.{i}").hit()
                    i += 1
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        try:
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                snap = reg.snapshot()
                # every observed value is internally consistent
                assert all(v >= 1 for v in snap["counters"].values())
                reg.report()  # the report path iterates too
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors, errors

    def test_snapshot_during_thread_backend_search(self):
        """The real-world trigger: sampling the live registry while a
        thread-backend search creates metrics on worker threads (what a
        MetricsEmitter does every tick)."""
        from repro.obs import MetricsEmitter
        from repro.parallel import ExecutorConfig
        from repro.quant import LPQConfig, lpq_quantize
        from repro.spec import CalibSpec, SearchSpec

        config = LPQConfig(population=3, passes=1, cycles=1,
                           block_size=2, diversity_parents=2,
                           hw_widths=(4, 8), seed=21)
        spec = SearchSpec(
            model="tiny:mlp", calib=CalibSpec(batch=4, seed=3),
            config=config, seed=5,
        )
        ref = lpq_quantize(spec=spec)
        threaded = SearchSpec(
            model="tiny:mlp", calib=CalibSpec(batch=4, seed=3),
            config=config, seed=5,
            executor=ExecutorConfig("thread", workers=2),
        )
        perf = reset_perf()  # ambient registry: what the search mutates
        samples: list[dict] = []
        emitter = MetricsEmitter(perf, samples.append, interval_s=0.001,
                                 source="test:thread-search")
        emitter.start()
        try:
            got = lpq_quantize(spec=threaded)
        finally:
            emitter.stop()
            reset_perf()
        # telemetry was passive: the hammered search is still bitwise
        assert got.fitness == ref.fitness
        assert got.solution == ref.solution
        assert samples, "emitter never sampled"
