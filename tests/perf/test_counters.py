"""Perf-counter subsystem (repro.perf)."""

import time

from repro.perf import PerfRegistry, get_perf, reset_perf


class TestPrimitives:
    def test_counter_accumulates(self):
        reg = PerfRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_timer_accumulates_wall_clock(self):
        reg = PerfRegistry()
        with reg.timer("t").time():
            time.sleep(0.01)
        with reg.timer("t").time():
            pass
        t = reg.timer("t")
        assert t.count == 2
        assert t.total >= 0.01
        assert t.mean == t.total / 2

    def test_cache_stats_hit_rate(self):
        reg = PerfRegistry()
        s = reg.cache("c")
        s.hit(3)
        s.miss()
        assert s.lookups == 4
        assert s.hit_rate == 0.75
        s.evict()
        assert s.evictions == 1

    def test_empty_cache_hit_rate_is_zero(self):
        assert PerfRegistry().cache("x").hit_rate == 0.0


class TestRegistry:
    def test_snapshot_is_json_serialisable(self):
        import json

        reg = PerfRegistry()
        reg.counter("n").inc()
        with reg.timer("t").time():
            pass
        reg.cache("c").hit()
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["n"] == 1
        assert snap["timers"]["t"]["count"] == 1
        assert snap["caches"]["c"]["hits"] == 1

    def test_report_mentions_all_sections(self):
        reg = PerfRegistry()
        reg.counter("evals").inc()
        with reg.timer("step").time():
            pass
        reg.cache("memo").miss()
        report = reg.report()
        for token in ("evals", "step", "memo", "hit rate"):
            assert token in report

    def test_reset_clears_state(self):
        reg = PerfRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}, "caches": {}}

    def test_global_registry_round_trip(self):
        reg = get_perf()
        reg.counter("test.global").inc()
        assert get_perf().counter("test.global").value >= 1
        reset_perf()
        assert "test.global" not in get_perf().counters
