"""scripts/watch_fleet.py: table rendering and the client-driving modes."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture()
def wf():
    spec = importlib.util.spec_from_file_location(
        "watch_fleet_under_test", REPO / "scripts" / "watch_fleet.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


MESSAGE = {
    "type": "metrics",
    "source": "daemon",
    "seq": 4,
    "t": 12.0,
    "status": {"queue_depth": 2, "workers": 2, "jobs": {"j1": "running"}},
    "workers": [
        {
            "source": "w2",
            "delta": {"counters": {
                "worker.evaluations": 30, "fault.drop": 1, "fault.retry": 2,
            }},
            "gauges": {"queue_depth": 1, "heartbeat_ms": 7},
        },
        {
            "source": "w1",
            "delta": {
                "counters": {"worker.evaluations": 10},
                "caches": {"fitness.memo": {"hits": 8, "misses": 2}},
            },
            "gauges": {},
        },
    ],
}


class FakeClient:
    """Stands in for SearchClient; records construction and close()."""

    instances = []

    def __init__(self, address, token=None):
        self.address = address
        self.token = token
        self.closed = False
        self.stream = []
        self.status = {"workers": 0, "jobs": {}}
        self.error = None
        FakeClient.instances.append(self)

    def fleet_status(self):
        if self.error is not None:
            raise self.error
        return self.status

    def metrics_stream(self):
        if self.error is not None:
            raise self.error
        yield from self.stream

    def close(self):
        self.closed = True


@pytest.fixture(autouse=True)
def fresh_instances():
    FakeClient.instances = []


# ------------------------------------------------------------- rendering


def test_render_table_rates_and_rows(wf):
    text = wf.render_table(MESSAGE, elapsed=2.0)
    lines = text.splitlines()
    assert lines[0] == "fleet @ daemon   seq 4"
    assert lines[1] == "queue depth 2   workers 2   jobs 1"
    w1_row, w2_row = (
        next(line for line in lines if line.startswith(name))
        for name in ("w1", "w2")
    )
    assert lines.index(w1_row) < lines.index(w2_row)  # sorted by source
    assert "5.0" in w1_row                 # 10 evaluations / 2s
    assert "8/10 (80%)" in w1_row          # cache hit cell
    assert "15.0" in w2_row                # 30 evaluations / 2s
    assert w2_row.rstrip().endswith("3")   # fault.* counters summed


def test_render_table_first_sample_shows_raw_counts(wf):
    # no elapsed on the first frame: the delta is printed, not a rate
    w1_row = next(
        line for line in wf.render_table(MESSAGE, elapsed=None).splitlines()
        if line.startswith("w1")
    )
    assert "10" in w1_row and "5.0" not in w1_row


def test_render_table_without_workers(wf):
    text = wf.render_table({"source": "d", "seq": 1, "status": {}}, None)
    assert "(no worker samples this interval)" in text


def test_cache_cell_dash_without_lookups(wf):
    assert wf._cache_cell({}) == "-"
    assert wf._cache_cell({"caches": {"m": {"hits": 0, "misses": 0}}}) == "-"


# ----------------------------------------------------------- main() modes


def test_main_once_json(wf, monkeypatch, capsys):
    monkeypatch.setattr(wf, "SearchClient", FakeClient)
    assert wf.main(["127.0.0.1:7400", "--json", "--once"]) == 0
    client = FakeClient.instances[0]
    assert client.address == "127.0.0.1:7400"
    assert client.closed
    out = capsys.readouterr().out.strip()
    assert json.loads(out) == client.status
    assert "\n" not in out  # --json is one object per line


def test_main_json_stream_emits_each_sample(wf, monkeypatch, capsys):
    monkeypatch.setattr(wf, "SearchClient", FakeClient)
    second = dict(MESSAGE, seq=5, t=14.0)
    monkeypatch.setattr(
        FakeClient, "metrics_stream",
        lambda self: iter([MESSAGE, second, dict(MESSAGE, seq=6)]),
    )
    assert wf.main(["host:1", "--json", "--samples", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2  # --samples stopped the stream
    assert [json.loads(line)["seq"] for line in lines] == [4, 5]
    assert FakeClient.instances[0].closed


def test_main_table_stream(wf, monkeypatch, capsys):
    monkeypatch.setattr(wf, "SearchClient", FakeClient)
    monkeypatch.setattr(
        FakeClient, "metrics_stream", lambda self: iter([MESSAGE]),
    )
    assert wf.main(["host:1", "--samples", "1"]) == 0
    out = capsys.readouterr().out
    assert "fleet @ daemon   seq 4" in out
    assert "\x1b[2J" not in out  # captured stdout is not a tty: no clear


def test_main_token_from_environment(wf, monkeypatch):
    monkeypatch.setattr(wf, "SearchClient", FakeClient)
    monkeypatch.setenv("REPRO_SERVER_TOKEN", "sekrit")
    wf.main(["host:1", "--json", "--once"])
    assert FakeClient.instances[0].token == "sekrit"
    # explicit --token wins over the environment
    wf.main(["host:1", "--json", "--once", "--token", "cli"])
    assert FakeClient.instances[1].token == "cli"


def test_main_server_error_exits_nonzero(wf, monkeypatch, capsys):
    monkeypatch.setattr(wf, "SearchClient", FakeClient)

    def boom(self):
        raise wf.ServerError("bad token")

    monkeypatch.setattr(FakeClient, "fleet_status", boom)
    assert wf.main(["host:1", "--once"]) == 1
    assert "bad token" in capsys.readouterr().err
    assert FakeClient.instances[0].closed
