"""Test models for the scheduler suite.

Lives in a real module (not conftest) so ``EvaluatorSpec`` can pickle
builders by reference for process workers.
"""

from repro import nn


class ServeBNCNN(nn.Module):
    """Small BN CNN, fast to evaluate (the scheduler suite's workhorse)."""

    def __init__(self):
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, bias=False),
            nn.BatchNorm2d(6),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(6, 8, 3, padding=1, bias=False),
            nn.BatchNorm2d(8),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(8, 8)

    def forward(self, x):
        return self.head(self.pool(self.features(x)))


class ServeMLP(nn.Module):
    """BN-free second job: different cost profile than the CNN, so a
    two-job schedule exercises heterogeneous adaptive chunking."""

    def __init__(self):
        super().__init__()
        self.pool = nn.GlobalAvgPool()
        self.fc1 = nn.Linear(3, 16)
        self.act = nn.ReLU()
        self.fc2 = nn.Linear(16, 8)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(self.pool(x))))


class FailingBNCNN(nn.Module):
    """Builds and calibrates fine (eval-mode forwards succeed) but
    raises on the first training-mode forward — i.e. inside the fused
    BN-recalibration pass of the first candidate evaluation.  Used to
    prove a failing job cannot poison the shared pool."""

    def __init__(self):
        super().__init__()
        self.conv = nn.Conv2d(3, 4, 3, padding=1, bias=False)
        self.bn = nn.BatchNorm2d(4)
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(4, 4)

    def forward(self, x):
        if self.training:
            raise RuntimeError("injected failure: training-mode forward")
        return self.head(self.pool(self.bn(self.conv(x))))


class NegatingMLP(nn.Module):
    """Behavior-affecting but shape-preserving constructor argument:
    ``NegatingMLP(negate=True)`` has the same state dict as the default
    instance yet computes a different function.  The wire codec must
    refuse to ship such an instance by class name (the worker's
    zero-arg rebuild could not reproduce it)."""

    def __init__(self, negate: bool = False):
        super().__init__()
        self.negate = negate
        self.pool = nn.GlobalAvgPool()
        self.fc = nn.Linear(3, 4)

    def forward(self, x):
        out = self.fc(self.pool(x))
        return -out if self.negate else out


def build_serve_cnn() -> nn.Module:
    return ServeBNCNN()


def build_serve_mlp() -> nn.Module:
    return ServeMLP()


def build_failing_cnn() -> nn.Module:
    return FailingBNCNN()
