"""Durable daemon state: journal codec and atomic result store.

Property tests for the crash-safety contracts the search daemon
trusts: a journal truncated at *any* byte offset (a crash mid-append)
replays every complete record and nothing corrupt; a result-store
write that dies mid-flight can never leave a torn file at the digest's
final path — the regression test for the non-atomic cache write
``run_search.py --cache-dir`` used to do.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import PerfRegistry
from repro.serve.store import JOURNAL_OPS, Journal, ResultStore, result_record


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

journal_records = st.fixed_dictionaries({
    "op": st.sampled_from(JOURNAL_OPS),
    "job": st.text(min_size=1, max_size=12),
    "extra": json_scalars,
})


class TestJournalAppendReplay:
    def test_roundtrip_in_order(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("submitted", "a", digest="d1", priority=2)
        journal.append("running", "a")
        journal.append("done", "a", digest="d1")
        ops = [(r["op"], r["job"]) for r in journal.replay()]
        assert ops == [("submitted", "a"), ("running", "a"), ("done", "a")]
        journal.close()

    def test_unknown_op_rejected(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError, match="unknown journal op"):
            journal.append("exploded", "a")

    def test_missing_file_replays_empty(self, tmp_path):
        assert Journal(tmp_path / "missing.jsonl").replay() == []

    def test_mid_file_corruption_raises_naming_the_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"v":1,"op":"submitted","job":"a"}\n'
                        'garbage not json\n'
                        '{"v":1,"op":"done","job":"a"}\n')
        with pytest.raises(ValueError, match="line 2"):
            Journal(path).replay()

    def test_torn_tail_repaired_before_next_append(self, tmp_path):
        """An unterminated tail from a crash mid-append must not splice
        into the next append's record."""
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("submitted", "a")
        journal.close()
        with open(journal.path, "ab") as fh:
            fh.write(b'{"v":1,"op":"run')  # the crash point
        journal2 = Journal(journal.path)
        journal2.append("running", "a")
        ops = [r["op"] for r in journal2.replay()]
        assert ops == ["submitted", "running"]
        journal2.close()

    @given(records=st.lists(journal_records, min_size=1, max_size=8),
           data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_truncation_recovers_every_complete_record(
        self, tmp_path_factory, records, data
    ):
        """The satellite property: simulate a crash by truncating the
        journal at an arbitrary byte offset — replay returns a prefix
        of the appended records containing at least every record whose
        full line (newline included) survived."""
        tmp_path = tmp_path_factory.mktemp("journal")
        journal = Journal(tmp_path / "j.jsonl", perf=PerfRegistry())
        ends = []
        for record in records:
            journal.append(record["op"], record["job"],
                           extra=record["extra"])
            ends.append(journal.path.stat().st_size)
        journal.close()
        offset = data.draw(st.integers(0, ends[-1]), label="truncate_at")
        with open(journal.path, "r+b") as fh:
            fh.truncate(offset)
        replayed = Journal(journal.path, perf=PerfRegistry()).replay()
        complete = sum(1 for end in ends if end <= offset)
        assert len(replayed) >= complete
        # whatever was recovered is a verbatim prefix of what was written
        for got, want in zip(replayed, records):
            assert (got["op"], got["job"]) == (want["op"], want["job"])
        if offset == ends[-1]:
            assert len(replayed) == len(records)

    def test_torn_tail_counts_in_perf(self, tmp_path):
        perf = PerfRegistry()
        journal = Journal(tmp_path / "j.jsonl", perf=perf)
        journal.append("submitted", "a")
        journal.close()
        with open(journal.path, "ab") as fh:
            fh.write(b'{"torn')
        assert len(Journal(journal.path, perf=perf).replay()) == 1
        assert perf.counter("journal.torn_tails").value == 1


class TestJournalCompaction:
    def test_compact_keeps_submission_and_terminal(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("submitted", "a", digest="da")
        journal.append("running", "a")
        journal.append("done", "a", digest="da")
        journal.append("submitted", "b", digest="db")
        journal.append("running", "b")  # interrupted: no terminal record
        dropped = journal.compact()
        assert dropped == 2  # a's running + b's running
        ops = [(r["op"], r["job"]) for r in journal.replay()]
        assert ops == [("submitted", "a"), ("done", "a"), ("submitted", "b")]

    def test_rewrite_is_atomic_under_failure(self, tmp_path, monkeypatch):
        """A crash during compaction must leave the old journal intact
        (write-then-rename: the blob-store idiom)."""
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("submitted", "a")
        journal.append("running", "a")
        before = journal.path.read_bytes()

        def boom(src, dst):
            raise OSError("disk pulled")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk pulled"):
            journal.rewrite([{"v": 1, "op": "submitted", "job": "a"}])
        monkeypatch.undo()
        assert journal.path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp"))  # temp file cleaned up


class TestResultStoreAtomicity:
    def test_roundtrip_and_cache_stats(self, tmp_path):
        perf = PerfRegistry()
        store = ResultStore(tmp_path / "results", perf=perf)
        digest = "a" * 64
        assert store.load(digest) is None
        store.store(digest, {"fitness": 0.5})
        assert store.load(digest) == {"fitness": 0.5}
        stats = perf.cache("serve.results")
        assert (stats.hits, stats.misses) == (1, 1)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = "b" * 64
        store.path(digest).write_text("{torn json")
        assert store.load(digest) is None
        store.path(digest).write_text('"not an object"')
        assert store.load(digest) is None

    def test_crash_mid_write_leaves_no_torn_entry(self, tmp_path,
                                                  monkeypatch):
        """The latent-bug regression: the old ``run_search.py`` cache
        wrote the final path directly, so a crash mid-write left a
        torn JSON file the daemon would later trust.  With
        write-then-rename, a failure at any point leaves either no
        entry or the previous complete one — never a torn file."""
        store = ResultStore(tmp_path)
        digest = "c" * 64

        real_dump = json.dump

        def dies_mid_write(obj, fh, **kw):
            fh.write('{"fitness": 0.')  # partial bytes reach the disk...
            fh.flush()
            raise OSError("killed mid-write")

        monkeypatch.setattr(json, "dump", dies_mid_write)
        with pytest.raises(OSError, match="killed mid-write"):
            store.store(digest, {"fitness": 0.5})
        monkeypatch.setattr(json, "dump", real_dump)
        assert not store.path(digest).exists()  # nothing torn published
        assert not list(tmp_path.glob("*.tmp"))  # temp file cleaned up
        assert store.load(digest) is None

        # now with a previous complete entry: the failed overwrite
        # leaves the old record untouched
        store.store(digest, {"fitness": 1.0})
        monkeypatch.setattr(json, "dump", dies_mid_write)
        with pytest.raises(OSError):
            store.store(digest, {"fitness": 2.0})
        monkeypatch.setattr(json, "dump", real_dump)
        assert store.load(digest) == {"fitness": 1.0}

    def test_run_search_cache_is_the_atomic_store(self):
        """``run_search.py --cache-dir`` must route through ResultStore
        (the fix): the script's cache opener returns one."""
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        sys.path.insert(0, str(repo / "scripts"))
        try:
            import run_search
        finally:
            sys.path.pop(0)
        cache = run_search._cache_open(Path("/tmp/run-search-cache-test"))
        assert isinstance(cache, ResultStore)
        assert run_search._cache_open(None) is None


class TestResultRecord:
    def test_token_scrubbed_and_digest_stamped(self):
        from repro.parallel import ExecutorConfig
        from repro.spec import CalibSpec, SearchSpec

        spec = SearchSpec(
            model="tiny:mlp", calib=CalibSpec(batch=4),
            executor=ExecutorConfig(
                "remote", addresses=("127.0.0.1:1",), token="s3cret"
            ),
        )

        class FakeResult:
            fitness = 1.0
            mean_weight_bits = 4.0
            mean_act_bits = 8.0
            evaluations = 3

            class solution:
                layer_params = ()

            @staticmethod
            def model_size_mb():
                return 0.25

        record = result_record(spec, FakeResult, wall=1.5)
        assert record["digest"] == spec.digest()
        assert record["spec"]["executor"]["token"] is None
        assert "s3cret" not in json.dumps(record)
        assert record["wall_s"] == 1.5
