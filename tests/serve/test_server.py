"""The always-on search daemon: protocol, queue control, durability.

The acceptance bar is the stack's standing invariant: a daemon that
crashes mid-run and restarts on the same ``data_dir`` finishes every
job bitwise-identical to an uninterrupted serial
:func:`repro.quant.lpq_quantize` run — done jobs replay from the
digest store for free, interrupted jobs re-run exactly once.
"""

import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.perf import PerfRegistry
from repro.quant import lpq_quantize
from repro.serve.server import SearchClient, SearchServer, ServerError
from repro.serve.store import Journal
from repro.spec import CalibSpec, SearchSpec
from repro.spec.wire import (
    SERVER_OPS,
    frame_message,
    hello_message,
    read_frame,
)

from .conftest import SEARCH


def _spec(seed: int) -> SearchSpec:
    return SearchSpec(
        model="tiny:mlp",
        calib=CalibSpec(batch=4, seed=3),
        config=SEARCH,
        seed=seed,
    )


SEEDS = (10, 11, 12)


@pytest.fixture(scope="module")
def serial_refs():
    """Uninterrupted serial ground truth, one result per seed."""
    return {seed: lpq_quantize(spec=_spec(seed)) for seed in SEEDS}


def _assert_bitwise(record: dict, ref) -> None:
    assert record["fitness"] == ref.fitness
    assert record["solution"] == [
        [p.n, p.es, p.rs, p.sf] for p in ref.solution.layer_params
    ]


def _wait_states(server, want: dict, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        states = {name: server.job_state(name) for name in want}
        if states == want:
            return
        bad = [n for n, s in states.items()
               if s in ("failed",) and want[n] != "failed"]
        assert not bad, {
            n: server._get_job(n).error for n in bad
        }
        time.sleep(0.05)
    raise AssertionError(
        f"timed out waiting for {want}, at "
        f"{ {n: server.job_state(n) for n in want} }"
    )


class TestRestartRecovery:
    """Satellite 1: kill the daemon at a seeded point, restart it on the
    same journal/cache dir, and demand bitwise-identical results."""

    def test_crash_midrun_restart_bitwise(self, tmp_path, serial_refs):
        data_dir = tmp_path / "daemon"

        # crash exactly when j0 is done and j1 has started running: with
        # one job per round this is a deterministic batch boundary
        def crash_when(server, name, info):
            try:
                return (server.job_state("j0") == "done"
                        and server.job_state("j1") == "running")
            except ServerError:  # j1 not submitted yet
                return False

        # telemetry stays on across the crash/restart cycle (ISSUE 9):
        # live emission must not move a bit of the recovered results
        first = SearchServer(
            data_dir=data_dir, max_jobs_per_round=1,
            crash_hook=crash_when, perf=PerfRegistry(),
            metrics_interval=0.1,
        ).start()
        for idx, seed in enumerate(SEEDS):
            first.submit_job(_spec(seed), name=f"j{idx}")
        deadline = time.monotonic() + 120.0
        while first._runner.is_alive():
            assert time.monotonic() < deadline, "crash hook never fired"
            time.sleep(0.02)
        # the simulated SIGKILL left one job per lifecycle stage
        assert first.job_state("j0") == "done"
        assert first.job_state("j1") == "running"
        assert first.job_state("j2") == "queued"
        assert first.stats["executed"] == 1

        second = SearchServer(
            data_dir=data_dir, max_jobs_per_round=1, perf=PerfRegistry(),
            metrics_interval=0.1,
        ).start()
        try:
            # j0's result landed in the store before the crash → replayed
            # without re-execution; j1 was interrupted → re-queued
            assert second.stats["replayed"] == 1
            assert second.stats["recovered"] == 1
            assert second.job_state("j0") == "done"
            _wait_states(second, {"j0": "done", "j1": "done", "j2": "done"})
            assert second.stats["executed"] == 2  # j1 + j2 only
            for idx, seed in enumerate(SEEDS):
                _assert_bitwise(second.job_record(f"j{idx}"),
                                serial_refs[seed])
        finally:
            second.stop()

        # the journal proves no duplicate execution: the done job ran
        # once, the interrupted job has its pre- and post-crash attempts
        runs: dict[str, int] = {}
        for record in Journal(data_dir / "journal.jsonl").replay():
            if record["op"] == "running":
                runs[record["job"]] = runs.get(record["job"], 0) + 1
        assert runs == {"j0": 1, "j1": 2, "j2": 1}

    def test_done_jobs_served_from_copied_store(self, tmp_path,
                                                serial_refs):
        """A digest store transplanted under a fresh daemon completes
        matching submissions instantly — zero evaluation, hit counters
        prove it."""
        seed_dir = tmp_path / "seed"
        with SearchServer(data_dir=seed_dir, perf=PerfRegistry()) as server:
            server.submit_job(_spec(10), name="warm")
            _wait_states(server, {"warm": "done"})

        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        shutil.copytree(seed_dir / "results", fresh_dir / "results")
        perf = PerfRegistry()
        with SearchServer(data_dir=fresh_dir, perf=perf) as server:
            job, existing = server.submit_job(_spec(10), name="replayed")
            assert not existing
            assert job.state == "done" and job.cached
            assert server.stats == {
                "executed": 0, "replayed": 1, "recovered": 0,
            }
            _assert_bitwise(server.job_record("replayed"), serial_refs[10])
            assert perf.cache("serve.results").hits == 1
            # a novel spec is still a store miss and actually runs
            job2, _ = server.submit_job(_spec(11), name="cold")
            assert not job2.cached
            _wait_states(server, {"cold": "done"})
            assert server.stats["executed"] == 1

    def test_sigkill_subprocess_restart(self, tmp_path, serial_refs):
        """The real thing: ``run_server.py`` killed with SIGKILL mid-run,
        restarted on the same ``--data-dir``, clients reconnect and the
        sweep still matches the serial ground truth."""
        repo = Path(__file__).resolve().parents[2]
        data_dir = tmp_path / "daemon"
        journal = data_dir / "journal.jsonl"

        def launch():
            proc = subprocess.Popen(
                [sys.executable, str(repo / "scripts/run_server.py"),
                 "--data-dir", str(data_dir), "--quiet",
                 "--max-jobs-per-round", "1"],
                stdout=subprocess.PIPE, text=True, cwd=repo,
            )
            line = proc.stdout.readline()
            assert line.startswith("server listening on "), line
            return proc, line.split()[-1]

        proc, address = launch()
        try:
            client = SearchClient(address, reconnect_s=120.0)
            for idx, seed in enumerate(SEEDS):
                reply = client.submit(_spec(seed), job=f"j{idx}")
                assert reply["state"] in ("queued", "running")
                assert not reply["existing"]

            # deterministic-enough kill point: the first instant the
            # journal shows a job running
            deadline = time.monotonic() + 60.0
            while ("running" not in journal.read_text()
                   if journal.exists() else True):
                assert time.monotonic() < deadline, "no job ever ran"
                time.sleep(0.01)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            with pytest.raises((ConnectionError, ServerError)):
                client.status("j0")

            proc, address = launch()
            client = SearchClient(address, reconnect_s=120.0)
            for idx, seed in enumerate(SEEDS):
                record = client.wait(f"j{idx}", timeout=120.0)
                _assert_bitwise(record, serial_refs[seed])
            # every submission survived the SIGKILL; none ran twice
            runs: dict[str, int] = {}
            for record in Journal(journal).replay():
                if record["op"] == "running":
                    runs[record["job"]] = runs.get(record["job"], 0) + 1
            assert set(runs) == {"j0", "j1", "j2"}
            assert all(count <= 2 for count in runs.values())
            client.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


class TestClientProtocol:
    """Submit/status/result/cancel/list/subscribe over a live socket."""

    @pytest.fixture()
    def server(self, tmp_path):
        with SearchServer(data_dir=tmp_path / "d",
                          perf=PerfRegistry()) as srv:
            yield srv

    def test_submit_stream_result_roundtrip(self, server, serial_refs):
        client = SearchClient(server.address)
        reply = client.submit(_spec(10), job="search")
        assert reply["job"] == "search"
        events = []
        record = client.wait("search", on_event=events.append,
                             timeout=120.0)
        _assert_bitwise(record, serial_refs[10])
        kinds = [e["event"] for e in events]
        assert "progress" in kinds
        assert events[-1]["final"] and events[-1]["data"]["state"] == "done"
        progress = [e for e in events if e["event"] == "progress"]
        assert all(e["data"]["evaluations"] > 0 for e in progress)
        # resubmitting the same search is a digest dedupe, not a re-run
        again = client.submit(_spec(10))
        assert again["existing"] and again["job"] == "search"
        assert client.status("search")["state"] == "done"
        client.close()

    def test_unknown_and_malformed_requests_keep_session_alive(
        self, server
    ):
        """Satellite 3's live half: a bad frame gets a clean error reply
        and the session keeps serving — only stream corruption ends it
        (contrast: the worker protocol closes on unknown frames)."""
        client = SearchClient(server.address)
        with pytest.raises(ServerError, match="expected one of"):
            client._request({"type": "frobnicate"})
        with pytest.raises(ServerError, match="submit needs a spec"):
            client._request({"type": "submit", "spec": "nope"})
        with pytest.raises(ServerError, match="invalid spec"):
            client._request({"type": "submit",
                             "spec": {"model": 42, "wormhole": True}})
        with pytest.raises(ServerError, match="unknown job"):
            client.status("never-submitted")
        with pytest.raises(ServerError, match="is queued|unknown job"):
            client._request({"type": "result", "job": "never-submitted"})
        # the same connection still works after every rejection
        assert client.list_jobs() == []
        client.close()

    def test_raw_socket_error_reply_names_ops(self, server):
        host, port = server.address.rsplit(":", 1)
        sock = socket.create_connection((host, int(port)), timeout=10.0)
        rfile = sock.makefile("rb")
        sock.sendall(frame_message(hello_message()))
        assert read_frame(rfile)["type"] == "welcome"
        sock.sendall(frame_message({"type": "frobnicate", "req": 7}))
        reply = read_frame(rfile)
        assert reply["type"] == "reply" and reply["req"] == 7
        assert not reply["ok"]
        for op in SERVER_OPS:
            assert op in reply["error"]
        sock.sendall(frame_message({"type": "list_jobs", "req": 8}))
        reply = read_frame(rfile)
        assert reply["ok"] and reply["jobs"] == []
        sock.close()

    def test_token_refusal(self, tmp_path):
        with SearchServer(data_dir=tmp_path / "d", token="s3cret",
                          perf=PerfRegistry()) as server:
            with pytest.raises(ConnectionError, match="bad auth token"):
                SearchClient(server.address, token="wrong").list_jobs()
            client = SearchClient(server.address, token="s3cret")
            assert client.list_jobs() == []
            client.close()


class TestQueueControl:
    """Priority ordering and cancellation, pinned down with a gate that
    parks the first running job at its first batch boundary."""

    @pytest.fixture()
    def gated(self, tmp_path):
        gate = threading.Event()

        def hold(server, name, info):
            gate.wait(timeout=60.0)
            return False

        server = SearchServer(
            data_dir=tmp_path / "d", max_jobs_per_round=1,
            crash_hook=hold, perf=PerfRegistry(),
        ).start()
        try:
            yield server, gate
        finally:
            gate.set()
            server.stop()

    def _park_first(self, server) -> None:
        server.submit_job(_spec(10), name="parked")
        _wait_states(server, {"parked": "running"}, timeout=60.0)

    def test_priority_beats_submission_order(self, gated):
        server, gate = gated
        self._park_first(server)
        server.submit_job(_spec(11), name="low", priority=0)
        server.submit_job(_spec(12), name="high", priority=5)
        gate.set()
        _wait_states(server, {"parked": "done", "low": "done",
                              "high": "done"})
        started = [r["job"] for r in server.journal.replay()
                   if r["op"] == "running"]
        assert started == ["parked", "high", "low"]

    def test_cancel_queued_is_immediate_and_releases_digest(self, gated):
        server, gate = gated
        self._park_first(server)
        server.submit_job(_spec(11), name="doomed")
        assert server.cancel_job("doomed").state == "cancelled"
        # terminal cancel is journaled and the digest is free again
        ops = [(r["op"], r["job"]) for r in server.journal.replay()]
        assert ("cancelled", "doomed") in ops
        job, existing = server.submit_job(_spec(11), name="second-try")
        assert not existing and job.name == "second-try"
        gate.set()
        _wait_states(server, {"parked": "done", "second-try": "done"})
        assert server.stats["executed"] == 2  # doomed never ran

    def test_cancel_running_lands_at_batch_boundary(self, gated):
        server, gate = gated
        self._park_first(server)
        assert server.cancel_job("parked").state == "running"
        gate.set()
        _wait_states(server, {"parked": "cancelled"})
        client = SearchClient(server.address)
        with pytest.raises(ServerError, match="cancelled"):
            client.wait("parked", timeout=30.0)
        client.close()
