"""Shared fixtures for the multi-search scheduler tests."""

import pytest

from repro import nn
from repro.data import calibration_batch
from repro.quant import LPQConfig

from .._lock_order import lock_order_guard  # noqa: F401
from .servemodels import ServeBNCNN, ServeMLP


SEARCH = LPQConfig(
    population=3,
    passes=1,
    cycles=1,
    block_size=2,
    diversity_parents=2,
    hw_widths=(4, 8),
    seed=21,
)


@pytest.fixture(scope="module")
def serve_setup():
    """Two heterogeneous models + one shared calibration batch."""
    nn.seed(31)
    cnn = ServeBNCNN()
    cnn.eval()
    nn.seed(32)
    mlp = ServeMLP()
    mlp.eval()
    images = calibration_batch(8, seed=7)
    return cnn, mlp, images
