"""The chaos soak: remote ≡ serial bitwise under every committed fault plan.

Each :data:`repro.serve.chaos.COMMITTED_PLANS` scenario runs a real
search against a local fleet that misbehaves on a deterministic
schedule — workers killed and restarted, sessions hung, frames
CRC-corrupted, results duplicated, the whole fleet dropped — and the
result must stay bitwise-equal to the serial backend while the
expected ``fault.*`` recovery counters come out nonzero.  The CI
``chaos-smoke`` leg runs this file on every push.
"""

import json

import pytest

from repro.parallel import ExecutorConfig
from repro.perf import get_perf
from repro.quant import lpq_quantize
from repro.serve import SearchScheduler
from repro.serve.chaos import (
    COMMITTED_PLANS,
    ChaosController,
    ChaosFleet,
    FaultEvent,
    FaultPlan,
)
from repro.serve.resilience import RetryPolicy
from repro.spec import CalibSpec, SearchSpec

from .conftest import SEARCH

SPEC = SearchSpec(
    model="tiny:resnet", calib=CalibSpec(batch=4, seed=3), config=SEARCH,
    name="tiny",
)


@pytest.fixture(scope="module")
def serial_reference():
    return lpq_quantize(spec=SPEC)


class TestFaultPlanSerde:
    def test_plan_roundtrips_through_json(self):
        plan = FaultPlan(name="demo", seed=7, events=(
            FaultEvent(at_task=3, action="kill", restart_after_s=0.5),
            FaultEvent(at_task=5, action="corrupt_result"),
        ))
        assert FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) \
            == plan

    def test_committed_plans_roundtrip(self):
        for name, scenario in COMMITTED_PLANS.items():
            wire = json.loads(json.dumps(scenario.plan.to_dict()))
            assert FaultPlan.from_dict(wire) == scenario.plan, name

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEvent(at_task=1, action="set_on_fire")

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan field"):
            FaultPlan.from_dict({"name": "x", "evnets": []})

    def test_retry_policy_rides_executor_spec_json(self):
        """The resilience knobs are part of the committed spec file:
        a SearchSpec carrying a retry policy survives JSON bitwise."""
        config = ExecutorConfig(
            "remote", addresses=["127.0.0.1:7301"],
            retry=RetryPolicy(max_attempts=4, backoff_base_s=0.25,
                              deadline_s=12.0, fleet_wait_s=3.0),
            on_fleet_death="local",
        )
        spec = SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4),
                          config=SEARCH, executor=config)
        back = SearchSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back.executor.retry == config.retry
        assert back.executor.on_fleet_death == "local"


class TestControllerClock:
    def test_events_fire_once_at_their_task_count(self):
        plan = FaultPlan(name="t", events=(
            FaultEvent(at_task=2, action="hang"),
            FaultEvent(at_task=2, action="drop_caches"),
            FaultEvent(at_task=4, action="hang"),
        ))
        controller = ChaosController(plan)
        fired = [controller.on_task(None) for _ in range(5)]
        assert [len(events) for events in fired] == [0, 2, 0, 1, 0]

    def test_ghost_starts_on_a_killed_server_do_not_tick_the_clock(self):
        """A ``kill`` stops its server on a helper thread, so the dying
        worker can race more queued tasks into their start hooks.  Those
        ghost starts must not advance the clock — otherwise a later kill
        event can be swallowed by a death the client only observes once,
        and plans like ``poison_chunk`` (which needs the *same* chunk
        killed twice to prove quarantine) go nondeterministic."""

        class _Server:
            def stop(self):
                pass

        plan = FaultPlan(name="t", events=(
            FaultEvent(at_task=1, action="kill"),
            FaultEvent(at_task=2, action="kill"),
        ))
        controller = ChaosController(plan)
        first, replacement = _Server(), _Server()
        events = controller.on_task(first)
        assert [e.at_task for e in events] == [1]
        assert controller.apply_task_events(first, None, events)
        # the dying server races two more task starts: no ticks, no events
        assert controller.on_task(first) == ()
        assert controller.on_task(first) == ()
        assert controller.task_count == 1
        # the restarted replacement is a fresh object: its first start is
        # logical task 2 and collects the second kill
        events = controller.on_task(replacement)
        assert [e.at_task for e in events] == [2]


@pytest.mark.parametrize("name", sorted(COMMITTED_PLANS))
def test_soak_bitwise_identical_under_fault_plan(name, serial_reference):
    """The acceptance criterion: under every committed fault plan the
    scheduler completes with results bitwise-equal to serial, and the
    plan's expected recovery counters are actually exercised."""
    scenario = COMMITTED_PLANS[name]
    perf = get_perf()
    before = {
        counter: perf.counter(counter).value for counter in scenario.expect
    }
    # telemetry runs hot through the whole soak (ISSUE 9): live
    # emission on every chaos worker must not move a bit of any result
    with ChaosFleet(scenario.plan, count=scenario.count,
                    metrics_interval=0.1) as addresses:
        scheduler = SearchScheduler(executor=ExecutorConfig(
            "remote", addresses=addresses, retry=scenario.retry,
            on_fleet_death=scenario.on_fleet_death,
        ))
        scheduler.submit("tiny", spec=SPEC)
        results = scheduler.run()
    assert results["tiny"].solution == serial_reference.solution, name
    assert results["tiny"].fitness == serial_reference.fitness, name
    assert results["tiny"].history.best_fitness \
        == serial_reference.history.best_fitness, name
    for counter in scenario.expect:
        assert perf.counter(counter).value > before[counter], (
            f"plan {name!r} was expected to exercise {counter} but the "
            f"counter never moved — the fault did not fire or recovery "
            f"took an unexpected path"
        )
