"""The socket transport: framing, handshake, liveness, and bitwise parity.

Acceptance criteria from the WorkerPool redesign:

* ``ExecutorConfig(backend="remote", addresses=[...])`` produces
  bitwise-identical search results to ``backend="serial"`` for the
  committed example specs, through both ``lpq_quantize`` and the
  scheduler;
* killing one of two workers mid-search still completes the job with
  identical results (dead-worker requeue);
* a bad auth token is refused cleanly — an exception with context, no
  hang — and the worker keeps serving correctly-authenticated clients.

The frame codec is property-tested: every message survives encode →
arbitrary TCP segmentation → decode.
"""

import queue
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import ExecutorConfig, parse_address
from repro.quant import lpq_quantize
from repro.serve import SearchScheduler, WorkerPool, make_shared_pool
from repro.serve.remote import (
    RemoteExecutor,
    SharedRemotePool,
    WorkerServer,
    local_worker_fleet,
)
from repro.spec import CalibSpec, SearchSpec
from repro.spec.wire import (
    FrameDecoder,
    decode_solution,
    encode_solution,
    frame_message,
    hello_message,
)

from .conftest import SEARCH

SPEC = SearchSpec(
    model="tiny:resnet", calib=CalibSpec(batch=4, seed=3), config=SEARCH,
    name="tiny",
)

# JSON-representable message payloads: nested dicts/lists of scalars,
# as every protocol message is
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**53), 2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)
json_messages = st.dictionaries(st.text(max_size=10), json_values, max_size=6)


class TestFraming:
    @given(messages=st.lists(json_messages, min_size=1, max_size=6),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_survives_any_segmentation(self, messages, data):
        """A frame stream split at arbitrary byte boundaries decodes to
        exactly the original message sequence."""
        stream = b"".join(frame_message(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        pos = 0
        while pos < len(stream):
            step = data.draw(
                st.integers(1, len(stream) - pos), label="segment"
            )
            decoded.extend(decoder.feed(stream[pos:pos + step]))
            pos += step
        assert decoded == messages
        assert decoder.pending_bytes == 0

    @given(message=json_messages)
    @settings(max_examples=50, deadline=None)
    def test_single_message_identity(self, message):
        assert FrameDecoder().feed(frame_message(message)) == [message]

    def test_oversized_frame_rejected_both_ends(self):
        with pytest.raises(ValueError, match="exceeds"):
            frame_message({"pad": "x" * 100}, max_bytes=16)
        decoder = FrameDecoder(max_bytes=16)
        with pytest.raises(ValueError, match="exceeds"):
            decoder.feed(frame_message({"pad": "x" * 100}))

    def test_non_object_body_rejected(self):
        import json as json_mod
        import struct
        import zlib

        # a well-formed frame (valid length + CRC) whose body is not a
        # JSON object must still be rejected at the schema level
        body = json_mod.dumps([1, 2, 3]).encode()
        frame = struct.pack(">II", len(body), zlib.crc32(body)) + body
        with pytest.raises(ValueError, match="JSON object"):
            FrameDecoder().feed(frame)


class TestSolutionWire:
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_bitwise(self, data):
        import numpy as np

        from repro.quant import random_solution

        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        layers = data.draw(st.integers(1, 6))
        centers = [
            data.draw(st.floats(-8.0, 8.0, allow_nan=False))
            for _ in range(layers)
        ]
        solution = random_solution(rng, layers, centers, (4, 8))
        assert decode_solution(encode_solution(solution)) == solution


class TestAddresses:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:7301") == ("127.0.0.1", 7301)
        for bad in ("nohost", "host:", ":42", "host:port", "host:0"):
            with pytest.raises(ValueError, match="address"):
                parse_address(bad)

    def test_remote_requires_addresses(self):
        with pytest.raises(ValueError, match="requires addresses"):
            ExecutorConfig("remote")

    def test_addresses_rejected_on_local_backends(self):
        with pytest.raises(ValueError, match="only apply to the remote"):
            ExecutorConfig("thread", addresses=("127.0.0.1:1",))

    def test_remote_config_roundtrips_as_json(self):
        config = ExecutorConfig(
            "remote", addresses=["127.0.0.1:7301", "127.0.0.1:7302"],
            token="s3cret",
        )
        assert config.addresses == ("127.0.0.1:7301", "127.0.0.1:7302")
        assert ExecutorConfig.from_dict(config.to_dict()) == config
        assert config.resolved_workers() == 2


class TestHandshake:
    def test_bad_token_refused_cleanly_and_worker_survives(self):
        """Wrong token → exception naming the refusal, no hang; the same
        worker then serves a correctly-authenticated client."""
        with WorkerServer(token="right") as server:
            results: queue.SimpleQueue = queue.SimpleQueue()
            with pytest.raises(ConnectionError, match="bad auth token"):
                SharedRemotePool(
                    {}, [server.address], results, token="wrong"
                ).start()
            assert server.auth_failures == 1
            with pytest.raises(ConnectionError, match="bad auth token"):
                SharedRemotePool({}, [server.address], results).start()
            pool = SharedRemotePool(
                {}, [server.address], results, token="right"
            ).start()
            try:
                assert pool.healthy()
            finally:
                pool.close()

    def test_unreachable_worker_fails_with_address(self):
        results: queue.SimpleQueue = queue.SimpleQueue()
        with pytest.raises(ConnectionError, match="127.0.0.1:9"):
            SharedRemotePool({}, ["127.0.0.1:9"], results).start()


def _remote_executor(addresses, workers=None):
    return ExecutorConfig("remote", addresses=list(addresses))


class TestRemoteBitwiseParity:
    def test_lpq_quantize_matches_serial(self):
        """The acceptance criterion: remote fleet ≡ serial, bitwise."""
        ref = lpq_quantize(spec=SPEC)
        with local_worker_fleet(2) as addresses:
            import dataclasses

            got = lpq_quantize(spec=dataclasses.replace(
                SPEC, executor=_remote_executor(addresses)
            ))
        assert got.solution == ref.solution
        assert got.fitness == ref.fitness
        assert got.history.best_fitness == ref.history.best_fitness
        assert got.act_params == ref.act_params
        assert got.evaluations == ref.evaluations

    def test_scheduler_remote_matches_standalone(self, serve_setup):
        cnn, _, images = serve_setup
        ref_spec = lpq_quantize(spec=SPEC)
        ref_live = lpq_quantize(cnn, images, config=SEARCH)
        with local_worker_fleet(2) as addresses:
            scheduler = SearchScheduler(
                executor=_remote_executor(addresses)
            )
            scheduler.submit("declarative", spec=SPEC)
            scheduler.submit("live", cnn, images, config=SEARCH)
            results = scheduler.run()
        assert results["declarative"].solution == ref_spec.solution
        assert results["declarative"].fitness == ref_spec.fitness
        assert results["live"].solution == ref_live.solution
        assert results["live"].fitness == ref_live.fitness

    def test_committed_example_specs_match_serial(self):
        """Both committed example specs, remote ≡ serial (the CI leg
        runs the same comparison through the CLI)."""
        import dataclasses
        from pathlib import Path

        specs_dir = Path(__file__).resolve().parents[2] / "examples/specs"
        with local_worker_fleet(2) as addresses:
            for name in ("tiny_resnet.json", "tiny_mlp.json"):
                spec = SearchSpec.load(specs_dir / name)
                ref = lpq_quantize(
                    spec=dataclasses.replace(spec, executor=None)
                )
                got = lpq_quantize(spec=dataclasses.replace(
                    spec, executor=_remote_executor(addresses)
                ))
                assert got.solution == ref.solution, name
                assert got.fitness == ref.fitness, name


class TestLiveness:
    def test_killed_worker_requeues_and_completes_identically(self):
        """Kill one of two workers once it has started evaluating; the
        search must complete with results bitwise-equal to serial."""
        ref = lpq_quantize(spec=SPEC)
        w0, w1 = WorkerServer().start(), WorkerServer().start()
        try:
            killer = threading.Thread(
                target=lambda: (
                    w0.task_started_event.wait(60), w0.kill()
                ),
                daemon=True,
            )
            killer.start()
            scheduler = SearchScheduler(
                executor=_remote_executor([w0.address, w1.address])
            )
            scheduler.submit("tiny", spec=SPEC)
            results = scheduler.run()
            killer.join(timeout=60)
            assert w0.tasks_started >= 1, "kill never triggered mid-search"
        finally:
            w0.stop()
            w1.stop()
        assert results["tiny"].solution == ref.solution
        assert results["tiny"].fitness == ref.fitness
        assert results["tiny"].history.best_fitness == ref.history.best_fitness

    def test_killed_worker_blob_refetch_stays_identical(self, serve_setup):
        """Kill one worker mid-search while the survivor drops its blob
        and replica caches (what a restarted worker looks like): the
        requeued chunks force the survivor to rebuild its replica
        through the ``blob_get`` fetch-on-miss frames, and the search
        still completes bitwise-equal to serial.  A *live* model job is
        what makes this a blob test — its state dict and calibration
        batch ride the wire as content-addressed refs (the declarative
        ``SPEC`` ships no arrays at all)."""
        cnn, _, images = serve_setup
        ref = lpq_quantize(cnn, images, config=SEARCH)
        w0, w1 = WorkerServer().start(), WorkerServer().start()
        try:
            def sabotage():
                w0.task_started_event.wait(60)
                w1.drop_caches()  # survivor must refetch lost blobs
                w0.kill()

            saboteur = threading.Thread(target=sabotage, daemon=True)
            saboteur.start()
            scheduler = SearchScheduler(
                executor=_remote_executor([w0.address, w1.address])
            )
            scheduler.submit("live", cnn, images, config=SEARCH)
            results = scheduler.run()
            saboteur.join(timeout=60)
            assert w0.tasks_started >= 1, "kill never triggered mid-search"
        finally:
            w0.stop()
            w1.stop()
        assert results["live"].solution == ref.solution
        assert results["live"].fitness == ref.fitness
        assert results["live"].history.best_fitness == ref.history.best_fitness

    def test_whole_fleet_dead_fails_job_not_hangs(self):
        """Killing every worker resolves outstanding chunks to error
        results: the job fails with context instead of blocking run()."""
        w0 = WorkerServer().start()
        try:
            killer = threading.Thread(
                target=lambda: (
                    w0.task_started_event.wait(60), w0.kill()
                ),
                daemon=True,
            )
            killer.start()
            scheduler = SearchScheduler(
                executor=_remote_executor([w0.address])
            )
            handle = scheduler.submit("tiny", spec=SPEC)
            results = scheduler.run()
            killer.join(timeout=60)
        finally:
            w0.stop()
        # either the in-flight chunk errored (fleet collapse) or the
        # worker finished the tiny search before dying — never a hang;
        # with tasks raced this tightly both outcomes are legitimate
        assert handle.finished
        if handle.failed:
            assert "remote" in handle.error or "worker" in handle.error
            assert results == {}

    def test_silent_worker_detected_by_liveness_timeout(self):
        """A worker that goes silent *without* closing its socket (hung
        host, dropped network) is only detectable by heartbeat timeout;
        its in-flight chunks must requeue onto the survivor with
        results unchanged."""
        import numpy as np

        from repro.parallel import EvaluatorSpec
        from repro.quant import collect_layer_stats, random_solution
        from repro.serve.pool import encode_pool_wires

        from .servemodels import build_serve_mlp

        model = build_serve_mlp()
        model.eval()
        images = np.random.default_rng(0).normal(
            size=(4, 3, 8, 8)
        ).astype(np.float32)
        stats = collect_layer_stats(model, images)
        spec = EvaluatorSpec(
            images=images, builder=build_serve_mlp,
            state=model.state_dict(), stats=stats,
        )
        replica = spec.build(copy_model=True)
        rng = np.random.default_rng(2)
        solutions = [
            random_solution(rng, len(stats), stats.weight_log_centers, (4, 8))
            for _ in range(6)
        ]
        expected = [replica.evaluate(sol) for sol in solutions]

        hung, survivor = WorkerServer().start(), WorkerServer().start()
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = SharedRemotePool(
            encode_pool_wires({"j": spec}),
            [hung.address, survivor.address],
            results,
            heartbeat_s=0.1,
            liveness_timeout_s=1.0,
        ).start()
        try:
            hung.silence()  # open sockets, no pongs, no results
            for idx, sol in enumerate(solutions):
                pool.submit("j", 0, idx, [sol])
            got = {}
            for _ in range(len(solutions)):
                res = results.get(timeout=60)
                assert res.error is None, res.error
                got[res.chunk] = res.fits[0]
        finally:
            pool.close()
            hung.stop()
            survivor.stop()
        assert [got[i] for i in range(len(solutions))] == expected

    def test_pool_workers_shrinks_as_fleet_dies(self):
        with local_worker_fleet(2) as addresses:
            results: queue.SimpleQueue = queue.SimpleQueue()
            pool = SharedRemotePool({}, addresses, results).start()
            try:
                assert isinstance(pool, WorkerPool)
                assert pool.workers == 2 and pool.healthy()
            finally:
                pool.close()
            assert not pool.healthy()


class TestRemoteExecutorAdapter:
    def test_registered_as_executor_backend(self, serve_setup):
        from repro.quant import collect_layer_stats
        from repro.parallel import EvaluatorSpec, make_executor
        from repro.perf import PerfRegistry

        from .servemodels import build_serve_cnn

        model = build_serve_cnn()
        model.eval()
        images = serve_setup[2]
        stats = collect_layer_stats(model, images)
        spec = EvaluatorSpec(
            images=images, builder=build_serve_cnn,
            state=model.state_dict(), stats=stats,
        )
        serial = spec.build(copy_model=True)
        import numpy as np

        from repro.quant import random_solution

        rng = np.random.default_rng(5)
        solutions = [
            random_solution(rng, len(stats), stats.weight_log_centers, (4, 8))
            for _ in range(5)
        ]
        with local_worker_fleet(2) as addresses:
            executor = make_executor(
                spec, _remote_executor(addresses), PerfRegistry()
            )
            assert isinstance(executor, RemoteExecutor)
            try:
                assert executor.workers == 2
                fits = executor.evaluate_batch(solutions)
            finally:
                executor.close()
        assert fits == [serial.evaluate(sol) for sol in solutions]

    def test_make_shared_pool_builds_remote(self, serve_setup):
        with local_worker_fleet(1) as addresses:
            results: queue.SimpleQueue = queue.SimpleQueue()
            pool = make_shared_pool(
                {}, _remote_executor(addresses), results
            )
            try:
                assert isinstance(pool, SharedRemotePool)
                assert pool.healthy()
            finally:
                pool.close()


def _mlp_pool_setup(n_solutions=6):
    """A small EvaluatorSpec + solutions + serial reference fits, for
    raw-pool resilience tests."""
    import numpy as np

    from repro.parallel import EvaluatorSpec
    from repro.quant import collect_layer_stats, random_solution

    from .servemodels import build_serve_mlp

    model = build_serve_mlp()
    model.eval()
    images = np.random.default_rng(0).normal(
        size=(4, 3, 8, 8)
    ).astype(np.float32)
    stats = collect_layer_stats(model, images)
    spec = EvaluatorSpec(
        images=images, builder=build_serve_mlp,
        state=model.state_dict(), stats=stats,
    )
    replica = spec.build(copy_model=True)
    rng = np.random.default_rng(2)
    solutions = [
        random_solution(rng, len(stats), stats.weight_log_centers, (4, 8))
        for _ in range(n_solutions)
    ]
    return spec, solutions, [replica.evaluate(sol) for sol in solutions]


def _collect(results, n, timeout=60):
    got = {}
    for _ in range(n):
        res = results.get(timeout=timeout)
        assert res.error is None, res.error
        got[res.chunk] = res.fits[0]
    return [got[i] for i in range(n)]


class TestResilience:
    """The elastic-fleet recovery paths: hang-after-accept, duplicate
    dedupe, protocol refusal, drain, runtime membership, rejoin, and
    thread-leak surfacing."""

    def test_worker_hangs_after_accepting_chunk_requeues(self):
        """The nasty liveness case: the worker *accepted* chunks and
        began evaluating, then went silent — results computed but never
        sent.  Only the liveness timeout can recover these."""
        from repro.serve.pool import encode_pool_wires
        from repro.serve.resilience import RetryPolicy

        spec, solutions, expected = _mlp_pool_setup()
        hung, survivor = WorkerServer().start(), WorkerServer().start()
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = SharedRemotePool(
            encode_pool_wires({"j": spec}),
            [hung.address, survivor.address],
            results,
            retry=RetryPolicy(max_attempts=10, backoff_base_s=0.02,
                              backoff_max_s=0.2, heartbeat_s=0.05,
                              liveness_timeout_s=0.6),
        ).start()
        try:
            saboteur = threading.Thread(
                target=lambda: (
                    hung.task_started_event.wait(60), hung.silence()
                ),
                daemon=True,
            )
            saboteur.start()
            for idx, sol in enumerate(solutions):
                pool.submit("j", 0, idx, [sol])
            fits = _collect(results, len(solutions))
            saboteur.join(timeout=60)
            assert hung.tasks_started >= 1, "hang never triggered"
        finally:
            pool.close()
            hung.stop()
            survivor.stop()
        assert fits == expected

    def test_duplicate_delivery_after_requeue_is_deduped(self):
        """Exactly-once results: a second delivery of the same task id
        (requeue or rebalance race) is dropped and counted, and the
        delivering worker's load tracking stays consistent."""
        from repro.perf import PerfRegistry
        from repro.serve.remote import _RemoteWorker, _Task

        perf = PerfRegistry()
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = SharedRemotePool(
            {}, ["127.0.0.1:1"], results, perf=perf
        )
        entry = _Task(7, "j", 0, 3, [[1]])
        pool._pending[7] = entry
        w0, w1 = _RemoteWorker("a:1"), _RemoteWorker("b:1")
        w0.pending.add(7)
        w1.pending.add(7)  # requeued onto w1, then both delivered
        message = {"type": "result", "task": 7, "job": "j", "seq": 0,
                   "chunk": 3, "fits": [0.5], "elapsed": 0.01}
        pool._handle_result(w0, message)
        pool._handle_result(w1, message)
        assert results.qsize() == 1
        assert not w0.pending and not w1.pending
        assert perf.counter("fault.duplicate_results").value == 1

    def test_protocol_mismatch_refused_with_clear_error(self):
        """A client speaking another protocol build is refused before
        any payload is decoded, with both versions in the error."""
        import socket as socket_mod

        from repro.spec.wire import PROTOCOL_VERSION, read_frame

        with WorkerServer() as server:
            host, port = parse_address(server.address)
            with socket_mod.create_connection((host, port), timeout=10) \
                    as sock:
                stale = dict(hello_message(None), protocol=1)
                sock.sendall(frame_message(stale))
                reply = read_frame(sock.makefile("rb"))
            assert reply["type"] == "error"
            assert "protocol version mismatch" in reply["error"]
            assert "1" in reply["error"]
            assert str(PROTOCOL_VERSION) in reply["error"]

    def test_client_rejects_stale_build_with_context(self, monkeypatch):
        """The client side of the same refusal: the ConnectionError
        names the worker address and says what to do."""
        import repro.serve.remote as remote_mod

        monkeypatch.setattr(
            remote_mod, "hello_message",
            lambda token: dict(hello_message(token), protocol=999),
        )
        with WorkerServer() as server:
            results: queue.SimpleQueue = queue.SimpleQueue()
            with pytest.raises(ConnectionError, match="refused"):
                SharedRemotePool({}, [server.address], results).start()

    def test_drain_finishes_inflight_then_retires(self):
        """SIGTERM path: a draining worker finishes what it accepted,
        the pool stops dispatching to it, and no chunk is lost."""
        from repro.perf import PerfRegistry
        from repro.serve.pool import encode_pool_wires

        spec, solutions, expected = _mlp_pool_setup()
        leaving, survivor = WorkerServer().start(), WorkerServer().start()
        perf = PerfRegistry()
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = SharedRemotePool(
            encode_pool_wires({"j": spec}),
            [leaving.address, survivor.address],
            results, perf=perf,
        ).start()
        try:
            drainer = threading.Thread(
                target=lambda: (
                    leaving.task_started_event.wait(60), leaving.drain()
                ),
                daemon=True,
            )
            drainer.start()
            for idx, sol in enumerate(solutions):
                pool.submit("j", 0, idx, [sol])
            fits = _collect(results, len(solutions))
            drainer.join(timeout=60)
            assert leaving.draining
        finally:
            pool.close()
            leaving.stop()
            survivor.stop()
        assert fits == expected
        # late submissions must all land on the survivor: the drained
        # worker is out of the rotation even though redial is on
        assert perf.counter("fault.drains").value >= 1

    def test_add_and_remove_worker_at_runtime(self):
        """Elastic membership: the fleet grows and shrinks mid-life
        without losing chunks."""
        from repro.serve.pool import encode_pool_wires

        spec, solutions, expected = _mlp_pool_setup()
        first, second = WorkerServer().start(), WorkerServer().start()
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = SharedRemotePool(
            encode_pool_wires({"j": spec}), [first.address], results
        ).start()
        try:
            assert pool.workers == 1
            assert pool.add_worker(second.address) is True
            assert pool.workers == 2
            for idx, sol in enumerate(solutions[:3]):
                pool.submit("j", 0, idx, [sol])
            first_half = _collect(results, 3)
            pool.remove_worker(first.address)
            assert pool.workers == 1
            for idx, sol in enumerate(solutions[3:]):
                pool.submit("j", 1, idx, [sol])
            second_half = _collect(results, len(solutions) - 3)
        finally:
            pool.close()
            first.stop()
            second.stop()
        assert first_half == expected[:3]
        assert second_half == expected[3:]

    def test_add_worker_unreachable_address_joins_later(self):
        """add_worker on a not-yet-listening address reports False but
        keeps the address on the redial schedule: when the worker comes
        up it joins on its own."""
        import socket as socket_mod

        from repro.serve.pool import encode_pool_wires
        from repro.serve.resilience import RetryPolicy

        spec, solutions, expected = _mlp_pool_setup(n_solutions=3)
        first = WorkerServer().start()
        # reserve a port for the late worker without listening on it yet
        probe = socket_mod.socket()
        probe.bind(("127.0.0.1", 0))
        late_port = probe.getsockname()[1]
        probe.close()
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = SharedRemotePool(
            encode_pool_wires({"j": spec}), [first.address], results,
            retry=RetryPolicy(backoff_base_s=0.02, backoff_max_s=0.1,
                              heartbeat_s=0.05),
        ).start()
        late = None
        try:
            assert pool.add_worker(f"127.0.0.1:{late_port}") is False
            assert pool.workers == 1
            late = WorkerServer(port=late_port).start()
            deadline = time.monotonic() + 30
            while pool.workers < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert pool.workers == 2, "late worker never joined"
            for idx, sol in enumerate(solutions):
                pool.submit("j", 0, idx, [sol])
            fits = _collect(results, len(solutions))
        finally:
            pool.close()
            first.stop()
            if late is not None:
                late.stop()
        assert fits == expected

    def test_restarted_worker_rejoins_and_serves(self):
        """A worker killed and restarted behind the same address is
        re-dialed and put back to work mid-life."""
        from repro.perf import PerfRegistry
        from repro.serve.pool import encode_pool_wires
        from repro.serve.resilience import RetryPolicy

        spec, solutions, expected = _mlp_pool_setup()
        w0 = WorkerServer().start()
        port = w0.port
        perf = PerfRegistry()
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = SharedRemotePool(
            encode_pool_wires({"j": spec}), [w0.address], results,
            perf=perf,
            retry=RetryPolicy(max_attempts=10, backoff_base_s=0.02,
                              backoff_max_s=0.1, heartbeat_s=0.05,
                              fleet_wait_s=60.0),
        ).start()
        restarted = None
        try:
            for idx, sol in enumerate(solutions[:3]):
                pool.submit("j", 0, idx, [sol])
            first_half = _collect(results, 3)
            w0.kill()
            # in-flight empty; these go to parking until the rejoin
            for idx, sol in enumerate(solutions[3:]):
                pool.submit("j", 1, idx, [sol])
            # rebinding races the client noticing the death (the port
            # stays busy until the old connection fully closes), exactly
            # as an operator restarting the box would experience
            deadline = time.monotonic() + 30
            while True:
                try:
                    restarted = WorkerServer(port=port).start()
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            second_half = _collect(results, len(solutions) - 3)
        finally:
            pool.close()
            w0.stop()
            if restarted is not None:
                restarted.stop()
        assert first_half == expected[:3]
        assert second_half == expected[3:]
        assert perf.counter("fault.rejoins").value >= 1
        assert perf.counter("fault.redials").value >= 1

    def test_clean_close_leaks_no_threads(self):
        """The leak-surfacing satellite: a clean fleet shutdown joins
        every transport thread; nothing lands in the leak registers."""
        from repro.serve.pool import encode_pool_wires

        spec, solutions, _ = _mlp_pool_setup(n_solutions=2)
        servers = [WorkerServer().start() for _ in range(2)]
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = SharedRemotePool(
            encode_pool_wires({"j": spec}),
            [s.address for s in servers], results,
        ).start()
        try:
            for idx, sol in enumerate(solutions):
                pool.submit("j", 0, idx, [sol])
            _collect(results, len(solutions))
        finally:
            pool.close()
            for server in servers:
                server.stop()
        assert pool.leaked_threads == []
        assert all(s.leaked_sessions == [] for s in servers)


class TestFrameIntegrity:
    """CRC32 framing: corruption anywhere in a frame is detected at
    decode time, never silently parsed."""

    def test_corrupt_body_byte_raises(self):
        from repro.spec.wire import FrameCorruptionError

        data = bytearray(frame_message({"type": "result", "fits": [1.5]}))
        data[-3] ^= 0x20
        decoder = FrameDecoder()
        with pytest.raises(FrameCorruptionError, match="checksum"):
            decoder.feed(bytes(data))

    @given(position=st.integers(0, 255), bit=st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_no_single_bit_flip_ever_decodes(self, position, bit):
        """Flipping any single bit of a frame — length, checksum, or
        body — must never decode to a message: the decoder raises, or
        (a length flip that enlarges the frame) keeps waiting for bytes
        that never come.  Both demote the worker; neither parses."""
        from repro.spec.wire import FrameCorruptionError

        data = bytearray(frame_message({"a": 1}))
        data[position % len(data)] ^= 1 << bit
        decoder = FrameDecoder()
        try:
            messages = decoder.feed(bytes(data))
        except (FrameCorruptionError, ValueError):
            return
        assert messages == []

    def test_read_frame_checks_crc(self):
        import io

        from repro.spec.wire import FrameCorruptionError, read_frame

        data = bytearray(frame_message({"a": 1}))
        data[-1] ^= 0xFF
        with pytest.raises(FrameCorruptionError):
            read_frame(io.BytesIO(bytes(data)))

    def test_handshake_messages_carry_protocol_version(self):
        from repro.spec.wire import (
            PROTOCOL_VERSION,
            hello_message,
            welcome_message,
        )

        assert hello_message("t")["protocol"] == PROTOCOL_VERSION
        assert welcome_message()["protocol"] == PROTOCOL_VERSION
