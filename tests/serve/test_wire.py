"""The serve pool's JSON wire protocol.

Acceptance criterion from the SearchSpec redesign: the pool protocol
carries no pickled evaluator objects — workers reconstruct evaluators
from JSON-serializable payloads.  Asserted here by round-tripping the
actual wire payloads through ``json.dumps``/``loads`` and running the
reconstructed replicas against the originals, bitwise.
"""

import io
import json
import queue

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import EvaluatorSpec, ExecutorConfig
from repro.quant import FitnessConfig, collect_layer_stats, lpq_quantize
from repro.serve import SearchScheduler
from repro.serve.pool import SharedProcessPool, encode_pool_wires, make_shared_pool
from repro.spec import CalibSpec, SearchSpec
from repro.spec.wire import (
    SERVER_OPS,
    WIRE_VERSION,
    FrameCorruptionError,
    FrameDecoder,
    FrameTooLargeError,
    cancel_message,
    decode_callable,
    decode_job,
    decode_stats,
    encode_callable,
    encode_job,
    encode_stats,
    event_message,
    fleet_status_message,
    frame_message,
    list_jobs_message,
    metrics_message,
    read_frame,
    reply_message,
    result_get_message,
    status_message,
    submit_message,
    subscribe_message,
    subscribe_metrics_message,
)

from .conftest import SEARCH
from .servemodels import ServeBNCNN, build_serve_cnn

SPEC = SearchSpec(
    model="tiny:resnet", calib=CalibSpec(batch=4, seed=3), config=SEARCH
)


def json_roundtrip(payload):
    text = json.dumps(payload)  # must not raise: plain JSON only
    return json.loads(text)


class TestCallableWire:
    def test_roundtrip_function_and_class(self):
        for obj in (build_serve_cnn, ServeBNCNN):
            assert decode_callable(json_roundtrip(encode_callable(obj))) is obj

    def test_lambda_rejected_with_guidance(self):
        with pytest.raises(ValueError, match="registry"):
            encode_callable(lambda: None)

    def test_local_class_rejected(self):
        class Local:
            pass

        with pytest.raises(ValueError, match="cannot be named"):
            encode_callable(Local)


class TestJobWire:
    def test_search_payload_roundtrips_and_rebuilds(self, serve_setup):
        _, _, images = serve_setup
        stats = collect_layer_stats(SPEC.build_model(), SPEC.build_calib())
        espec = EvaluatorSpec(
            images=SPEC.build_calib(), model=SPEC.build_model(), stats=stats
        )
        payload = json_roundtrip(encode_job(espec, SPEC))
        assert payload["kind"] == "search" and payload["version"] == WIRE_VERSION
        rebuilt = decode_job(payload)
        ref = lpq_quantize(spec=SPEC)
        assert rebuilt.build().evaluate(ref.solution) == ref.fitness

    def test_evaluator_payload_live_model_roundtrips(self, serve_setup):
        cnn, _, images = serve_setup
        stats = collect_layer_stats(cnn, images)
        espec = EvaluatorSpec(
            images=images, model=cnn, stats=stats,
            config=FitnessConfig(lam=0.15),
        )
        payload = json_roundtrip(encode_job(espec))
        assert payload["kind"] == "evaluator"
        rebuilt = decode_job(payload)
        # the architecture travels by class name, the weights as encoded
        # arrays; the rebuilt replica must score candidates bitwise-equal
        solution = lpq_quantize(
            cnn, images, config=SEARCH, fitness_config=FitnessConfig(lam=0.15)
        ).solution
        assert rebuilt.build().evaluate(solution) == espec.build(
            copy_model=True
        ).evaluate(solution)

    def test_wire_builder_tagged_instance_ships_by_builder_ref(self):
        """Zoo/bench instances carry a ``wire_builder`` tag, so live
        trained models (whose classes need constructor args) still
        cross the process-pool wire — architecture by builder name,
        weights as the live state dict."""
        from repro.spec import registry

        model = registry.resolve("model", "bench:resnet")()
        assert model.wire_builder == (
            "repro.perf.bench", "bench_resnet"
        )
        images = SPEC.build_calib()
        stats = collect_layer_stats(model, images)
        espec = EvaluatorSpec(images=images, model=model, stats=stats)
        payload = json_roundtrip(encode_job(espec))
        assert "builder" in payload["model"]
        rebuilt = decode_job(payload)
        solution = lpq_quantize(model, images, config=SEARCH).solution
        assert rebuilt.build().evaluate(solution) == espec.build(
            copy_model=True
        ).evaluate(solution)

    def test_shape_preserving_ctor_divergence_rejected(self):
        """A zero-arg-constructible class whose instance was built with
        a behavior-affecting (but shape-preserving) constructor argument
        must be rejected at encode time — the probe rebuild catches the
        functional divergence a worker would otherwise score silently."""
        from .servemodels import NegatingMLP

        model = NegatingMLP(negate=True)
        model.eval()
        images = np.random.default_rng(0).normal(
            size=(2, 3, 4, 4)
        ).astype(np.float32)
        espec = EvaluatorSpec(images=images, model=model)
        with pytest.raises(ValueError, match="does not reproduce"):
            encode_job(espec)
        # a train-mode model must not dodge the probe (the comparison
        # switches to eval and restores the caller's mode)
        trainmode = NegatingMLP(negate=True)
        assert trainmode.training
        with pytest.raises(ValueError, match="does not reproduce"):
            encode_job(EvaluatorSpec(images=images, model=trainmode))
        assert trainmode.training
        # the default-constructed twin encodes fine
        ok = NegatingMLP()
        ok.eval()
        payload = json_roundtrip(
            encode_job(EvaluatorSpec(images=images, model=ok))
        )
        assert "model_class" in payload["model"]

    def test_ctor_arg_class_rejected_at_encode_time(self):
        """An untagged instance whose class needs constructor arguments
        must fail in the submitting process with guidance — not as a
        worker-side TypeError."""
        from repro.models import resnet18_mini

        model = resnet18_mini()  # ResNet requires block/layers/widths
        model.eval()
        espec = EvaluatorSpec(
            images=np.zeros((1, 3, 8, 8), dtype=np.float32), model=model
        )
        with pytest.raises(ValueError, match="constructor argument"):
            encode_job(espec)

    def test_stats_roundtrip_exact(self, serve_setup):
        cnn, _, images = serve_setup
        stats = collect_layer_stats(cnn, images)
        back = decode_stats(json_roundtrip(encode_stats(stats)))
        assert back.names == stats.names
        assert back.param_counts == stats.param_counts
        assert back.weight_log_centers == stats.weight_log_centers
        assert back.act_log_centers == stats.act_log_centers

    def test_bad_payloads_raise(self):
        with pytest.raises(ValueError, match="version"):
            decode_job({"kind": "search"})
        with pytest.raises(ValueError, match="kind"):
            decode_job({"version": WIRE_VERSION, "kind": "sorcery"})
        with pytest.raises(ValueError, match="dict"):
            decode_job([1])


class TestPoolProtocolIsJson:
    def test_process_pool_wires_survive_json(self, serve_setup):
        """The exact payload handed to process workers is plain JSON."""
        cnn, _, images = serve_setup
        scheduler = SearchScheduler(
            executor=ExecutorConfig("process", workers=2)
        )
        scheduler.submit("live", cnn, images, config=SEARCH)
        scheduler.submit("declarative", spec=SPEC)
        jobs = {
            name: st.spec for name, st in scheduler._jobs.items()
        }
        wires = encode_pool_wires(
            jobs,
            {"declarative": scheduler._jobs["declarative"].search},
        )
        assert json_roundtrip(wires) == wires
        assert wires["declarative"]["kind"] == "search"
        assert wires["live"]["kind"] == "evaluator"

    def test_shared_process_pool_exposes_json_wires(self, serve_setup):
        cnn, _, images = serve_setup
        stats = collect_layer_stats(cnn, images)
        espec = EvaluatorSpec(images=images, model=cnn, stats=stats)
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = make_shared_pool(
            {"job": espec}, ExecutorConfig("process", workers=1), results
        )
        try:
            assert isinstance(pool, SharedProcessPool)
            assert json_roundtrip(pool.wires) == pool.wires
        finally:
            pool.close()

    def test_unnameable_job_fails_with_job_name(self, serve_setup):
        _, _, images = serve_setup

        class Unnameable(ServeBNCNN):
            pass

        model = Unnameable()
        model.eval()
        stats = collect_layer_stats(model, images)
        espec = EvaluatorSpec(images=images, model=model, stats=stats)
        with pytest.raises(ValueError, match="'doomed'"):
            encode_pool_wires({"doomed": espec})


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**53), 2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
_payloads = st.dictionaries(st.text(max_size=8), _scalars, max_size=4)
_jobs = st.text(min_size=1, max_size=12)
_reqs = st.integers(0, 2**31)

#: every client↔server frame kind the daemon protocol added, built
#: through the real constructors with arbitrary field values
server_frames = st.one_of(
    st.builds(submit_message, spec=_payloads,
              priority=st.integers(-9, 9),
              job=st.one_of(st.none(), _jobs), req=_reqs),
    st.builds(status_message, job=_jobs, req=_reqs),
    st.builds(result_get_message, job=_jobs, req=_reqs),
    st.builds(cancel_message, job=_jobs, req=_reqs),
    st.builds(list_jobs_message, req=_reqs),
    st.builds(subscribe_message, job=_jobs, req=_reqs),
    st.builds(reply_message, req=_reqs,
              payload=st.one_of(st.none(), _payloads)),
    st.builds(reply_message, req=_reqs,
              error=st.text(min_size=1, max_size=30)),
    st.builds(event_message, job=_jobs,
              kind=st.sampled_from(["progress", "state"]),
              data=_payloads, final=st.booleans()),
    st.builds(fleet_status_message, req=_reqs),
    st.builds(subscribe_metrics_message, req=_reqs),
    st.builds(metrics_message, source=_jobs, seq=_reqs,
              t=st.floats(0, 2**40, allow_nan=False),
              delta=st.one_of(st.none(), _payloads),
              gauges=st.one_of(st.none(), _payloads),
              workers=st.one_of(
                  st.none(), st.lists(_payloads, max_size=3)
              ),
              status=st.one_of(st.none(), _payloads)),
)


class TestServerFrameWire:
    """The daemon's frame kinds ride the existing framing unchanged:
    any mix of them survives any byte segmentation of the stream."""

    @given(frames=st.lists(server_frames, min_size=1, max_size=6),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_frame_mix_survives_any_segmentation(self, frames, data):
        stream = b"".join(frame_message(f) for f in frames)
        decoder = FrameDecoder()
        decoded = []
        pos = 0
        while pos < len(stream):
            step = data.draw(
                st.integers(1, len(stream) - pos), label="segment"
            )
            decoded.extend(decoder.feed(stream[pos:pos + step]))
            pos += step
        assert decoded == frames
        assert decoder.pending_bytes == 0

    @given(frame=server_frames)
    @settings(max_examples=60, deadline=None)
    def test_every_frame_is_plain_json(self, frame):
        assert json_roundtrip(frame) == frame

    def test_request_ops_match_the_registry(self):
        """Each request constructor stamps a type the server dispatches
        on — the ``type`` values and ``SERVER_OPS`` must stay in sync."""
        requests = {
            submit_message({})["type"],
            status_message("j")["type"],
            result_get_message("j")["type"],
            cancel_message("j")["type"],
            list_jobs_message()["type"],
            subscribe_message("j")["type"],
            fleet_status_message()["type"],
            subscribe_metrics_message()["type"],
        }
        assert requests == set(SERVER_OPS)

    def test_metrics_frame_is_a_push_not_a_request(self):
        """``metrics`` frames are server→client pushes like ``event``:
        no ``req`` correlation id, never a dispatchable op."""
        frame = metrics_message("worker:h:1", 7, 12.5,
                                delta={"counters": {"x": 1}})
        assert frame["type"] == "metrics"
        assert "req" not in frame
        assert frame["type"] not in SERVER_OPS
        assert frame["delta"] == {"counters": {"x": 1}}
        # optional fleet fields only appear when supplied
        assert "workers" not in frame and "status" not in frame
        merged = metrics_message("server:h:2", 0, 1.0,
                                 workers=[], status={"queue_depth": 0})
        assert merged["workers"] == [] and merged["status"] == {
            "queue_depth": 0
        }

    def test_reply_ok_tracks_error(self):
        ok = reply_message(3, {"state": "queued"})
        assert ok["ok"] and ok["req"] == 3 and ok["state"] == "queued"
        bad = reply_message(4, error="boom")
        assert not bad["ok"] and bad["error"] == "boom"

    def test_event_final_flag(self):
        event = event_message("j", "state", {"state": "done"}, final=True)
        assert event["final"] and event["event"] == "state"
        assert not event_message("j", "progress", {})["final"]


class TestFrameTooLarge:
    """Oversized frames raise the dedicated FrameCorruptionError
    subclass, so callers can tell a too-small ``max_bytes`` from a
    corrupt stream."""

    def test_decoder_raises_dedicated_subclass(self):
        frame = frame_message({"type": "ping", "pad": "x" * 64})
        with pytest.raises(FrameTooLargeError, match="16-byte limit"):
            FrameDecoder(max_bytes=16).feed(frame)

    def test_read_frame_raises_dedicated_subclass(self):
        frame = frame_message({"type": "ping", "pad": "x" * 64})
        with pytest.raises(FrameTooLargeError):
            read_frame(io.BytesIO(frame), max_bytes=16)

    def test_oversize_refused_from_header_alone(self):
        # the length prefix is enough: no body bytes are ever buffered
        frame = frame_message({"pad": "x" * 64})
        with pytest.raises(FrameTooLargeError):
            FrameDecoder(max_bytes=16).feed(frame[:8])

    def test_is_a_corruption_error_for_existing_handlers(self):
        assert issubclass(FrameTooLargeError, FrameCorruptionError)
        assert issubclass(FrameTooLargeError, ValueError)

    def test_frame_at_the_limit_still_decodes(self):
        message = {"type": "ping"}
        frame = frame_message(message)
        body_len = len(frame) - 8  # 4-byte length + 4-byte CRC header
        assert FrameDecoder(max_bytes=body_len).feed(frame) == [message]


class TestSpecSubmissionEndToEnd:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", None),
        ("thread", 2),
        ("process", 2),
    ])
    def test_spec_job_bitwise_equals_standalone(self, backend, workers):
        ref = lpq_quantize(spec=SPEC)
        executor = (
            None if backend == "serial"
            else ExecutorConfig(backend, workers=workers)
        )
        scheduler = SearchScheduler(executor=executor)
        handle = scheduler.submit("tiny", spec=SPEC)
        results = scheduler.run()
        assert handle.done
        got = results["tiny"]
        assert got.solution == ref.solution
        assert got.fitness == ref.fitness
        assert got.history.best_fitness == ref.history.best_fitness
        assert got.act_params == ref.act_params

    def test_submit_spec_conflicts_raise(self, serve_setup):
        cnn, _, images = serve_setup
        scheduler = SearchScheduler()
        with pytest.raises(ValueError, match="conflicting"):
            scheduler.submit("bad", cnn, spec=SPEC)
        with pytest.raises(TypeError, match="SearchSpec"):
            scheduler.submit("bad", spec={"model": "tiny:resnet"})

    def test_lpq_quantize_many_spec_fleet_conflicts(self):
        from repro.serve import lpq_quantize_many

        with pytest.raises(ValueError, match="conflicting"):
            lpq_quantize_many([SPEC], calib_images=np.zeros((1, 3, 8, 8)))

    def test_lpq_quantize_many_rejects_mixed_fleet(self, serve_setup):
        cnn, _, images = serve_setup
        from repro.serve import lpq_quantize_many

        with pytest.raises(ValueError, match="cannot mix"):
            lpq_quantize_many([SPEC, cnn], images)
        with pytest.raises(ValueError, match="cannot mix"):
            lpq_quantize_many({"a": SPEC, "b": cnn}, images)
