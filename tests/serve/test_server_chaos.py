"""Chaos at the daemon layer: dying workers, dropped clients.

PR-7's harness proved the *scheduler* keeps results bitwise under
:data:`~repro.serve.chaos.COMMITTED_PLANS`.  This file points the same
fault plans at the stack one level up: a live :class:`SearchServer`
fronting a misbehaving remote fleet, with clients that vanish
mid-subscription.  Jobs must still finish bitwise-identical to serial,
and every client that reconnects must see the same terminal state.
"""

import socket
import threading
import time

import pytest

from repro.parallel import ExecutorConfig
from repro.perf import get_perf
from repro.quant import lpq_quantize
from repro.serve.chaos import COMMITTED_PLANS, ChaosFleet
from repro.serve.server import SearchClient, SearchServer

from .conftest import SEARCH
from repro.spec import CalibSpec, SearchSpec

SPEC = SearchSpec(
    model="tiny:resnet", calib=CalibSpec(batch=4, seed=3), config=SEARCH,
    name="tiny",
)


@pytest.fixture(scope="module")
def serial_reference():
    return lpq_quantize(spec=SPEC)


def _assert_bitwise(record: dict, ref) -> None:
    assert record["fitness"] == ref.fitness
    assert record["solution"] == [
        [p.n, p.es, p.rs, p.sf] for p in ref.solution.layer_params
    ]


def test_daemon_survives_worker_kill_and_client_drop(tmp_path,
                                                     serial_reference):
    """The satellite scenario in one flow: a remote worker is killed
    mid-search by the committed ``kill_rejoin`` plan while the daemon
    runs it, the subscribed client's connection is dropped abruptly
    mid-stream, and the job still finishes bitwise-identical — with the
    fleet-recovery counters proving the faults actually fired."""
    scenario = COMMITTED_PLANS["kill_rejoin"]
    perf = get_perf()
    before = {
        counter: perf.counter(counter).value for counter in scenario.expect
    }
    # park the scheduler at the first batch boundary until the client
    # drop has happened, so the drop is deterministically mid-run
    gate = threading.Event()

    def hold(server, name, info):
        gate.wait(timeout=60.0)
        return False

    # telemetry on at every layer (ISSUE 9): chaos workers and daemon
    # both emit live while the faults fire — still bitwise below
    with ChaosFleet(scenario.plan, count=scenario.count,
                    metrics_interval=0.1) as addresses:
        server = SearchServer(
            data_dir=tmp_path / "daemon",
            executor=ExecutorConfig(
                "remote", addresses=addresses, retry=scenario.retry,
                on_fleet_death=scenario.on_fleet_death,
            ),
            crash_hook=hold,
            metrics_interval=0.1,
        ).start()
        try:
            first = SearchClient(server.address)
            reply = first.submit(SPEC)
            assert reply["job"] == "tiny"
            deadline = time.monotonic() + 60.0
            while server.job_state("tiny") != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)

            # subscribe, take one live event, then yank the socket —
            # no ``bye``, exactly what a crashed client looks like
            stream = first.events("tiny")
            event = next(stream)
            assert not event["final"]
            # shutdown (not just close): the reader's makefile handle
            # keeps the fd alive, but shutdown kills the TCP stream for
            # both ends — the server sees the same EOF a crashed client
            # process would produce
            first._sock.shutdown(socket.SHUT_RDWR)
            first._sock.close()
            # already-buffered frames may still drain; the dead socket
            # surfaces as ConnectionError within a handful of reads
            with pytest.raises(ConnectionError):
                for _ in range(50):
                    next(stream)
            gate.set()

            # a fresh client reconnects to the still-running daemon and
            # rides the job to completion
            second = SearchClient(server.address)
            record = second.wait("tiny", timeout=120.0)
            _assert_bitwise(record, serial_reference)

            # every reconnecting client sees the same terminal state
            third = SearchClient(server.address)
            assert second.status("tiny")["state"] == "done"
            fields = ("job", "state", "digest", "cached", "error",
                      "priority")
            assert {f: third.status("tiny").get(f) for f in fields} \
                == {f: second.status("tiny").get(f) for f in fields}
            assert third.list_jobs() == second.list_jobs()
            assert third.result("tiny") == record
            # a dropped subscriber's final event is a no-op, not a wedge:
            # subscribing after the fact yields the terminal state only
            events = list(third.events("tiny"))
            assert len(events) == 1 and events[0]["final"]
            assert events[0]["data"]["state"] == "done"
            second.close()
            third.close()
        finally:
            gate.set()
            server.stop()

    for counter in scenario.expect:
        assert perf.counter(counter).value > before[counter], (
            f"expected {counter} to move under plan "
            f"{scenario.plan.name!r}"
        )


def test_fleet_death_degrades_to_local_under_daemon(tmp_path,
                                                    serial_reference):
    """``on_fleet_death="local"`` holds one level up too: the chaos plan
    kills the whole fleet and the daemon's job completes in-process,
    still bitwise-identical."""
    scenario = COMMITTED_PLANS["fleet_death_local"]
    perf = get_perf()
    before = perf.counter("fault.fallbacks").value
    with ChaosFleet(scenario.plan, count=scenario.count,
                    metrics_interval=0.1) as addresses:
        with SearchServer(
            data_dir=tmp_path / "daemon",
            executor=ExecutorConfig(
                "remote", addresses=addresses, retry=scenario.retry,
                on_fleet_death=scenario.on_fleet_death,
            ),
            metrics_interval=0.1,
        ) as server:
            client = SearchClient(server.address)
            client.submit(SPEC)
            record = client.wait("tiny", timeout=120.0)
            _assert_bitwise(record, serial_reference)
            client.close()
    assert perf.counter("fault.fallbacks").value > before
