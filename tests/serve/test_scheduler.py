"""SearchScheduler: bitwise determinism vs standalone runs, fairness,
block-pipelined initialization, failure/cancellation isolation.

The scheduler's hard guarantee extends the stack's: multiplexing many
searches over one shared pool — whatever the backend, worker count, or
chunking — must not move a single bit relative to standalone
``lpq_quantize`` runs with the same seeds.
"""

import numpy as np
import pytest

from repro.parallel import ExecutorConfig
from repro.perf import reset_perf
from repro.quant import LPQConfig, LPQEngine, lpq_quantize
from repro.serve import SearchScheduler, lpq_quantize_many

from .conftest import SEARCH
from .servemodels import build_failing_cnn


def _standalone(model, images, config=SEARCH):
    reset_perf()
    return lpq_quantize(model, images, config=config)


class TestSchedulerDeterminism:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", None),
        ("thread", 2),
        ("process", 2),
        ("process", 3),
    ])
    def test_two_jobs_bitwise_equal_standalone(
        self, serve_setup, backend, workers
    ):
        """Fairness + correctness: two heterogeneous jobs sharing one
        pool both finish, with results bitwise-equal to standalone."""
        cnn, mlp, images = serve_setup
        ref_cnn = _standalone(cnn, images)
        ref_mlp = _standalone(mlp, images)
        reset_perf()
        executor = (
            None if backend == "serial"
            else ExecutorConfig(backend, workers=workers)
        )
        results = lpq_quantize_many(
            {"cnn": cnn, "mlp": mlp}, images, config=SEARCH, executor=executor
        )
        assert sorted(results) == ["cnn", "mlp"]
        for name, ref in (("cnn", ref_cnn), ("mlp", ref_mlp)):
            got = results[name]
            assert got.solution == ref.solution
            assert got.fitness == ref.fitness
            assert got.history.best_fitness == ref.history.best_fitness
            assert got.history.mean_bits == ref.history.mean_bits
            assert got.act_params == ref.act_params
            assert got.evaluations == ref.evaluations

    def test_chunking_choice_cannot_move_results(self, serve_setup):
        """Block-pipelined initialization determinism: single-candidate
        chunks (maximal Step-1 fan-out) and maximal chunks produce the
        same trajectory as the unchunked standalone search."""
        cnn, _, images = serve_setup
        ref = _standalone(cnn, images)
        for target_chunk_s in (1e-9, 1e9):
            reset_perf()
            scheduler = SearchScheduler(
                executor=ExecutorConfig("thread", workers=2),
                target_chunk_s=target_chunk_s,
            )
            scheduler.submit("cnn", cnn, images, config=SEARCH)
            results = scheduler.run()
            assert results["cnn"].solution == ref.solution
            assert results["cnn"].history.best_fitness == ref.history.best_fitness

    def test_step1_population_is_one_pipelined_batch(self, serve_setup):
        """The engine exposes Step-1 as one submittable batch whose K
        candidates the scheduler may evaluate concurrently."""
        cnn, _, images = serve_setup
        from repro.quant import collect_layer_stats

        stats = collect_layer_stats(cnn, images)
        engine = LPQEngine(None, stats.weight_log_centers, SEARCH)
        gen = engine.work_units()
        first = next(gen)
        assert len(first) == SEARCH.population
        gen.close()
        # and a forced chunk-size-1 schedule (every candidate its own
        # work unit) was proven bitwise-safe in the test above

    def test_per_job_configs_and_objectives(self, serve_setup):
        """Per-job parameter maps reach the right jobs."""
        cnn, mlp, images = serve_setup
        other = LPQConfig(
            population=3, passes=1, cycles=1, block_size=2,
            diversity_parents=2, hw_widths=(4, 8), seed=77,
        )
        reset_perf()
        ref_cnn = lpq_quantize(cnn, images, config=SEARCH, objective="mse")
        reset_perf()
        ref_mlp = lpq_quantize(mlp, images, config=other)
        reset_perf()
        results = lpq_quantize_many(
            {"cnn": cnn, "mlp": mlp},
            images,
            config={"cnn": SEARCH, "mlp": other},
            objective={"cnn": "mse", "mlp": "global_local_contrastive"},
        )
        assert results["cnn"].solution == ref_cnn.solution
        assert results["cnn"].fitness == ref_cnn.fitness
        assert results["mlp"].solution == ref_mlp.solution

    def test_iterable_models_get_default_names(self, serve_setup):
        cnn, mlp, images = serve_setup
        reset_perf()
        results = lpq_quantize_many([cnn, mlp], images, config=SEARCH)
        assert sorted(results) == ["job0", "job1"]

    def test_partial_per_job_mapping_raises(self, serve_setup):
        """A per-job mapping that misses a job must raise, not silently
        run that job on defaults (the paper-budget search)."""
        cnn, mlp, images = serve_setup
        with pytest.raises(KeyError, match="mlp"):
            lpq_quantize_many(
                {"cnn": cnn, "mlp": mlp}, images, config={"cnn": SEARCH}
            )


class TestSchedulerLifecycle:
    def test_failing_job_isolated_from_healthy_job(self, serve_setup):
        """Failure of one job must not poison the shared pool: the
        healthy job completes bitwise-clean, the failed job's handle
        carries the worker traceback."""
        cnn, _, images = serve_setup
        ref = _standalone(cnn, images)
        reset_perf()
        scheduler = SearchScheduler(
            executor=ExecutorConfig("process", workers=2)
        )
        good = scheduler.submit("good", cnn, images, config=SEARCH)
        bad_model = build_failing_cnn()
        bad_model.eval()
        bad = scheduler.submit("bad", bad_model, images, config=SEARCH)
        results = scheduler.run()
        assert good.done
        assert results["good"].solution == ref.solution
        assert results["good"].fitness == ref.fitness
        assert bad.failed and not bad.done
        assert "injected failure" in bad.error
        assert "bad" not in results
        with pytest.raises(RuntimeError, match="failed"):
            bad.result()

    def test_lpq_quantize_many_raises_on_failure(self, serve_setup):
        _, _, images = serve_setup
        bad_model = build_failing_cnn()
        bad_model.eval()
        with pytest.raises(RuntimeError, match="injected failure"):
            lpq_quantize_many({"bad": bad_model}, images, config=SEARCH)

    def test_cancelled_job_skipped_others_run(self, serve_setup):
        cnn, mlp, images = serve_setup
        ref = _standalone(cnn, images)
        reset_perf()
        scheduler = SearchScheduler()
        keep = scheduler.submit("keep", cnn, images, config=SEARCH)
        drop = scheduler.submit("drop", mlp, images, config=SEARCH)
        drop.cancel()
        results = scheduler.run()
        assert keep.done and drop.cancelled
        assert sorted(results) == ["keep"]
        assert results["keep"].solution == ref.solution
        with pytest.raises(RuntimeError, match="cancelled"):
            drop.result()

    def test_rerun_picks_up_new_jobs_only(self, serve_setup):
        cnn, mlp, images = serve_setup
        reset_perf()
        scheduler = SearchScheduler()
        scheduler.submit("first", cnn, images, config=SEARCH)
        first = scheduler.run()
        assert sorted(first) == ["first"]
        scheduler.submit("second", mlp, images, config=SEARCH)
        second = scheduler.run()
        assert sorted(second) == ["second"]
        assert scheduler.handles["first"].done
        assert second["second"].solution == _standalone(mlp, images).solution

    def test_submit_validation(self, serve_setup):
        cnn, _, images = serve_setup
        scheduler = SearchScheduler()
        scheduler.submit("dup", cnn, images, config=SEARCH)
        with pytest.raises(ValueError, match="duplicate"):
            scheduler.submit("dup", cnn, images, config=SEARCH)
        with pytest.raises(ValueError, match="calib_images"):
            scheduler.submit("no-images", cnn)
        with pytest.raises(ValueError, match="objective"):
            scheduler.submit("bad-obj", cnn, images, objective="nope")
        with pytest.raises(ValueError, match="exactly one"):
            scheduler.submit("no-model", calib_images=images)
        handle = scheduler.handles["dup"]
        with pytest.raises(RuntimeError, match="not run yet"):
            handle.result()

    def test_job_perf_merged_into_ambient_registry(self, serve_setup):
        """Worker cache traffic and engine counters must reach the
        ambient registry once the job finishes — a multi-job fan-out
        must not lose observability."""
        cnn, _, images = serve_setup
        perf = reset_perf()
        scheduler = SearchScheduler()
        handle = scheduler.submit("cnn", cnn, images, config=SEARCH)
        scheduler.run()
        # the per-job future carries the job's own merged snapshot
        assert handle.perf is not None
        assert handle.perf["counters"]["serve.batches"] > 0
        assert handle.perf["caches"]["quant.weight_cache"]["misses"] > 0
        snap = perf.snapshot()
        assert snap["counters"]["lpq.candidates"] > 0
        assert snap["caches"]["quant.weight_cache"]["misses"] > 0
        assert snap["caches"]["population.memo"]["misses"] > 0
        assert snap["counters"]["serve.batches"] > 0
        assert snap["counters"]["serve.chunks"] >= snap["counters"]["serve.batches"]


class TestAdaptiveChunking:
    def test_first_batch_single_candidate_chunks(self, serve_setup):
        """Until a job has a cost estimate, chunks are single candidates
        (maximal fan-out + timing seed); afterwards the chunker respects
        the target chunk cost."""
        cnn, _, images = serve_setup
        scheduler = SearchScheduler(target_chunk_s=0.5)
        handle = scheduler.submit("cnn", cnn, images, config=SEARCH)
        state = scheduler._jobs["cnn"]
        unique = list(range(6))
        assert [len(c) for c in scheduler._chunks(state, unique, 2)] == [1] * 6
        state.cost_est = 0.01  # cheap: want big chunks, capped by workers
        assert [len(c) for c in scheduler._chunks(state, unique, 2)] == [3, 3]
        state.cost_est = 10.0  # expensive: one candidate per chunk
        assert [len(c) for c in scheduler._chunks(state, unique, 2)] == [1] * 6
        assert not handle.finished

    def test_cost_estimate_updates_from_results(self, serve_setup):
        from repro.serve.pool import ChunkResult

        cnn, _, images = serve_setup
        scheduler = SearchScheduler(cost_ewma=0.5)
        scheduler.submit("cnn", cnn, images, config=SEARCH)
        state = scheduler._jobs["cnn"]
        scheduler._update_cost(
            state, ChunkResult("cnn", 0, 0, [1.0, 2.0], {}, 1.0)
        )
        assert state.cost_est == pytest.approx(0.5)
        scheduler._update_cost(
            state, ChunkResult("cnn", 0, 1, [1.0], {}, 1.5)
        )
        assert state.cost_est == pytest.approx(1.0)


class TestSchedulerStats:
    """``stats()`` — the advisory snapshot the daemon's ``fleet_status``
    op is built on (ISSUE 9 satellite 1)."""

    def test_stats_before_and_after_run(self, serve_setup):
        cnn, mlp, images = serve_setup
        scheduler = SearchScheduler(
            executor=ExecutorConfig("thread", workers=2)
        )
        scheduler.submit("cnn", cnn, images, config=SEARCH)
        scheduler.submit("mlp", mlp, images, config=SEARCH)
        before = scheduler.stats()
        assert set(before) == {"jobs", "queue_depth", "workers", "fleet"}
        assert set(before["jobs"]) == {"cnn", "mlp"}
        for job in before["jobs"].values():
            assert job["state"] == "pending"
            assert job["chunks_outstanding"] == 0
            assert job["evaluations"] == 0
        # no pool outside run(): parallelism reads as zero, fleet empty
        assert before["workers"] == 0 and before["fleet"] == []

        results = scheduler.run()
        after = scheduler.stats()
        assert sorted(results) == ["cnn", "mlp"]
        for name, job in after["jobs"].items():
            assert job["state"] == "done"
            assert job["evaluations"] == results[name].evaluations
            assert 0 < job["computed_evaluations"] <= job["evaluations"]
        # finished jobs contribute nothing to the queue
        assert after["queue_depth"] == 0
        # the run-scoped pool was torn down again
        assert after["workers"] == 0 and after["fleet"] == []

    def test_stats_mid_run_sees_live_pool(self, serve_setup):
        """Sampled from a progress callback (exactly how the daemon's
        emitter reads it): running state, live worker parallelism."""
        cnn, _, images = serve_setup
        seen: list[dict] = []
        scheduler = SearchScheduler(
            executor=ExecutorConfig("thread", workers=2),
            on_batch=lambda name, info: seen.append(scheduler.stats()),
        )
        scheduler.submit("cnn", cnn, images, config=SEARCH)
        scheduler.run()
        assert seen, "progress callback never fired"
        mid = seen[0]
        # handles report terminal states only: mid-run is still pending
        assert mid["jobs"]["cnn"]["state"] == "pending"
        assert mid["workers"] == 2  # the live pool's parallelism
        assert any(s["jobs"]["cnn"]["evaluations"] > 0 for s in seen)

    def test_stats_is_plain_json(self, serve_setup):
        import json

        cnn, _, images = serve_setup
        scheduler = SearchScheduler()
        scheduler.submit("cnn", cnn, images, config=SEARCH)
        scheduler.run()
        stats = scheduler.stats()
        assert json.loads(json.dumps(stats)) == stats
