"""Shared multi-job pools: tagging, multi-job replicas, error isolation."""

import queue

import pytest

from repro.parallel import EvaluatorSpec, ExecutorConfig
from repro.quant import collect_layer_stats, random_solution
from repro.serve import make_shared_pool

from .servemodels import build_failing_cnn, build_serve_cnn, build_serve_mlp


def _spec(builder, images):
    model = builder()
    model.eval()
    stats = collect_layer_stats(model, images)
    return EvaluatorSpec(
        images=images, builder=builder, state=model.state_dict(), stats=stats
    )


def _candidates(spec, n, seed=3):
    import numpy as np

    rng = np.random.default_rng(seed)
    stats = spec.stats
    return [
        random_solution(rng, len(stats), stats.weight_log_centers, (4, 8))
        for _ in range(n)
    ]


def _drain(results, count):
    return [results.get(timeout=60) for _ in range(count)]


@pytest.fixture(scope="module")
def two_specs(serve_setup):
    _, _, images = serve_setup
    return {
        "cnn": _spec(build_serve_cnn, images),
        "mlp": _spec(build_serve_mlp, images),
    }


class TestSharedPools:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", None),
        ("thread", 2),
        ("process", 2),
    ])
    def test_two_jobs_tagged_results(self, two_specs, backend, workers):
        """Chunks from two jobs on one pool come back correctly tagged
        and score identically to a dedicated single-job replica."""
        expected = {}
        for name, spec in two_specs.items():
            replica = spec.build()
            expected[name] = [
                replica.evaluate(sol) for sol in _candidates(spec, 4)
            ]
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = make_shared_pool(
            two_specs, ExecutorConfig(backend, workers=workers), results
        )
        try:
            for name, spec in two_specs.items():
                cands = _candidates(spec, 4)
                pool.submit(name, 0, 0, cands[:2])
                pool.submit(name, 0, 1, cands[2:])
            got = _drain(results, 4)
        finally:
            pool.close()
        by_tag = {(r.job, r.chunk): r for r in got}
        assert len(by_tag) == 4
        for name in two_specs:
            first = by_tag[(name, 0)]
            second = by_tag[(name, 1)]
            assert first.error is None and second.error is None
            assert first.fits + second.fits == expected[name]
            assert first.elapsed > 0
            # the worker ships a perf delta for exactly its chunk
            assert first.perf_delta["timers"]["fitness.evaluate"]["count"] == 2

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_failing_job_does_not_poison_pool(self, two_specs, backend):
        """A replica that raises fails its own chunk; the same pool (and
        for thread/process the same workers) keeps serving other jobs."""
        images = two_specs["cnn"].images
        specs = dict(two_specs)
        specs["bad"] = _spec(build_failing_cnn, images)
        results: queue.SimpleQueue = queue.SimpleQueue()
        pool = make_shared_pool(
            specs, ExecutorConfig(backend, workers=2), results
        )
        try:
            bad_cands = _candidates(specs["bad"], 2)
            pool.submit("bad", 0, 0, bad_cands)
            (bad,) = _drain(results, 1)
            assert bad.job == "bad"
            assert bad.fits is None
            assert "injected failure" in bad.error
            # the pool must still evaluate the healthy job afterwards
            good_cands = _candidates(specs["cnn"], 3)
            pool.submit("cnn", 0, 0, good_cands)
            (good,) = _drain(results, 1)
            assert good.error is None
            replica = specs["cnn"].build()
            assert good.fits == [replica.evaluate(s) for s in good_cands]
        finally:
            pool.close()
