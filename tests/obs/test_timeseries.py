"""TimeSeriesStore: JSONL round-trip, torn-tail recovery, delta merging.

The store borrows the job journal's crash-safety idiom (truncate an
unterminated tail on open) but is deliberately *more* tolerant on
replay — telemetry is advisory, so one damaged line is skipped and
counted, never raised (satellite 4 of ISSUE 9).
"""

import json

from repro.obs import TimeSeriesStore, merge_samples
from repro.obs.timeseries import TIMESERIES_VERSION
from repro.perf import PerfRegistry


def _sample(seq, evaluations=0):
    delta = {"counters": {}, "timers": {}, "caches": {}}
    if evaluations:
        delta["counters"]["worker.evaluations"] = evaluations
    return {"source": "server:t", "seq": seq, "t": float(seq), "delta": delta}


class TestRoundTrip:
    def test_append_replay_roundtrip(self, tmp_path):
        perf = PerfRegistry()
        store = TimeSeriesStore(tmp_path / "ts.jsonl", perf=perf)
        records = [store.append(_sample(i, evaluations=i)) for i in range(5)]
        assert all(r["v"] == TIMESERIES_VERSION for r in records)
        back = store.replay()
        assert back == records
        assert len(store) == 5
        assert perf.counters["obs.samples"].value == 5
        store.close()
        # a fresh handle on the same path sees the same trajectory
        again = TimeSeriesStore(tmp_path / "ts.jsonl", perf=perf)
        assert again.replay() == records

    def test_merge_samples_inverts_diffing(self, tmp_path):
        store = TimeSeriesStore(tmp_path / "ts.jsonl", perf=PerfRegistry())
        for i in range(1, 5):
            store.append(_sample(i, evaluations=i))
        merged = merge_samples(store.replay())
        assert merged["counters"]["worker.evaluations"] == 1 + 2 + 3 + 4
        store.close()

    def test_fsync_mode_appends(self, tmp_path):
        store = TimeSeriesStore(
            tmp_path / "ts.jsonl", perf=PerfRegistry(), fsync=True
        )
        store.append(_sample(0, evaluations=2))
        assert store.replay()[0]["delta"]["counters"] == {
            "worker.evaluations": 2
        }
        store.close()


class TestTornTail:
    def test_torn_tail_truncated_on_open(self, tmp_path):
        perf = PerfRegistry()
        store = TimeSeriesStore(tmp_path / "ts.jsonl", perf=perf)
        store.append(_sample(0, evaluations=3))
        store.append(_sample(1, evaluations=4))
        store.close()
        # crash mid-append: an unterminated JSON fragment at the tail
        with open(store.path, "ab") as fh:
            fh.write(b'{"source": "server:t", "se')
        reopened = TimeSeriesStore(tmp_path / "ts.jsonl", perf=perf)
        reopened.append(_sample(2, evaluations=5))  # triggers recovery
        assert perf.counters["obs.torn_tails"].value == 1
        samples = reopened.replay()
        assert [s["seq"] for s in samples] == [0, 1, 2]
        merged = merge_samples(samples)
        assert merged["counters"]["worker.evaluations"] == 3 + 4 + 5
        reopened.close()

    def test_replay_alone_tolerates_torn_tail(self, tmp_path):
        perf = PerfRegistry()
        store = TimeSeriesStore(tmp_path / "ts.jsonl", perf=perf)
        store.append(_sample(0))
        store.close()
        with open(store.path, "ab") as fh:
            fh.write(b'{"half": ')
        # read-only consumers (watch tooling) replay without appending:
        # the torn fragment is skipped, not raised
        assert [s["seq"] for s in store.replay()] == [0]
        assert perf.counters["obs.torn_tails"].value == 1

    def test_corrupt_mid_file_line_skipped_not_raised(self, tmp_path):
        """Stricter than the job journal on purpose-reversed grounds:
        the journal raises on mid-file corruption (authoritative state),
        the time series skips it (advisory telemetry)."""
        perf = PerfRegistry()
        store = TimeSeriesStore(tmp_path / "ts.jsonl", perf=perf)
        store.append(_sample(0, evaluations=1))
        store.append(_sample(1, evaluations=2))
        store.close()
        lines = store.path.read_bytes().splitlines()
        lines[0] = b"\xff\xfenot json at all"
        lines.insert(1, json.dumps(["not", "an", "object"]).encode())
        store.path.write_bytes(b"\n".join(lines) + b"\n")
        samples = store.replay()
        assert [s["seq"] for s in samples] == [1]
        assert perf.counters["obs.torn_tails"].value == 2
        assert merge_samples(samples)["counters"] == {
            "worker.evaluations": 2
        }

    def test_missing_file_replays_empty(self, tmp_path):
        store = TimeSeriesStore(tmp_path / "ts.jsonl", perf=PerfRegistry())
        assert store.replay() == []
        assert len(store) == 0
