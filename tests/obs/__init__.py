"""Tests for the repro.obs live fleet telemetry subsystem."""
