"""End-to-end live telemetry: workers → pool → hub → daemon → client.

The tentpole acceptance test for ISSUE 9: a daemon fronting a remote
worker fleet with telemetry enabled must (a) stream merged fleet
samples with nonzero per-worker evaluation deltas *while* a sweep runs,
(b) persist the trajectory to the time-series store, (c) answer
one-shot ``fleet_status`` queries, (d) emit deltas that sum exactly to
the worker's end-of-run perf snapshot, and — above all — (e) stay
passive: results bitwise-identical to a serial run.
"""

import socket
import threading
import time

import pytest

from repro.obs import TimeSeriesStore, get_hub, merge_samples, reset_hub
from repro.parallel import ExecutorConfig
from repro.perf import PerfRegistry
from repro.quant import lpq_quantize
from repro.serve.remote import WorkerServer
from repro.serve.server import SearchClient, SearchServer
from repro.spec import CalibSpec, SearchSpec
from repro.spec.wire import frame_message, hello_message, read_frame

from ..serve.conftest import SEARCH

SEEDS = (50, 51, 52)


def _spec(seed: int) -> SearchSpec:
    return SearchSpec(
        model="tiny:mlp",
        calib=CalibSpec(batch=4, seed=3),
        config=SEARCH,
        seed=seed,
    )


@pytest.fixture(autouse=True)
def _fresh_hub():
    reset_hub()
    yield
    reset_hub()


@pytest.fixture(scope="module")
def serial_refs():
    return {seed: lpq_quantize(spec=_spec(seed)) for seed in SEEDS}


def _drain_metrics_frames(sock, rfile, collected, done):
    """Read every frame until EOF, keeping the ``metrics`` pushes."""
    try:
        while True:
            frame = read_frame(rfile)
            if frame is None:
                break
            if frame.get("type") == "metrics":
                collected.append(frame)
    except (OSError, ValueError):
        pass
    finally:
        done.set()


class TestWorkerEmissionReconciles:
    def test_emitted_deltas_sum_to_final_perf_snapshot(self, tmp_path,
                                                       serial_refs):
        """Every delta a worker ever emits, summed, equals its final
        registry snapshot — counters *and* cache stats (the ISSUE 9
        reconciliation criterion).  The test holds its own client
        connection so the worker's stop-flush sample is observable."""
        perf = PerfRegistry()
        worker = WorkerServer(perf=perf, metrics_interval=0.02).start()
        host, port = worker.host, worker.port
        sock = socket.create_connection((host, port), timeout=10)
        rfile = sock.makefile("rb")
        sock.sendall(frame_message(hello_message()))
        assert read_frame(rfile)["type"] == "welcome"
        collected: list[dict] = []
        done = threading.Event()
        reader = threading.Thread(
            target=_drain_metrics_frames,
            args=(sock, rfile, collected, done), daemon=True,
        )
        reader.start()
        try:
            scheduler_cfg = ExecutorConfig(
                "remote", addresses=[worker.address]
            )
            from repro.serve import SearchScheduler

            scheduler = SearchScheduler(executor=scheduler_cfg)
            scheduler.submit("j", spec=_spec(50))
            results = scheduler.run()
            assert results["j"].fitness == serial_refs[50].fitness
        finally:
            worker.stop()  # flushes the tail sample to our connection
        assert done.wait(10.0), "worker closed without EOF"
        sock.close()
        assert collected, "no metrics frames received"
        merged = merge_samples(collected)
        final = perf.snapshot()
        assert merged["counters"] == final["counters"]
        assert merged["caches"].keys() == final["caches"].keys()
        for name, cache in final["caches"].items():
            got = merged["caches"][name]
            assert (got["hits"], got["misses"], got["evictions"]) == (
                cache["hits"], cache["misses"], cache["evictions"]
            )
        assert merged["counters"]["worker.evaluations"] > 0
        # frames are sequenced per source with no gaps
        seqs = [f["seq"] for f in collected]
        assert seqs == sorted(seqs)


class TestByeFlush:
    def test_departing_client_receives_the_telemetry_tail(self):
        """A ``bye`` triggers one immediate out-of-band sample, so even
        a pool window shorter than the sampling interval (an hour here)
        receives the deltas for the work it dispatched before EOF."""
        worker = WorkerServer(metrics_interval=3600.0).start()
        try:
            sock = socket.create_connection(
                (worker.host, worker.port), timeout=10
            )
            rfile = sock.makefile("rb")
            sock.sendall(frame_message(hello_message()))
            assert read_frame(rfile)["type"] == "welcome"
            worker.perf.counter("worker.evaluations").inc(7)
            sock.sendall(frame_message({"type": "bye"}))
            frames = []
            while True:
                frame = read_frame(rfile)
                if frame is None:
                    break
                frames.append(frame)
            sock.close()
        finally:
            worker.stop()
        metrics = [f for f in frames if f.get("type") == "metrics"]
        assert metrics, "bye produced no flush sample before EOF"
        assert metrics[-1]["delta"]["counters"]["worker.evaluations"] == 7


class TestDaemonFleetTelemetry:
    def test_live_stream_status_timeseries_and_bitwise(self, tmp_path,
                                                       serial_refs):
        workers = [
            WorkerServer(perf=PerfRegistry(), metrics_interval=0.05).start()
            for _ in range(2)
        ]
        addresses = [w.address for w in workers]
        ts_dir = tmp_path / "ts"
        server = SearchServer(
            data_dir=tmp_path / "daemon",
            executor=ExecutorConfig("remote", addresses=addresses),
            metrics_interval=0.05, timeseries=ts_dir,
            perf=PerfRegistry(),
        ).start()
        frames: list[dict] = []
        streamer = SearchClient(server.address)
        client = SearchClient(server.address)

        def pump():
            try:
                for frame in streamer.metrics_stream():
                    frames.append(frame)
            except ConnectionError:
                pass  # server stopped: stream over

        pump_thread = threading.Thread(target=pump, daemon=True)
        try:
            pump_thread.start()
            jobs = {
                seed: client.submit(_spec(seed))["job"] for seed in SEEDS
            }
            records = {
                seed: client.wait(job, timeout=180)
                for seed, job in jobs.items()
            }

            # (e) passive: bitwise-identical to the serial ground truth
            for seed, record in records.items():
                ref = serial_refs[seed]
                assert record["fitness"] == ref.fitness
                assert record["solution"] == [
                    [p.n, p.es, p.rs, p.sf]
                    for p in ref.solution.layer_params
                ]

            # (c) one-shot status while still live
            status = client.fleet_status()
            assert status["metrics"]["enabled"]
            assert status["metrics"]["interval_s"] == pytest.approx(0.05)
            assert status["metrics"]["timeseries"] == str(
                ts_dir / "timeseries.jsonl"
            )
            assert {j["state"] for j in status["jobs"]} == {"done"}
            assert set(status["scheduler"]) >= {
                "jobs", "queue_depth", "workers", "fleet"
            }
            # the hub's latest per-worker samples surface in the status
            assert set(status["workers"]) >= {
                f"worker:{a}" for a in addresses
            }
        finally:
            client.close()
            server.stop()
            streamer.close()
            for worker in workers:
                worker.stop()
        pump_thread.join(timeout=10.0)

        # (a) live mid-sweep samples: some frame carried a nonzero
        # per-worker evaluation delta while jobs were running
        live_evals = [
            w["delta"].get("counters", {}).get("worker.evaluations", 0)
            for frame in frames for w in frame.get("workers") or []
        ]
        assert frames, "no merged fleet frames streamed"
        assert sum(live_evals) > 0, "stream never showed live evaluations"
        sources = {
            w["source"] for frame in frames
            for w in frame.get("workers") or []
        }
        assert sources >= {f"worker:{a}" for a in addresses}

        # (b) the persisted trajectory replays and merges to the same
        # fleet-wide story the stream told
        store = TimeSeriesStore(ts_dir / "timeseries.jsonl",
                                perf=PerfRegistry())
        samples = store.replay()
        assert samples, "time series is empty"
        persisted = merge_samples(
            w for s in samples for w in s.get("workers") or []
        )
        streamed = merge_samples(
            w for f in frames for w in f.get("workers") or []
        )
        assert persisted["counters"].get("worker.evaluations", 0) > 0
        # stop() flushes the emitter into the store after the stream
        # client is gone, so the store sees at least what the stream saw
        assert persisted["counters"]["worker.evaluations"] >= streamed[
            "counters"
        ].get("worker.evaluations", 0)
        # every sample documents its source and is version-stamped
        assert all(s.get("v") == 1 and "source" in s for s in samples)

    def test_disabled_daemon_rejects_stream_but_answers_status(
            self, tmp_path):
        from repro.serve.server import ServerError

        server = SearchServer(
            data_dir=tmp_path / "daemon", perf=PerfRegistry(),
        ).start()
        client = SearchClient(server.address)
        try:
            status = client.fleet_status()
            assert not status["metrics"]["enabled"]
            assert status["metrics"]["timeseries"] is None
            with pytest.raises(ServerError, match="telemetry disabled"):
                next(client.metrics_stream())
        finally:
            client.close()
            server.stop()
