"""Observability-suite fixtures: lock-order analysis on every test."""

from .._lock_order import lock_order_guard  # noqa: F401
