"""MetricsEmitter delta sampling and the process-ambient MetricsHub.

The emitter is the emission end of the telemetry pipeline (ISSUE 9):
it must produce *deltas* (so fleet merging counts every event once),
stay fully inert at ``interval_s = 0``, flush its tail on ``stop``,
and — the passivity contract — never let a broken sink or gauge
callable touch the host.
"""

import threading
import time

import pytest

from repro.obs import MetricsEmitter, MetricsHub, get_hub, reset_hub
from repro.perf import PerfRegistry


@pytest.fixture(autouse=True)
def _fresh_hub():
    reset_hub()
    yield
    reset_hub()


class TestEmitter:
    def test_disabled_at_zero_interval(self):
        reg = PerfRegistry()
        samples = []
        emitter = MetricsEmitter(reg, samples.append, interval_s=0.0,
                                 source="worker:t")
        assert not emitter.enabled
        emitter.start()
        assert emitter._thread is None  # no sampler thread was spawned
        reg.counter("x").inc()
        time.sleep(0.05)
        assert samples == []  # nothing emitted on its own

    def test_samples_are_deltas_with_increasing_seq(self):
        reg = PerfRegistry()
        samples = []
        emitter = MetricsEmitter(reg, samples.append, interval_s=0.0,
                                 source="worker:t")
        reg.counter("worker.evaluations").inc(3)
        emitter.sample()
        reg.counter("worker.evaluations").inc(2)
        with reg.timer("worker.task").time():
            pass
        emitter.sample()
        emitter.sample()  # idle tick: empty delta, still sequenced
        assert [s["seq"] for s in samples] == [0, 1, 2]
        assert all(s["source"] == "worker:t" for s in samples)
        assert samples[0]["delta"]["counters"] == {"worker.evaluations": 3}
        assert samples[1]["delta"]["counters"] == {"worker.evaluations": 2}
        assert samples[1]["delta"]["timers"]["worker.task"]["count"] == 1
        assert samples[2]["delta"] == {
            "counters": {}, "timers": {}, "caches": {}
        }

    def test_interval_thread_samples_and_stop_flushes_tail(self):
        reg = PerfRegistry()
        samples = []
        emitter = MetricsEmitter(reg, samples.append, interval_s=0.01,
                                 source="worker:t")
        emitter.start()
        deadline = time.monotonic() + 5.0
        while not samples and time.monotonic() < deadline:
            time.sleep(0.005)
        assert samples, "sampler thread never ticked"
        # events landing between the last tick and stop() must not be
        # lost: stop flushes one final sample
        emitter.stop(flush=False)
        reg.counter("worker.evaluations").inc(9)
        before = len(samples)
        emitter.stop()  # idempotent + flushing
        tail = samples[before:]
        assert len(tail) == 1
        assert tail[0]["delta"]["counters"] == {"worker.evaluations": 9}

    def test_gauges_evaluated_per_tick(self):
        reg = PerfRegistry()
        samples = []
        depth = {"value": 4}
        emitter = MetricsEmitter(
            reg, samples.append, interval_s=0.0, source="worker:t",
            gauges=lambda: {"queue_depth": depth["value"]},
        )
        emitter.sample()
        depth["value"] = 7
        emitter.sample()
        assert [s["gauges"]["queue_depth"] for s in samples] == [4, 7]

    def test_broken_sink_and_gauges_are_swallowed(self):
        reg = PerfRegistry()

        def explode(sample):
            raise RuntimeError("sink down")

        emitter = MetricsEmitter(
            reg, explode, interval_s=0.0, source="worker:t",
            gauges=lambda: 1 / 0,
        )
        reg.counter("x").inc()
        emitter.sample()  # must not raise
        # and the delta baseline still advanced past the failed emit
        seen = []
        emitter._emit = seen.append
        emitter.sample()
        assert seen[0]["delta"]["counters"] == {}
        assert seen[0]["gauges"] == {}


class TestHub:
    def test_publish_latest_and_unsubscribe(self):
        hub = MetricsHub()
        seen = []
        unsubscribe = hub.subscribe(seen.append)
        hub.publish({"source": "worker:a", "seq": 0, "delta": {}})
        hub.publish({"source": "worker:b", "seq": 5, "delta": {}})
        hub.publish({"source": "worker:a", "seq": 1, "delta": {}})
        assert len(seen) == 3
        latest = hub.latest()
        assert latest["worker:a"]["seq"] == 1
        assert latest["worker:b"]["seq"] == 5
        unsubscribe()
        unsubscribe()  # idempotent
        hub.publish({"source": "worker:a", "seq": 2, "delta": {}})
        assert len(seen) == 3  # unsubscribed
        assert hub.latest()["worker:a"]["seq"] == 2  # latest still tracks

    def test_broken_subscriber_does_not_block_others(self):
        hub = MetricsHub()
        seen = []
        hub.subscribe(lambda s: 1 / 0)
        hub.subscribe(seen.append)
        hub.publish({"source": "worker:a", "seq": 0})  # must not raise
        assert len(seen) == 1

    def test_ambient_hub_reset_isolates(self):
        first = get_hub()
        assert get_hub() is first
        first.publish({"source": "worker:a", "seq": 0})
        fresh = reset_hub()
        assert get_hub() is fresh and fresh is not first
        assert fresh.latest() == {}

    def test_concurrent_publish_is_safe(self):
        hub = MetricsHub()
        seen = []
        lock = threading.Lock()

        def keep(sample):
            with lock:
                seen.append(sample)

        hub.subscribe(keep)

        def blast(source):
            for seq in range(200):
                hub.publish({"source": source, "seq": seq})

        threads = [
            threading.Thread(target=blast, args=(f"worker:{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 800
        assert all(s["seq"] == 199 for s in hub.latest().values())
