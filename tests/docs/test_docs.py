"""Docs stay true: public-API doctests run and docs/ references resolve.

Runs the same two gates as the CI docs leg (``scripts/check_docs.py``)
under plain pytest, so a broken docstring example or a stale
``path/file.py:symbol`` reference fails tier-1 locally too.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def check_docs():
    return _load_check_docs()


def test_public_api_doctests(check_docs):
    assert check_docs.run_doctests(verbose=False) == 0


def test_docs_references_resolve(check_docs):
    assert check_docs.check_references(verbose=False) == 0


def test_docs_pages_exist():
    for page in ("architecture.md", "perf.md", "api.md"):
        assert (REPO / "docs" / page).is_file(), f"docs/{page} missing"


def test_checker_catches_broken_reference(tmp_path, check_docs, monkeypatch):
    """The link-check must actually fail on a dangling reference."""
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "bad.md").write_text(
        "see `src/repro/quant/ptq.py:not_a_symbol` and "
        "`src/repro/gone.py:lpq_quantize`\n"
    )
    monkeypatch.setattr(check_docs, "REPO", tmp_path)
    monkeypatch.setattr(check_docs, "DOC_PAGES", ("docs/*.md",))
    assert check_docs.check_references(verbose=False) == 2


def test_check_docs_script_entrypoint():
    """The CI leg's exact invocation exits 0."""
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_docs.py")],
        capture_output=True,
        text=True,
        cwd=REPO,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
