"""Shared lock-order fixture for the concurrency-heavy suites.

``tests/serve/conftest.py`` and ``tests/obs/conftest.py`` re-export
:func:`lock_order_guard` as an autouse fixture: every test in those
suites runs with ``threading.Lock``/``RLock`` instrumented by a fresh
:class:`repro.analysis.races.LockOrderMonitor`, and a recorded
acquisition-order cycle fails the test that produced it.  Set
``REPRO_LOCK_ORDER=0`` to opt out (e.g. when bisecting an unrelated
failure without the instrumentation overhead).
"""

import os

import pytest

from repro.analysis.races import LockOrderMonitor


def _enabled() -> bool:
    return os.environ.get("REPRO_LOCK_ORDER", "1") != "0"


@pytest.fixture(autouse=True)
def lock_order_guard(request):
    if not _enabled():
        yield None
        return
    monitor = LockOrderMonitor()
    monitor.install()
    try:
        yield monitor
    finally:
        monitor.uninstall()
    report = monitor.report()
    if report:
        pytest.fail(
            f"lock-order analysis for {request.node.nodeid}:\n{report}"
        )
