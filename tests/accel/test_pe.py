"""Tests for the log↔linear converters and the LP PE datapath."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import (
    PEConfig,
    converter_max_error,
    linear2log_table,
    log2linear_table,
    pack_count,
    pe_dot,
)
from repro.numerics import LPParams, lp_quantize


class TestLogLinearConverter:
    def test_endpoints(self):
        t = log2linear_table(8)
        assert t[0] == 0  # 2^0 - 1 = 0

    def test_monotone(self):
        t = log2linear_table(8)
        assert np.all(np.diff(t.astype(int)) >= 0)

    def test_max_error_below_one_ulp(self):
        # one fraction ulp of 1.f at 8 bits is 1/256 ≈ 0.0039
        assert converter_max_error(8) < 1.5 / 256

    def test_inverse_composition_near_identity(self):
        fwd = log2linear_table(8)
        inv = linear2log_table(8)
        codes = np.arange(256)
        round_trip = inv[fwd[codes]]
        assert np.max(np.abs(round_trip - codes)) <= 1

    def test_wider_converter_more_accurate(self):
        assert converter_max_error(10) < converter_max_error(6)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            log2linear_table(0)
        with pytest.raises(ValueError):
            linear2log_table(20)


class TestPEDot:
    """The bit-level PE path must reproduce the quantized-math dot product
    to within the log→linear converter tolerance."""

    @pytest.mark.parametrize("bits,pack", [(2, 4), (4, 2), (8, 1)])
    def test_matches_reference_dot(self, bits, pack):
        rng = np.random.default_rng(bits)
        wp = LPParams(bits, max(0, min(1, bits - 3)), min(2, bits - 1), 3.5)
        ap = LPParams(8, 2, 3, 2.0)
        k = 128
        w = rng.normal(0, 0.08, (k, pack))
        a = rng.normal(0, 0.3, k)
        got = pe_dot(w, a, wp, ap)
        want = lp_quantize(w, wp).T @ lp_quantize(a, ap)
        scale = np.abs(lp_quantize(w, wp)).T @ np.abs(lp_quantize(a, ap))
        rel = np.abs(got - want) / np.maximum(scale, 1e-12)
        assert np.all(rel < 5e-3), f"relative error {rel}"

    def test_pack_count(self):
        assert pack_count(2) == 4
        assert pack_count(4) == 2
        assert pack_count(8) == 1

    def test_zero_weights_give_zero(self):
        wp = LPParams(4, 1, 2, 0.0)
        ap = LPParams(8, 2, 3, 0.0)
        got = pe_dot(np.zeros((16, 2)), np.ones(16), wp, ap)
        np.testing.assert_allclose(got, 0.0, atol=1e-12)

    def test_zero_activations_give_zero(self):
        wp = LPParams(4, 1, 2, 0.0)
        ap = LPParams(8, 2, 3, 0.0)
        got = pe_dot(np.ones((16, 2)), np.zeros(16), wp, ap)
        np.testing.assert_allclose(got, 0.0, atol=1e-12)

    def test_shape_validation(self):
        wp, ap = LPParams(4, 1, 2, 0.0), LPParams(8, 2, 3, 0.0)
        with pytest.raises(ValueError):
            pe_dot(np.ones((8, 3)), np.ones(8), wp, ap)  # 4-bit packs 2
        with pytest.raises(ValueError):
            pe_dot(np.ones((8, 2)), np.ones(9), wp, ap)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_sign_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        wp = LPParams(4, 1, 2, 1.0)
        ap = LPParams(8, 2, 3, 1.0)
        w = rng.normal(0, 0.1, (32, 2))
        a = rng.normal(0, 0.1, 32)
        np.testing.assert_allclose(
            pe_dot(w, a, wp, ap), -pe_dot(-w, a, wp, ap), rtol=1e-9, atol=1e-12
        )

    def test_wider_accumulator_closer_to_exact(self):
        rng = np.random.default_rng(7)
        wp = LPParams(8, 2, 3, 3.0)
        ap = LPParams(8, 2, 3, 3.0)
        w = rng.normal(0, 0.1, (256, 1))
        a = rng.normal(0, 0.1, 256)
        want = lp_quantize(w, wp).T @ lp_quantize(a, ap)
        err_narrow = abs(
            pe_dot(w, a, wp, ap, PEConfig(acc_frac_bits=6))[0] - want[0]
        )
        err_wide = abs(
            pe_dot(w, a, wp, ap, PEConfig(acc_frac_bits=23))[0] - want[0]
        )
        assert err_wide <= err_narrow + 1e-12
