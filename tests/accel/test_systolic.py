"""Tests for the cycle model, arch configs, and workload extraction."""

import numpy as np
import pytest

from repro.accel import (
    ALL_ARCHS,
    LayerShape,
    adaptivfloat_arch,
    ant,
    bitfusion,
    evaluate_arch,
    extract_workload,
    lpa,
    posit_arch,
    simulate_layer,
    simulate_network,
)
from repro.accel.workload import paper_resnet50_shapes, paper_vit_b_shapes

BIG = LayerShape("big", m=3136, k=576, n=128)


class TestArchConfigs:
    def test_lpa_compute_area_matches_table3(self):
        # Table 3: LPA compute area 12078.72 µm²
        assert lpa().compute_area_um2() == pytest.approx(12078.72, rel=1e-3)

    def test_ant_compute_area_matches_table3(self):
        assert ant().compute_area_um2() == pytest.approx(5102.28, rel=1e-3)

    def test_bitfusion_compute_area_matches_table3(self):
        assert bitfusion().compute_area_um2() == pytest.approx(5093.75, rel=1e-3)

    def test_adaptivfloat_compute_area_matches_table3(self):
        assert adaptivfloat_arch().compute_area_um2() == pytest.approx(
            23357.14, rel=1e-3
        )

    def test_total_area_includes_buffer(self):
        r = lpa().total_area_mm2()
        assert r == pytest.approx(4.212, abs=5e-3)

    def test_lpa_packing(self):
        a = lpa()
        assert a.pack_factor(2) == 4
        assert a.pack_factor(4) == 2
        assert a.pack_factor(8) == 1
        assert a.effective_dims(2, 8) == (8, 32)

    def test_ant_fusion_shrinks_array(self):
        a = ant()
        rows, cols = a.effective_dims(8, 8)
        assert cols == 4  # 8-bit weights fuse PE pairs -> "8-by-4"
        assert a.snap_weight_bits(2) == 4  # no 2-bit support

    def test_adaptivfloat_fixed_8bit(self):
        a = adaptivfloat_arch()
        assert a.snap_weight_bits(2) == 8
        assert a.effective_dims(8, 8) == (8, 8)

    def test_mac_energy_monotone_in_bits(self):
        for arch in (lpa(), bitfusion(), posit_arch()):
            widths = sorted(arch.e_mac_pj)
            energies = [arch.e_mac_pj[w] for w in widths]
            assert energies == sorted(energies)


class TestSimulateLayer:
    def test_cycles_scale_with_work(self):
        small = LayerShape("s", m=64, k=64, n=64)
        big = LayerShape("b", m=64, k=64, n=256)
        a = lpa()
        assert (
            simulate_layer(big, a, 8, 8).cycles
            > simulate_layer(small, a, 8, 8).cycles
        )

    def test_lower_bits_fewer_cycles_on_lpa(self):
        a = lpa()
        c8 = simulate_layer(BIG, a, 8, 8).compute_cycles
        c4 = simulate_layer(BIG, a, 4, 8).compute_cycles
        c2 = simulate_layer(BIG, a, 2, 8).compute_cycles
        assert c2 < c4 < c8
        assert c8 / c4 == pytest.approx(2.0, rel=0.2)

    def test_bits_do_not_speed_up_adaptivfloat(self):
        a = adaptivfloat_arch()
        assert (
            simulate_layer(BIG, a, 2, 8).compute_cycles
            == simulate_layer(BIG, a, 8, 8).compute_cycles
        )

    def test_utilization_bounded(self):
        for arch in ALL_ARCHS().values():
            sim = simulate_layer(BIG, arch, 8, 8)
            peak = arch.rows * arch.cols
            assert 0 < sim.utilization <= peak

    def test_memory_roofline(self):
        # a tiny-compute, huge-K layer is memory bound
        skinny = LayerShape("skinny", m=1, k=65536, n=8)
        sim = simulate_layer(skinny, lpa(), 8, 8)
        assert sim.memory_cycles > 0
        assert sim.cycles >= sim.memory_cycles

    def test_group_conv_simulated_per_group(self):
        grouped = LayerShape("dw", m=256, k=9, n=1, groups=64)
        dense = LayerShape("d", m=256, k=9, n=64, groups=1)
        a = lpa()
        # depthwise has worse utilization than the dense equivalent
        assert (
            simulate_layer(grouped, a, 8, 8).cycles
            > simulate_layer(dense, a, 8, 8).cycles
        )

    def test_simulate_network_validates_lengths(self):
        with pytest.raises(ValueError):
            simulate_network([BIG], lpa(), [8, 8])


class TestEvaluateArch:
    def test_table3_headline_shapes(self):
        """LPA ≈ 2× ANT/BitFusion compute density, AdaptivFloat worst."""
        shapes = paper_resnet50_shapes()
        rng = np.random.default_rng(0)
        bits = rng.choice([2, 4, 4, 4, 8], size=len(shapes)).tolist()
        reports = {
            name: evaluate_arch(shapes, arch, bits)
            for name, arch in ALL_ARCHS().items()
        }
        d = {k: r.compute_density_tops_mm2 for k, r in reports.items()}
        assert d["LPA"] > 1.5 * d["ANT"]
        assert d["LPA"] > 1.5 * d["BitFusion"]
        assert d["AdaptivFloat"] == min(d.values())

    def test_lpa_lowest_latency(self):
        shapes = paper_vit_b_shapes()
        bits = [4] * len(shapes)
        reports = {
            name: evaluate_arch(shapes, arch, bits)
            for name, arch in ALL_ARCHS().items()
        }
        assert min(reports, key=lambda k: reports[k].latency_ms) == "LPA"

    def test_ant_energy_at_or_below_lpa(self):
        """Fig. 6: LPA pays a modest energy premium over ANT."""
        shapes = paper_resnet50_shapes()
        bits = [4] * len(shapes)
        r_lpa = evaluate_arch(shapes, lpa(), bits)
        r_ant = evaluate_arch(shapes, ant(), bits)
        assert r_ant.energy_mj <= r_lpa.energy_mj * 1.1

    def test_normalized_to(self):
        shapes = paper_resnet50_shapes()
        bits = [8] * len(shapes)
        r1 = evaluate_arch(shapes, lpa(), bits)
        lat, en = r1.normalized_to(r1)
        assert lat == en == 1.0


class TestWorkloadExtraction:
    def test_paper_resnet50_macs(self):
        macs = sum(s.macs for s in paper_resnet50_shapes())
        assert macs == pytest.approx(4.1e9, rel=0.05)  # known ~4.1 GMACs

    def test_paper_vit_b_macs(self):
        # ViT-B/16 is ~17.6G multiply-adds; the GEMM list excludes the
        # attention score/context matmuls (those run in the PPU), ~0.7G
        macs = sum(s.macs for s in paper_vit_b_shapes())
        assert macs == pytest.approx(17.6e9, rel=0.1)

    def test_extract_from_mini_model(self):
        from repro.models import resnet18_mini

        shapes = extract_workload(resnet18_mini())
        assert len(shapes) == 21  # 20 convs (incl. shortcuts) + head
        stem = shapes[0]
        assert (stem.m, stem.k, stem.n) == (32 * 32, 27, 16)
        head = shapes[-1]
        assert (head.m, head.k, head.n) == (1, 128, 16)

    def test_depthwise_shapes(self):
        from repro.models import mobilenetv2_mini

        shapes = extract_workload(mobilenetv2_mini())
        dw = [s for s in shapes if s.groups > 1]
        assert dw, "mobilenet must contain depthwise layers"
        assert all(s.n == 1 and s.k == 9 for s in dw)

    def test_weight_params_match_model(self):
        from repro.models import resnet18_mini
        from repro.nn import quantizable_layers

        model = resnet18_mini()
        shapes = extract_workload(model)
        for (name, layer), shape in zip(quantizable_layers(model), shapes):
            assert shape.weight_params == layer.weight.size, name
