"""Tests for the Post-Processing Unit model."""

import numpy as np
import pytest

from repro.accel.ppu import ppu_requantize


class TestPPU:
    def test_output_on_lp_grid(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1.5, 256)
        res = ppu_requantize(x, act_bits=8)
        # idempotent: re-encoding the decoded values changes nothing
        from repro.numerics import lp_quantize

        np.testing.assert_allclose(
            lp_quantize(res.values, res.params), res.values, rtol=1e-12
        )

    def test_relu_applied_before_quantization(self):
        x = np.array([-3.0, -1.0, 0.5, 2.0])
        res = ppu_requantize(x, relu=True)
        assert np.all(res.values >= 0)
        assert res.values[3] > 0

    def test_scale_factor_centres_on_tile(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1e-3, 512)
        big = rng.normal(0, 1e3, 512)
        assert (
            ppu_requantize(small).scale_factor
            > ppu_requantize(big).scale_factor
        )

    def test_4bit_coarser_than_8bit(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1.0, 2048)
        e4 = np.sqrt(np.mean((ppu_requantize(x, act_bits=4).values - x) ** 2))
        e8 = np.sqrt(np.mean((ppu_requantize(x, act_bits=8).values - x) ** 2))
        assert e8 < e4

    def test_rejects_unsupported_width(self):
        with pytest.raises(ValueError):
            ppu_requantize(np.ones(4), act_bits=6)

    def test_encoder_conversion_error_small(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1.0, 2048)
        res = ppu_requantize(x, act_bits=8)
        rel = np.abs(res.values - x) / np.maximum(np.abs(x), 1e-9)
        # dominated by 8-bit LP quantization, not the converter
        assert np.median(rel) < 0.1
