"""Property-based tests on the cycle/energy model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import ALL_ARCHS, LayerShape, lpa, simulate_layer

ARCHS = list(ALL_ARCHS().values())

shape_strategy = st.builds(
    LayerShape,
    name=st.just("layer"),
    m=st.integers(1, 4096),
    k=st.integers(1, 2048),
    n=st.integers(1, 1024),
    groups=st.just(1),
)

bits_strategy = st.sampled_from([2, 4, 8])


class TestCycleModelInvariants:
    @given(shape_strategy, bits_strategy, bits_strategy,
           st.integers(0, len(ARCHS) - 1))
    @settings(max_examples=150, deadline=None)
    def test_positive_cycles_and_energy(self, shape, wb, ab, arch_idx):
        sim = simulate_layer(shape, ARCHS[arch_idx], wb, ab)
        assert sim.cycles > 0
        assert sim.energy_pj > 0
        assert sim.macs == shape.macs

    @given(shape_strategy, bits_strategy, st.integers(0, len(ARCHS) - 1))
    @settings(max_examples=100, deadline=None)
    def test_cycles_monotone_in_batch(self, shape, wb, arch_idx):
        arch = ARCHS[arch_idx]
        c1 = simulate_layer(shape, arch, wb, 8, batch=1).cycles
        c4 = simulate_layer(shape, arch, wb, 8, batch=4).cycles
        assert c4 >= c1

    @given(shape_strategy)
    @settings(max_examples=100, deadline=None)
    def test_lpa_packing_speedup_bounded(self, shape):
        """Halving the weight width can at most halve compute cycles."""
        a = lpa()
        c8 = simulate_layer(shape, a, 8, 8).compute_cycles
        c4 = simulate_layer(shape, a, 4, 8).compute_cycles
        c2 = simulate_layer(shape, a, 2, 8).compute_cycles
        assert c4 <= c8 and c2 <= c4
        assert c8 <= 2 * c4 + 64  # fill/drain slack
        assert c4 <= 2 * c2 + 64

    @given(shape_strategy, bits_strategy, st.integers(0, len(ARCHS) - 1))
    @settings(max_examples=100, deadline=None)
    def test_energy_monotone_in_bits(self, shape, wb, arch_idx):
        arch = ARCHS[arch_idx]
        e_lo = simulate_layer(shape, arch, wb, 8).energy_pj
        e_hi = simulate_layer(shape, arch, 8, 8).energy_pj
        assert e_lo <= e_hi + 1e-6

    @given(shape_strategy)
    @settings(max_examples=50, deadline=None)
    def test_utilization_never_exceeds_peak(self, shape):
        for arch in ARCHS:
            for wb in (2, 4, 8):
                sim = simulate_layer(shape, arch, wb, 8)
                rows, cols = arch.effective_dims(
                    arch.snap_weight_bits(wb), 8
                )
                assert sim.macs <= sim.cycles * rows * cols * max(
                    1, shape.groups
                )


class TestEndToEndIntegration:
    def test_lpq_solution_drives_accelerator(self, ):
        """Quantize a model with LPQ and run its own workload through the
        cycle model at the searched widths — full co-design loop."""
        from repro.accel import evaluate_arch, extract_workload
        from repro.data import calibration_batch
        from repro.models import resnet18_mini
        from repro.quant import LPQConfig, lpq_quantize
        from repro import nn

        nn.seed(0)
        model = resnet18_mini()
        res = lpq_quantize(
            model,
            calibration_batch(16, seed=8),
            config=LPQConfig(population=4, passes=1, cycles=1,
                             block_size=12, diversity_parents=2),
        )
        shapes = extract_workload(model)
        w_bits = [p.n for p in res.solution.layer_params]
        a_bits = [p.n for p in res.act_params]
        assert len(shapes) == len(w_bits)
        r_lpa = evaluate_arch(shapes, lpa(), w_bits, a_bits)
        r_uniform8 = evaluate_arch(shapes, lpa(), [8] * len(shapes), a_bits)
        assert r_lpa.latency_ms <= r_uniform8.latency_ms + 1e-9
        assert r_lpa.throughput_gops > 0
