"""Bit-level tests of the unified LP decoder/encoder lanes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import (
    MODES,
    decode_activations,
    decode_weights,
    lane_values,
    mode_for_bits,
    pack_lanes,
    unpack_lanes,
)
from repro.numerics import LPParams, lp_decode


class TestLanePacking:
    def test_mode_lane_counts(self):
        assert MODES["A"] == (2, 4)
        assert MODES["B"] == (4, 2)
        assert MODES["C"] == (8, 1)

    def test_mode_for_bits(self):
        assert mode_for_bits(2) == "A"
        assert mode_for_bits(4) == "B"
        assert mode_for_bits(8) == "C"
        with pytest.raises(ValueError):
            mode_for_bits(5)

    def test_lane0_is_msb_field(self):
        # word 0b10_01_11_00 in MODE-A -> lanes [2, 1, 3, 0]
        lanes = unpack_lanes(np.array([0b10011100]), "A")
        assert lanes.tolist() == [[2, 1, 3, 0]]

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=32),
           st.sampled_from(["A", "B", "C"]))
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_roundtrip(self, words, mode):
        w = np.array(words)
        assert np.array_equal(pack_lanes(unpack_lanes(w, mode), mode), w)

    def test_pack_rejects_wrong_lane_count(self):
        with pytest.raises(ValueError):
            pack_lanes(np.zeros((3, 3), dtype=np.int64), "B")


class TestDecoderMatchesReference:
    """The hardware decoder must agree with the mathematical lp_decode
    on every code of every MODE (NaR maps to zero by design)."""

    @pytest.mark.parametrize(
        "bits,es,rs", [(2, 0, 1), (4, 1, 2), (4, 0, 3), (8, 2, 3), (8, 0, 7)]
    )
    def test_all_codes(self, bits, es, rs):
        params = LPParams(bits, es, rs, sf=0.731)
        codes = np.arange(1 << bits)
        ref = lp_decode(codes, params)
        dec = decode_activations(codes, params)
        got = lane_values(dec)[:, 0]
        nar = 1 << (bits - 1)
        for c in range(1 << bits):
            if c == nar:
                assert got[c] == 0.0  # decoder maps NaR to zero
            else:
                assert got[c] == pytest.approx(ref[c], rel=1e-12), f"code {c}"

    @pytest.mark.parametrize("bits,mode", [(2, "A"), (4, "B"), (8, "C")])
    def test_packed_weights_decode(self, bits, mode):
        params = LPParams(bits, max(0, bits - 3) and 1, min(2, bits - 1), sf=-0.4)
        lanes = MODES[mode][1]
        rng = np.random.default_rng(0)
        lane_codes = rng.integers(0, 1 << bits, (16, lanes))
        words = pack_lanes(lane_codes, mode)
        dec = decode_weights(words, mode, params)
        got = lane_values(dec)
        ref = lp_decode(lane_codes, params)
        nar = 1 << (bits - 1)
        mask = lane_codes != nar
        np.testing.assert_allclose(got[mask], ref[mask], rtol=1e-12)

    def test_mode_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            decode_weights(np.array([0]), "B", LPParams(8, 2, 3, 0.0))


class TestDecodedFields:
    def test_sign_field(self):
        params = LPParams(8, 2, 3, 0.0)
        dec = decode_activations(np.array([0b01000000, 0b11000000]), params)
        assert dec.sign[:, 0].tolist() == [0, 1]

    def test_regime_scale_is_k_times_2es(self):
        params = LPParams(8, 2, 3, 0.0)
        # 0 110 01 00 -> k=1, es=2 -> regime scale 4
        dec = decode_activations(np.array([0b01100100]), params)
        assert dec.regime_scale[0, 0] == 4

    def test_zero_flag(self):
        params = LPParams(8, 2, 3, 0.0)
        dec = decode_activations(np.array([0, 5]), params)
        assert dec.is_zero[:, 0].tolist() == [True, False]
