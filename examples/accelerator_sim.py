"""Accelerator comparison: run the LPA cycle/energy model against ANT,
BitFusion and AdaptivFloat on the full ResNet50 and ViT-B workloads
(Table 3 + Fig. 6).

Run:  python examples/accelerator_sim.py
"""

import numpy as np

from repro.accel import ALL_ARCHS, evaluate_arch, lpa, pe_dot
from repro.accel.workload import paper_resnet50_shapes, paper_vit_b_shapes
from repro.numerics import LPParams, lp_quantize


def main() -> None:
    print("=== Bit-level LP PE check ===")
    rng = np.random.default_rng(0)
    wp, ap = LPParams(4, 1, 2, 3.0), LPParams(8, 2, 3, 2.0)
    w, a = rng.normal(0, 0.1, (64, 2)), rng.normal(0, 0.2, 64)
    hw = pe_dot(w, a, wp, ap)
    ref = lp_quantize(w, wp).T @ lp_quantize(a, ap)
    print(f"PE MODE-B dot product: hw={hw}, exact LP math={ref}")
    print("(difference = 8-bit log->linear converter rounding)\n")

    rng = np.random.default_rng(1)
    for wl_name, shapes in [
        ("ResNet50", paper_resnet50_shapes()),
        ("ViT-B/16", paper_vit_b_shapes()),
    ]:
        # an LPQ-like mixed-precision assignment: mostly 4-bit
        bits = rng.choice([2, 4, 4, 4, 8], size=len(shapes)).tolist()
        print(f"=== {wl_name}: {sum(s.macs for s in shapes) / 1e9:.2f} GMACs, "
              f"{len(shapes)} layers ===")
        header = (f"{'arch':14s}{'GOPS':>9s}{'TOPS/mm2':>10s}"
                  f"{'GOPS/W':>9s}{'latency ms':>12s}{'energy mJ':>11s}")
        print(header)
        base = None
        for name, arch in ALL_ARCHS().items():
            r = evaluate_arch(shapes, arch, bits, act_bits=8)
            if base is None:
                base = r
            print(f"{name:14s}{r.throughput_gops:9.1f}"
                  f"{r.compute_density_tops_mm2:10.2f}"
                  f"{r.gops_per_watt:9.1f}{r.latency_ms:12.3f}"
                  f"{r.energy_mj:11.3f}")
        print()


if __name__ == "__main__":
    main()
