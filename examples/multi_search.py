"""Multi-search scheduling: quantize a fleet of models on one pool.

Runs two LPQ searches — a front-loaded BatchNorm CNN and a ViT
analogue — first back-to-back (a dedicated executor pool each), then
multiplexed onto one shared pool by the ``repro.serve`` scheduler, and
checks the scheduler moved no bits while sharing the workers.

Run:  python examples/multi_search.py
"""

import os
import time

from repro import nn
from repro.data import calibration_batch
from repro.parallel import ExecutorConfig
from repro.perf import get_perf, reset_perf
from repro.perf.bench import BENCH_MODELS, bench_config
from repro.quant import lpq_quantize
from repro.serve import lpq_quantize_many


def build_models() -> dict:
    """Two deterministic, heterogeneous jobs (CNN + LayerNorm ViT)."""
    models = {}
    for name in ("resnet", "vit"):
        nn.seed(0)
        model = BENCH_MODELS[name]()
        model.eval()
        models[name] = model
    return models


def main() -> None:
    calib = calibration_batch(16, seed=1)
    config = bench_config(seed=0)
    workers = min(os.cpu_count() or 1, 4)
    executor = ExecutorConfig(
        backend="process" if workers > 1 else "serial", workers=workers
    )
    print(f"executor: {executor.backend} x {executor.resolved_workers()}")

    # --- back-to-back: one search (and one pool) at a time -------------
    start = time.perf_counter()
    standalone = {
        name: lpq_quantize(model, calib, config=config, executor=executor)
        for name, model in build_models().items()
    }
    sequential_wall = time.perf_counter() - start
    print(f"back-to-back: {sequential_wall:.2f}s")

    # --- scheduler: both searches share one pool ------------------------
    reset_perf()
    start = time.perf_counter()
    results = lpq_quantize_many(
        build_models(), calib, config=config, executor=executor
    )
    scheduler_wall = time.perf_counter() - start
    print(f"scheduler:    {scheduler_wall:.2f}s "
          f"(speedup {sequential_wall / scheduler_wall:.2f}x)\n")

    for name, result in results.items():
        same = (
            result.solution == standalone[name].solution
            and result.fitness == standalone[name].fitness
        )
        print(f"[{name}] {len(result.solution)} layers  "
              f"mean weight bits {result.mean_weight_bits:.2f}  "
              f"size {result.model_size_mb():.3f} MB  "
              f"{result.evaluations} evaluations  "
              f"bitwise == standalone: {same}")

    # the scheduler merges per-job registries back, so the shared-pool
    # run stays observable end to end
    snap = get_perf().snapshot()
    memo = snap["caches"]["population.memo"]
    print(f"\nscheduler batches: {snap['counters']['serve.batches']}  "
          f"chunks: {snap['counters']['serve.chunks']}  "
          f"memo hit rate: {memo['hit_rate'] * 100:.1f}%")


if __name__ == "__main__":
    main()
