"""Multi-search scheduling: quantize a fleet of models on one pool.

The fleet is declared as :class:`repro.spec.SearchSpec` values — each
spec names its model in the component registry (``bench:resnet``,
``bench:vit``) and describes its calibration batch instead of carrying
the array, so every job is a plain-JSON request (the same form the
committed spec files under ``examples/specs/`` use, and the form the
shared process pool ships to its workers).

Runs the two searches first back-to-back (a dedicated executor pool
each, via ``lpq_quantize(spec=...)``), then multiplexed onto one shared
pool by the ``repro.serve`` scheduler, and checks the scheduler moved
no bits while sharing the workers.

Run:  python examples/multi_search.py
"""

import os
import time
from pathlib import Path

from repro.parallel import ExecutorConfig
from repro.perf import get_perf, reset_perf
from repro.perf.bench import bench_config
from repro.quant import lpq_quantize
from repro.serve import lpq_quantize_many
from repro.spec import CalibSpec, SearchSpec


def build_specs() -> list[SearchSpec]:
    """Two deterministic, heterogeneous jobs (CNN + LayerNorm ViT)."""
    return [
        SearchSpec(
            model=f"bench:{name}",
            calib=CalibSpec(batch=16, seed=1),
            config=bench_config(seed=0),
            name=name,
        )
        for name in ("resnet", "vit")
    ]


def main() -> None:
    specs = build_specs()
    workers = min(os.cpu_count() or 1, 4)
    executor = ExecutorConfig(
        backend="process" if workers > 1 else "serial", workers=workers
    )
    print(f"executor: {executor.backend} x {executor.resolved_workers()}")

    # every job is a JSON-serializable request — this is what crosses
    # the worker boundary, and what you would commit as a spec file
    # (SearchSpec.dump/load; see examples/specs/tiny_resnet.json)
    print(f"fleet: {[spec.model for spec in specs]} "
          f"({len(specs[0].to_json())}-byte JSON specs)")

    # --- back-to-back: one search (and one pool) at a time -------------
    import dataclasses

    start = time.perf_counter()
    standalone = {
        spec.name: lpq_quantize(
            spec=dataclasses.replace(spec, executor=executor)
        )
        for spec in specs
    }
    sequential_wall = time.perf_counter() - start
    print(f"back-to-back: {sequential_wall:.2f}s")

    # --- scheduler: both searches share one pool ------------------------
    reset_perf()
    start = time.perf_counter()
    results = lpq_quantize_many(specs, executor=executor)
    scheduler_wall = time.perf_counter() - start
    print(f"scheduler:    {scheduler_wall:.2f}s "
          f"(speedup {sequential_wall / scheduler_wall:.2f}x)\n")

    for name, result in results.items():
        same = (
            result.solution == standalone[name].solution
            and result.fitness == standalone[name].fitness
        )
        print(f"[{name}] {len(result.solution)} layers  "
              f"mean weight bits {result.mean_weight_bits:.2f}  "
              f"size {result.model_size_mb():.3f} MB  "
              f"{result.evaluations} evaluations  "
              f"bitwise == standalone: {same}")

    # the scheduler merges per-job registries back, so the shared-pool
    # run stays observable end to end
    snap = get_perf().snapshot()
    memo = snap["caches"]["population.memo"]
    print(f"\nscheduler batches: {snap['counters']['serve.batches']}  "
          f"chunks: {snap['counters']['serve.chunks']}  "
          f"memo hit rate: {memo['hit_rate'] * 100:.1f}%")

    # the same fleet, launched from a committed spec file
    spec_path = Path(__file__).parent / "specs" / "tiny_resnet.json"
    if spec_path.exists():
        from_file = lpq_quantize(spec=SearchSpec.load(spec_path))
        print(f"\nfrom {spec_path.name}: fitness {from_file.fitness:.4f}  "
              f"mean weight bits {from_file.mean_weight_bits:.2f}")


if __name__ == "__main__":
    main()
