"""LPQ on a vision transformer + objective comparison (Fig. 5(a) style).

Quantizes the Swin-T analogue with the paper's global-local contrastive
objective and with plain MSE, then compares the resulting accuracy.
Both searches fan their population evaluations out across worker
processes via the executor backend knob (drop ``executor=`` or pass
``ExecutorConfig("serial")`` to stay single-process — the trajectory is
bitwise identical either way).

Run:  python examples/quantize_vit.py
"""

import os

from repro.data import calibration_batch, make_dataset
from repro.models import get_model
from repro.models.zoo import evaluate
from repro.parallel import ExecutorConfig
from repro.quant import LPQConfig, bn_recalibrated, lpq_quantize, quantized


def main() -> None:
    model = get_model("swin_t")
    calib = calibration_batch(64)
    test = make_dataset("test", 512)
    fp = evaluate(model, test.images, test.labels)
    print(f"Swin-T analogue FP top-1: {fp:.2f}%\n")

    # small demo budget: search the safer 4/8-bit widths (the paper's
    # full budget of 1400+ evaluations is needed to place 2-bit layers
    # safely — see the REPRO_EFFORT=paper benchmarks)
    config = LPQConfig(population=8, passes=2, cycles=1, block_size=6,
                       hw_widths=(4, 8))
    workers = min(os.cpu_count() or 1, 4)
    executor = (
        ExecutorConfig(backend="process", workers=workers)
        if workers > 1 else ExecutorConfig(backend="serial")
    )
    print(f"executor: {executor.backend} backend, {workers} worker(s)\n")
    for objective in ("global_local_contrastive", "mse"):
        result = lpq_quantize(model, calib, config=config,
                              objective=objective, executor=executor)
        with quantized(model, result.solution, result.act_params):
            with bn_recalibrated(model, calib):  # no-op for LayerNorm ViTs
                acc = evaluate(model, test.images, test.labels)
        print(f"objective={objective}")
        print(f"  W bits {result.mean_weight_bits:.2f} | "
              f"A bits {result.mean_act_bits:.2f} | "
              f"size {result.model_size_mb():.3f} MB")
        print(f"  quantized top-1 {acc:.2f}% (drop {fp - acc:.2f}%)\n")


if __name__ == "__main__":
    main()
