"""Quickstart: the LP data type and one-call model quantization.

Run:  python examples/quickstart.py
"""

import os

import numpy as np

from repro.numerics import LogPositFormat, LPParams, tensor_log_center
from repro.parallel import ExecutorConfig
from repro.quant import LPQConfig, bn_recalibrated, lpq_quantize, quantized
from repro.data import calibration_batch, make_dataset
from repro.models import get_model
from repro.models.zoo import evaluate


def main() -> None:
    # --- 1. LP as a number format --------------------------------------
    # LP<n, es, rs, sf>: width, exponent size, regime cap, scale factor.
    weights = np.random.default_rng(0).normal(0, 0.05, 4096)
    fmt = LogPositFormat(
        LPParams(n=6, es=1, rs=4, sf=tensor_log_center(weights))
    )
    q = fmt.quantize(weights)
    rmse = np.sqrt(np.mean((weights - q) ** 2))
    print(f"LP format {fmt.name}")
    print(f"  dynamic range: {fmt.dynamic_range()}")
    print(f"  6-bit RMSE on N(0, 0.05) weights: {rmse:.5f}")

    # --- 2. Post-training quantization with LPQ -------------------------
    model = get_model("resnet18")  # trains + caches on first call
    calib = calibration_batch(64)  # unlabelled calibration images
    # the executor knob fans candidate evaluations out across worker
    # processes (backends: "serial", "thread", "process"); every backend
    # produces a bitwise-identical search trajectory, only faster
    workers = min(os.cpu_count() or 1, 4)
    executor = (
        ExecutorConfig(backend="process", workers=workers)
        if workers > 1 else None  # serial is the single-core sweet spot
    )
    result = lpq_quantize(
        model,
        calib,
        config=LPQConfig(population=8, passes=1, cycles=1, block_size=6,
                         hw_widths=(4, 8)),
        executor=executor,
    )
    backend = executor.backend if executor else "serial"
    print(f"\nLPQ searched {len(result.solution)} layers "
          f"({result.evaluations} fitness evaluations, "
          f"{backend} backend)")
    print(f"  mean weight bits: {result.mean_weight_bits:.2f}")
    print(f"  mean act bits:    {result.mean_act_bits:.2f}")
    print(f"  model size:       {result.model_size_mb():.3f} MB "
          f"(FP32: {sum(result.stats.param_counts) * 4 / 1e6:.3f} MB)")

    # --- 3. Accuracy before/after ---------------------------------------
    test = make_dataset("test", 512)
    fp = evaluate(model, test.images, test.labels)
    # deployment: re-estimate BatchNorm statistics under quantized weights
    with quantized(model, result.solution, result.act_params):
        with bn_recalibrated(model, calib):
            qacc = evaluate(model, test.images, test.labels)
    print(f"\ntop-1: FP {fp:.2f}%  ->  LP mixed-precision {qacc:.2f}% "
          f"(drop {fp - qacc:.2f}%)")

    # --- 4. The same search as a declarative spec file -------------------
    # A SearchSpec names everything by registry reference, so the whole
    # experiment round-trips through plain JSON (lpq_quantize(spec=...)
    # reproduces the search above bit for bit).
    from repro.spec import CalibSpec, SearchSpec

    spec = SearchSpec(
        model="zoo:resnet18",
        calib=CalibSpec(batch=64),
        config=LPQConfig(population=8, passes=1, cycles=1, block_size=6,
                         hw_widths=(4, 8)),
        executor=executor,
    )
    path = spec.dump("quickstart_search.json")
    print(f"\nspec written to {path} ({len(spec.to_json())} bytes of JSON)")
    print(f"replay it:  python scripts/run_search.py --spec {path}")


if __name__ == "__main__":
    main()
