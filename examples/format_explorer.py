"""Format explorer: reproduce Fig. 1(b) as ASCII art and compare the
RMSE of every format family on DNN-like weight distributions.

Run:  python examples/format_explorer.py
"""

import numpy as np

from repro.numerics import (
    FORMAT_FAMILIES,
    LogPositFormat,
    LPParams,
    AdaptivFloatFormat,
    calibrated_format,
    quantization_rmse,
    relative_decimal_accuracy,
)


def ascii_plot(mags, curves, height=12, width=65) -> str:
    xs = np.linspace(0, len(mags) - 1, width).astype(int)
    all_vals = np.concatenate([c[xs] for c in curves.values()])
    finite = all_vals[(all_vals > 0) & (all_vals < 16)]
    lo, hi = finite.min(), finite.max()
    rows = [[" "] * width for _ in range(height)]
    marks = "*o+x"
    for mi, (name, c) in enumerate(curves.items()):
        for col, xi in enumerate(xs):
            v = min(c[xi], hi)
            if v <= 0:
                continue
            r = int((v - lo) / (hi - lo + 1e-9) * (height - 1))
            rows[height - 1 - r][col] = marks[mi % len(marks)]
    legend = "   ".join(f"{marks[i % 4]} {n}" for i, n in enumerate(curves))
    body = "\n".join("".join(r) for r in rows)
    axis = f"log10|x| from {np.log10(mags[0]):.0f} to {np.log10(mags[-1]):.0f}"
    return f"{body}\n{axis}\n{legend}"


def main() -> None:
    print("=== Fig 1(b): relative decimal accuracy vs magnitude ===\n")
    mags = np.logspace(-6, 6, 200) * 1.0173
    curves = {
        "LP<8,1,4,0>": relative_decimal_accuracy(
            LogPositFormat(LPParams(8, 1, 4, 0.0)), mags
        ),
        "LP<8,1,4,sf=8>": relative_decimal_accuracy(
            LogPositFormat(LPParams(8, 1, 4, 8.0)), mags
        ),
        "AdaptivFloat-8": relative_decimal_accuracy(
            AdaptivFloatFormat(8, 4, 7), mags
        ),
    }
    print(ascii_plot(mags, curves))
    print("\nLP shows *tapered* accuracy (peak at 2^-sf); floats are flat.\n")

    print("=== Per-format RMSE on DNN-like weight distributions ===\n")
    rng = np.random.default_rng(42)
    dists = {
        "gaussian(0.04)": rng.normal(0, 0.04, 8000),
        "laplace(0.03)": rng.laplace(0, 0.03, 8000),
        "student-t(4)*0.02": rng.standard_t(4, 8000) * 0.02,
    }
    header = f"{'distribution':20s}" + "".join(
        f"{fam:>14s}" for fam in FORMAT_FAMILIES
    )
    print(header)
    for name, w in dists.items():
        cells = []
        for fam in FORMAT_FAMILIES:
            fmt = calibrated_format(fam, w, 6)
            cells.append(f"{quantization_rmse(fmt, w):14.6f}")
        print(f"{name:20s}" + "".join(cells))
    print("\n(lower is better; LP wins among the paper's Fig. 5(b) formats)")


if __name__ == "__main__":
    main()
