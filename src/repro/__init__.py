"""repro — reproduction of "Algorithm-Hardware Co-Design of
Distribution-Aware Logarithmic-Posit Encodings for Efficient DNN
Inference" (DAC 2024).

Subpackages
-----------
- :mod:`repro.numerics` — LP, posit, LNS, float/int baseline formats.
- :mod:`repro.nn` — numpy DNN framework (forward + backward).
- :mod:`repro.models` — ResNet/MobileNet/ViT-family model zoo.
- :mod:`repro.data` — synthetic calibration/evaluation dataset.
- :mod:`repro.quant` — LPQ genetic post-training quantization.
- :mod:`repro.parallel` — parallel population evaluation (executor backends).
- :mod:`repro.serve` — multi-search scheduler: many LPQ searches, one pool.
- :mod:`repro.accel` — LPA systolic-array accelerator model + baselines.
- :mod:`repro.perf` — perf counters, timers, and the search throughput bench.
- :mod:`repro.experiments` — one harness per paper table/figure.
"""

from .numerics import LogPositFormat, LPParams, lp_quantize

__version__ = "1.0.0"

__all__ = ["LogPositFormat", "LPParams", "lp_quantize", "__version__"]
