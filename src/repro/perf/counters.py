"""Perf-counter primitives: counters, wall-clock timers, cache stats.

The hot paths of the LPQ search (quantized-weight cache, fitness memo,
prefix-reuse forward passes) are instrumented through a
:class:`PerfRegistry` so every run can report where time went and how
well each cache performed.  Instrumentation must never change behaviour:
all primitives are plain accumulators with no side effects on the code
they observe.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["Counter", "Timer", "CacheStats", "PerfRegistry", "diff_snapshots"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Timer:
    """Accumulated wall-clock time over any number of timed sections."""

    __slots__ = ("name", "total", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.total += time.perf_counter() - start
            self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {"total_s": self.total, "count": self.count, "mean_s": self.mean}


class CacheStats:
    """Hit/miss accounting for one cache."""

    __slots__ = ("name", "hits", "misses", "evictions")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def hit(self, amount: int = 1) -> None:
        self.hits += amount

    def miss(self, amount: int = 1) -> None:
        self.misses += amount

    def evict(self, amount: int = 1) -> None:
        self.evictions += amount

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PerfRegistry:
    """Named collection of counters, timers, and cache stats.

    ``counter``/``timer``/``cache`` create-on-first-use, so call sites
    never need registration boilerplate.  ``snapshot`` returns a plain
    JSON-serialisable dict; ``report`` renders a human-readable summary.

    Reads (``snapshot``/``report``) may race with evaluator threads that
    create entries mid-run (the live-telemetry sampler does exactly
    that), so first-use insertion and dict iteration share one lock.
    The hot path — looking up an entry that already exists — stays a
    plain dict read.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.timers: dict[str, Timer] = {}
        self.caches: dict[str, CacheStats] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            with self._lock:
                return self.counters.setdefault(name, Counter(name))

    def timer(self, name: str) -> Timer:
        try:
            return self.timers[name]
        except KeyError:
            with self._lock:
                return self.timers.setdefault(name, Timer(name))

    def cache(self, name: str) -> CacheStats:
        try:
            return self.caches[name]
        except KeyError:
            with self._lock:
                return self.caches.setdefault(name, CacheStats(name))

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()
            self.caches.clear()

    def _items(self) -> tuple[list, list, list]:
        """Stable (name, entry) lists taken under the insertion lock."""
        with self._lock:
            return (
                sorted(self.counters.items()),
                sorted(self.timers.items()),
                sorted(self.caches.items()),
            )

    def snapshot(self) -> dict:
        counters, timers, caches = self._items()
        return {
            "counters": {k: c.snapshot() for k, c in counters},
            "timers": {k: t.snapshot() for k, t in timers},
            "caches": {k: s.snapshot() for k, s in caches},
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Accumulate another registry's snapshot into this one.

        Used by the parallel population executors: worker replicas record
        into private registries and ship snapshot *deltas* back with each
        result, so counters, timers, and cache hit-rates stay truthful
        after a fan-out (a worker's cache hit is still a cache hit).
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, t in snap.get("timers", {}).items():
            timer = self.timer(name)
            timer.total += t["total_s"]
            timer.count += t["count"]
        for name, c in snap.get("caches", {}).items():
            stats = self.cache(name)
            stats.hit(c["hits"])
            stats.miss(c["misses"])
            stats.evict(c["evictions"])

    def report(self) -> str:
        counters, timers, caches = self._items()
        lines = ["perf report", "-" * 11]
        if timers:
            lines.append("timers:")
            for name, t in timers:
                lines.append(
                    f"  {name:<40} {t.total:9.3f}s total  "
                    f"{t.count:7d} calls  {t.mean * 1e3:9.3f} ms/call"
                )
        if counters:
            lines.append("counters:")
            for name, c in counters:
                lines.append(f"  {name:<40} {c.value}")
        if caches:
            lines.append("caches:")
            for name, s in caches:
                lines.append(
                    f"  {name:<40} {s.hits:7d} hits  {s.misses:7d} misses  "
                    f"{s.hit_rate * 100:6.2f}% hit rate"
                )
        return "\n".join(lines)


def diff_snapshots(new: dict, old: dict) -> dict:
    """Per-entry difference ``new - old`` of two registry snapshots.

    Worker replicas snapshot their private registry after every task and
    return the delta since the previous task, letting the coordinating
    process merge exactly one task's worth of events per result (see
    :meth:`PerfRegistry.merge_snapshot`).
    """
    out: dict = {"counters": {}, "timers": {}, "caches": {}}
    old_counters = old.get("counters", {})
    for name, value in new.get("counters", {}).items():
        delta = value - old_counters.get(name, 0)
        if delta:
            out["counters"][name] = delta
    old_timers = old.get("timers", {})
    for name, t in new.get("timers", {}).items():
        prev = old_timers.get(name, {"total_s": 0.0, "count": 0})
        total, count = t["total_s"] - prev["total_s"], t["count"] - prev["count"]
        if count or total:
            out["timers"][name] = {
                "total_s": total,
                "count": count,
                "mean_s": total / count if count else 0.0,
            }
    old_caches = old.get("caches", {})
    for name, c in new.get("caches", {}).items():
        prev = old_caches.get(name, {"hits": 0, "misses": 0, "evictions": 0})
        hits = c["hits"] - prev["hits"]
        misses = c["misses"] - prev["misses"]
        evictions = c["evictions"] - prev["evictions"]
        if hits or misses or evictions:
            lookups = hits + misses
            out["caches"][name] = {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "hit_rate": hits / lookups if lookups else 0.0,
            }
    return out
