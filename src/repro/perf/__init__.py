"""Performance instrumentation for the incremental LPQ search engine.

A process-global :class:`PerfRegistry` collects counters, wall-clock
timers, and cache hit rates from the search hot paths
(:class:`repro.quant.FitnessEvaluator`, :class:`repro.quant.LPQEngine`,
and the prefix-reuse forward cache in :mod:`repro.nn.replay`).  Use
:func:`get_perf` to read or extend it and :func:`reset_perf` to start a
fresh measurement window; :mod:`repro.perf.bench` runs the search
throughput benchmark that tracks these numbers across PRs.
"""

from .counters import CacheStats, Counter, PerfRegistry, Timer, diff_snapshots

__all__ = [
    "CacheStats",
    "Counter",
    "PerfRegistry",
    "Timer",
    "diff_snapshots",
    "get_perf",
    "reset_perf",
    "run_search_throughput_bench",
]

#: process-global registry used by default across repro's hot paths
_GLOBAL = PerfRegistry()


def get_perf() -> PerfRegistry:
    """The process-global perf registry."""
    return _GLOBAL


def reset_perf() -> PerfRegistry:
    """Clear the global registry (start of a measurement window)."""
    _GLOBAL.reset()
    return _GLOBAL


def run_search_throughput_bench(*args, **kwargs):
    """Lazy wrapper around :func:`repro.perf.bench.run_search_throughput_bench`
    (imported on demand: the bench pulls in repro.quant, which itself uses
    this package's registry)."""
    from .bench import run_search_throughput_bench as _run

    return _run(*args, **kwargs)
