"""Search-throughput benchmark: incremental + parallel LPQ engines.

For each benchmark model (a BatchNorm CNN, a ViT analogue, and a Swin
analogue) the *same* genetic search runs several ways:

* ``reference`` — full BN-recalibration pass + full measurement pass per
  candidate (``FitnessConfig.fast`` off);
* ``fast`` — the PR-1 incremental engine (fitness memo, quantized-weight
  + activation-quant caches, fused recalibration, prefix-reuse forwards);
* one section per executor backend (``serial`` / ``thread`` /
  ``process`` / ``remote``) — the incremental engine fanned out across
  worker replicas by :class:`repro.parallel.PopulationEvaluator`; the
  remote section measures the full socket transport against a
  localhost worker fleet (or ``addresses`` of an external one).

Every variant must produce a bitwise-identical search trajectory;
``identical`` flags in the emitted record assert the correctness bar of
each path, not just its speed.  The ViT/Swin sections measure what the
prefix-reuse replay is worth on LayerNorm models (no BN, so the win is
the forward prefix), and the ``objective_evaluator`` section measures the
incremental engine on the Fig. 5(a) final-output baselines.

The CNN benchmark model has a *front-loaded* cost profile (constant
channel width, spatial halving), mirroring real CNNs where early
high-resolution layers dominate: the deeper the first changed layer, the
bigger the replayed prefix.

The ``multi_job`` section measures the :mod:`repro.serve` scheduler: two
search jobs run back-to-back (a dedicated executor pool each) and then
multiplexed onto one shared pool, whole-job wall clock both ways.  The
shared pool must win on aggregate throughput while every per-job
trajectory stays bitwise-identical to its back-to-back run.

``python scripts/run_search_throughput_bench.py`` emits the record as
``BENCH_search_throughput.json`` so the perf trajectory is tracked
across PRs.
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import time
from pathlib import Path

from .. import nn
from ..data import calibration_batch
from ..spec import registry as spec_registry
from ..spec.blob import reset_blob_store
from ..models.swin import SwinTransformer
from ..models.vit import VisionTransformer
from ..quant import (
    FitnessConfig,
    FitnessEvaluator,
    LPQConfig,
    LPQEngine,
    OutputObjectiveEvaluator,
    collect_layer_stats,
    derive_activation_params,
)
from . import get_perf, reset_perf

__all__ = [
    "BENCH_MODELS",
    "BenchSearchCNN",
    "bench_config",
    "run_search_throughput_bench",
    "write_bench_record",
]

#: default output location (repo root) for the emitted record
DEFAULT_RECORD = "BENCH_search_throughput.json"


class BenchSearchCNN(nn.Module):
    """Thirteen-layer (12 conv + head) BatchNorm CNN, front-loaded compute.

    Channel width stays constant while the spatial resolution halves at
    stage boundaries, so per-layer cost drops ~4× per stage — the first
    stage carries most of the FLOPs, as in real CNNs.  Depth matters for
    the benchmark: the more blocks the search sweeps, the larger the
    average prefix the incremental engine gets to replay.
    """

    def __init__(self, channels: int = 12, num_classes: int = 16) -> None:
        super().__init__()

        def block(cin: int) -> list[nn.Module]:
            return [
                nn.Conv2d(cin, channels, 3, padding=1, bias=False),
                nn.BatchNorm2d(channels),
                nn.ReLU(),
            ]

        self.features = nn.Sequential(
            *block(3), *block(channels), *block(channels),
            nn.MaxPool2d(2),
            *block(channels), *block(channels), *block(channels),
            nn.MaxPool2d(2),
            *block(channels), *block(channels), *block(channels),
            nn.MaxPool2d(2),
            *block(channels), *block(channels), *block(channels),
        )
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(channels, num_classes)

    def forward(self, x):
        return self.head(self.pool(self.features(x)))


def bench_resnet() -> nn.Module:
    """The front-loaded BatchNorm CNN (ResNet-style conv stack)."""
    return BenchSearchCNN()


def bench_vit() -> nn.Module:
    """Small ViT analogue: 4 pre-norm encoder blocks, 18 quantizable
    layers, LayerNorm only (exercises the BN-free replay path)."""
    return VisionTransformer(
        num_classes=16, dim=32, depth=4, num_heads=4, mlp_ratio=2.0
    )


def bench_swin() -> nn.Module:
    """Small Swin analogue: 2 stages with shifted 4×4 windows and patch
    merging, 19 quantizable layers, LayerNorm only."""
    return SwinTransformer(
        num_classes=16, dim=24, depths=(2, 2), num_heads=(2, 4), window=4
    )


#: benchmark model registry — module-level builders so EvaluatorSpec can
#: ship them to process workers by reference
BENCH_MODELS = {
    "resnet": bench_resnet,
    "vit": bench_vit,
    "swin": bench_swin,
}


def _bench_loader(name: str):
    """Spec-registry loader: seeded build, mirroring how the bench and
    the examples instantiate these models (``nn.seed(0)`` then build)."""

    def load() -> nn.Module:
        builder = BENCH_MODELS[name]
        nn.seed(0)
        model = builder()
        model.eval()
        # lets repro.spec.wire name this instance by builder reference
        model.wire_builder = (builder.__module__, builder.__qualname__)
        return model

    load.__name__ = f"load_bench_{name}"
    return load


for _name in BENCH_MODELS:
    spec_registry.register("model", f"bench:{_name}", _bench_loader(_name))


def bench_config(seed: int = 0) -> LPQConfig:
    """Fast-effort search budget used by the throughput benchmark.

    ``diversity_parents`` keeps the paper's default of five so every GA
    step submits a six-candidate batch — enough per-step parallelism for
    a two-worker fan-out to approach its 2× ceiling.
    """
    return LPQConfig(
        population=4,
        passes=2,
        cycles=1,
        block_size=3,
        diversity_parents=5,
        hw_widths=(2, 4, 8),
        seed=seed,
    )


def _prepare(model_name: str, calib: int, seed: int):
    """Freshly seeded model + calibration batch + layer stats."""
    nn.seed(seed)  # identical weights across all modes
    model = BENCH_MODELS[model_name]()
    model.eval()
    images = calibration_batch(calib, seed=seed + 1)
    stats = collect_layer_stats(model, images)
    return model, images, stats


def _measurements(engine_run, evaluator) -> dict:
    """Time one search and collect the standard per-run section."""
    start = time.perf_counter()
    solution, fitness = engine_run()
    wall = time.perf_counter() - start
    snapshot = get_perf().snapshot()
    return {
        "wall_s": wall,
        "evaluations": evaluator.evaluations,
        "computed_evaluations": evaluator.computed_evaluations,
        "evals_per_s": evaluator.evaluations / wall if wall > 0 else 0.0,
        "best_fitness": fitness,
        "mean_bits": solution.mean_weight_bits(),
        "cache_evictions": {
            name: stats["evictions"]
            for name, stats in snapshot["caches"].items()
            if stats["evictions"]
        },
        "perf": snapshot,
    }


def _transport_counters(snapshot: dict) -> dict:
    """The transport/blob view of one perf snapshot: bytes the run
    actually shipped, bytes content addressing displaced, and the
    client-side blob dedupe stats (a *hit* is an array that never went
    on the wire again)."""
    counters = snapshot.get("counters", {})
    blob = snapshot.get("caches", {}).get(
        "blob", {"hits": 0, "misses": 0, "evictions": 0}
    )
    return {
        "bytes_sent": counters.get("transport.bytes_sent", 0),
        "bytes_saved": counters.get("transport.bytes_saved", 0),
        "blob": {"hits": blob["hits"], "misses": blob["misses"]},
        # every fault-recovery action the run took (retries, requeues,
        # rejoins, fallbacks, checksum rejects, ...); all zero on a
        # healthy fleet
        "fault": {
            name[len("fault."):]: value
            for name, value in sorted(counters.items())
            if name.startswith("fault.")
        },
    }


def _run_search(
    model_name: str,
    fast: bool,
    calib: int,
    config: LPQConfig,
    seed: int,
    objective: str | None = None,
) -> dict:
    """One full search on the single-evaluator path.

    ``objective=None`` uses the paper's :class:`FitnessEvaluator`; an
    objective name runs the same search through the Fig. 5(a)
    :class:`OutputObjectiveEvaluator` instead.
    """
    model, images, stats = _prepare(model_name, calib, seed)
    reset_perf()
    if objective is None:
        evaluator = FitnessEvaluator(
            model, images, stats.param_counts, FitnessConfig(fast=fast)
        )
    else:
        evaluator = OutputObjectiveEvaluator(
            model, images, stats.param_counts, objective,
            FitnessConfig(fast=fast),
        )

    def evaluate(solution):
        acts = derive_activation_params(solution, stats)
        return evaluator(solution, acts)

    engine = LPQEngine(evaluate, stats.weight_log_centers, config)
    rec = _measurements(engine.run, evaluator)
    rec["history"] = list(engine.history.best_fitness)
    return rec


@contextlib.contextmanager
def _executor_context(
    backend: str, workers: int | None, addresses=None
):
    """The leg's :class:`~repro.parallel.ExecutorConfig`.

    For ``backend="remote"`` with no addresses given, an in-process
    localhost worker fleet (:func:`repro.serve.remote.local_worker_fleet`,
    ``workers`` servers, default 2) lives for the duration of the leg —
    so ``--backend remote`` benches the full socket transport with no
    external setup, and a real multi-host fleet is one ``--addresses``
    flag away.
    """
    from ..parallel import ExecutorConfig

    if backend != "remote":
        yield ExecutorConfig(backend=backend, workers=workers)
    elif addresses:
        yield ExecutorConfig("remote", addresses=addresses)
    else:
        from ..serve.remote import local_worker_fleet

        with local_worker_fleet(workers or 2) as fleet:
            yield ExecutorConfig("remote", addresses=fleet)


def _run_search_backend(
    model_name: str,
    backend: str,
    workers: int | None,
    calib: int,
    config: LPQConfig,
    seed: int,
    addresses=None,
    executor_config=None,
    reset_blobs: bool = True,
) -> dict:
    """One full search through a parallel population executor.

    ``executor_config`` reuses a live :class:`~repro.parallel.
    ExecutorConfig` (e.g. one pointed at a still-running worker fleet)
    instead of opening a fresh one — the warm leg of the transport
    comparison.  ``reset_blobs=False`` likewise keeps the process-global
    :class:`~repro.spec.blob.BlobStore` so content addressing answers
    from cache; the default resets it for an honest cold measurement.
    """
    from ..parallel import EvaluatorSpec, PopulationEvaluator

    model, images, stats = _prepare(model_name, calib, seed)
    reset_perf()
    if reset_blobs:
        reset_blob_store()
    spec = EvaluatorSpec(
        images=images,
        builder=BENCH_MODELS[model_name],
        state=model.state_dict(),
        config=FitnessConfig(fast=True),
        stats=stats,
    )
    with contextlib.ExitStack() as stack:
        executor = executor_config
        if executor is None:
            executor = stack.enter_context(
                _executor_context(backend, workers, addresses)
            )
        evaluator = stack.enter_context(PopulationEvaluator(spec, executor))
        engine = LPQEngine(evaluator, stats.weight_log_centers, config)
        rec = _measurements(engine.run, evaluator)
        rec["history"] = list(engine.history.best_fitness)
        rec["workers"] = evaluator.workers
    rec["transport"] = _transport_counters(rec["perf"])
    return rec


def _strip_history(*records: dict) -> None:
    for rec in records:
        rec.pop("history", None)  # bulky; equality already distilled


def _multi_job_plan(
    model_names: tuple[str, ...], config: LPQConfig
) -> list[tuple[str, str, LPQConfig]]:
    """(job name, bench model, search config) triples for the multi-job
    comparison: the first two models when available, otherwise the same
    model twice under different search seeds (still two distinct jobs)."""
    from dataclasses import replace

    if len(model_names) >= 2:
        return [(name, name, config) for name in model_names[:2]]
    name = model_names[0]
    return [
        (f"{name}-a", name, config),
        (f"{name}-b", name, replace(config, seed=config.seed + 1)),
    ]


def _multi_job_section(
    model_names: tuple[str, ...],
    backend: str,
    workers: int | None,
    calib: int,
    config: LPQConfig,
    seed: int,
    addresses=None,
) -> dict:
    """Same jobs run back-to-back (one pool each) vs multiplexed on one
    shared pool by the :class:`repro.serve.SearchScheduler`.

    Both legs time the *whole* job — pool startup included — because
    that is what running a fleet actually costs; per-job trajectories
    must stay bitwise-identical either way.
    """
    from ..parallel import EvaluatorSpec, PopulationEvaluator
    from ..serve import SearchScheduler

    jobs = _multi_job_plan(model_names, config)

    # -- back-to-back: one dedicated pool per job ------------------------
    sequential: dict = {}
    sequential_wall = 0.0
    for job_name, model_name, job_config in jobs:
        model, images, stats = _prepare(model_name, calib, seed)
        reset_perf()
        start = time.perf_counter()
        spec = EvaluatorSpec(
            images=images,
            builder=BENCH_MODELS[model_name],
            state=model.state_dict(),
            config=FitnessConfig(fast=True),
            stats=stats,
        )
        with _executor_context(
            backend, workers, addresses
        ) as executor, PopulationEvaluator(spec, executor) as evaluator:
            engine = LPQEngine(evaluator, stats.weight_log_centers, job_config)
            solution, fitness = engine.run()
            evaluations = evaluator.evaluations
        wall = time.perf_counter() - start
        sequential_wall += wall
        sequential[job_name] = {
            "wall_s": wall,
            "best_fitness": fitness,
            "mean_bits": solution.mean_weight_bits(),
            "evaluations": evaluations,
            "history": list(engine.history.best_fitness),
            "solution": solution,
        }

    # -- scheduler: all jobs multiplexed on one shared pool --------------
    prepared = [
        (job_name, model_name, job_config, _prepare(model_name, calib, seed))
        for job_name, model_name, job_config in jobs
    ]
    reset_perf()
    start = time.perf_counter()
    stack = contextlib.ExitStack()
    scheduler = SearchScheduler(
        executor=stack.enter_context(
            _executor_context(backend, workers, addresses)
        )
    )
    for job_name, model_name, job_config, (model, images, stats) in prepared:
        scheduler.submit(
            job_name,
            calib_images=images,
            builder=BENCH_MODELS[model_name],
            state=model.state_dict(),
            config=job_config,
            fitness_config=FitnessConfig(fast=True),
            stats=stats,
        )
    try:
        results = scheduler.run()
    finally:
        stack.close()  # remote leg: stop the local worker fleet
    scheduler_wall = time.perf_counter() - start

    identical = True
    section_jobs: dict = {}
    total_evals = 0
    for job_name, model_name, _ in jobs:
        seq = sequential[job_name]
        res = results[job_name]
        job_identical = (
            res.fitness == seq["best_fitness"]
            and list(res.history.best_fitness) == seq["history"]
            and res.solution == seq["solution"]
            and res.evaluations == seq["evaluations"]
        )
        identical = identical and job_identical
        total_evals += res.evaluations
        section_jobs[job_name] = {
            "model": model_name,
            "sequential_wall_s": seq["wall_s"],
            "best_fitness": res.fitness,
            "mean_bits": res.mean_weight_bits,
            "evaluations": res.evaluations,
            "identical": job_identical,
        }
    return {
        "backend": backend,
        "jobs": section_jobs,
        "sequential_wall_s": sequential_wall,
        "scheduler_wall_s": scheduler_wall,
        "speedup": (
            sequential_wall / scheduler_wall if scheduler_wall > 0 else 0.0
        ),
        "evaluations": total_evals,
        "aggregate_evals_per_s": {
            "sequential": (
                total_evals / sequential_wall if sequential_wall > 0 else 0.0
            ),
            "scheduler": (
                total_evals / scheduler_wall if scheduler_wall > 0 else 0.0
            ),
        },
        "identical": identical,
    }


def _transport_section(
    model_name: str,
    backends: tuple[str, ...],
    workers: int | None,
    calib: int,
    config: LPQConfig,
    seed: int,
    fast: dict,
    addresses=None,
) -> dict:
    """Cold vs warm-fleet transport comparison, one entry per backend.

    Each backend runs the same search twice against ONE executor context
    (for ``remote`` that means one long-lived worker fleet).  The cold
    run starts from an empty :class:`~repro.spec.blob.BlobStore`; the
    warm run keeps it, so every tensor the search needs is already
    content-addressed — published shared-memory segments are reused and
    remote workers answer ``{"blob": ...}`` refs from their own caches
    instead of being sent the bytes again.  The warm run must show
    ``blob.hits > 0``, a *lower* ``transport.bytes_sent``, and a search
    trajectory still bitwise-identical to the serial ``fast`` run.
    """
    section: dict = {}
    for backend in backends:
        runs: dict = {}
        with _executor_context(backend, workers, addresses) as executor:
            for phase, reset in (("cold", True), ("warm", False)):
                rec = _run_search_backend(
                    model_name, backend, workers, calib, config, seed,
                    executor_config=executor, reset_blobs=reset,
                )
                runs[phase] = {
                    **rec["transport"],
                    "wall_s": rec["wall_s"],
                    "identical": (
                        rec["best_fitness"] == fast["best_fitness"]
                        and rec["history"] == fast["history"]
                    ),
                }
        cold, warm = runs["cold"], runs["warm"]
        section[backend] = {
            "model": model_name,
            "cold": cold,
            "warm": warm,
            "warm_bytes_ratio": (
                warm["bytes_sent"] / cold["bytes_sent"]
                if cold["bytes_sent"]
                else 0.0
            ),
            "identical": cold["identical"] and warm["identical"],
        }
    return section


def _chaos_section(
    model_name: str,
    calib: int,
    config: LPQConfig,
    seed: int,
    plans,
) -> dict:
    """The chaos soak as a bench section: one remote search per
    committed fault plan, each against a :class:`~repro.serve.chaos.
    ChaosFleet` misbehaving on that plan's schedule.

    Every entry must report ``identical: true`` (faults cannot move a
    bit) and nonzero values for the plan's expected ``fault.*``
    counters (``counters_ok``) — a fault that silently stopped firing
    would otherwise let the recovery machinery rot unexercised.
    """
    from ..parallel import ExecutorConfig
    from ..serve.chaos import COMMITTED_PLANS, ChaosFleet

    fast = _run_search(model_name, True, calib, config, seed)
    section: dict = {}
    for name in plans:
        scenario = COMMITTED_PLANS[name]
        with ChaosFleet(scenario.plan, count=scenario.count) as addresses:
            executor = ExecutorConfig(
                "remote", addresses=addresses, retry=scenario.retry,
                on_fleet_death=scenario.on_fleet_death,
            )
            rec = _run_search_backend(
                model_name, "remote", None, calib, config, seed,
                executor_config=executor,
            )
        fault = rec["transport"]["fault"]
        expected = [c[len("fault."):] for c in scenario.expect]
        section[name] = {
            "model": model_name,
            "workers": scenario.count,
            "wall_s": rec["wall_s"],
            "fault": fault,
            "expected_counters": expected,
            "counters_ok": all(fault.get(c, 0) > 0 for c in expected),
            "identical": (
                rec["best_fitness"] == fast["best_fitness"]
                and rec["history"] == fast["history"]
            ),
        }
    return section


def _model_section(
    model_name: str,
    calib: int,
    config: LPQConfig,
    seed: int,
    backends: tuple[str, ...],
    workers: int | None,
    addresses=None,
    include_transport: bool = False,
) -> dict:
    reference = _run_search(model_name, False, calib, config, seed)
    fast = _run_search(model_name, True, calib, config, seed)
    section = {
        "reference": reference,
        "fast": fast,
        "speedup": (
            reference["wall_s"] / fast["wall_s"] if fast["wall_s"] > 0 else 0.0
        ),
        "identical": (
            reference["best_fitness"] == fast["best_fitness"]
            and reference["history"] == fast["history"]
        ),
        "backends": {},
    }
    for backend in backends:
        rec = _run_search_backend(
            model_name, backend, workers, calib, config, seed, addresses
        )
        rec["identical"] = (
            rec["best_fitness"] == fast["best_fitness"]
            and rec["history"] == fast["history"]
        )
        rec["speedup_vs_fast"] = (
            rec["evals_per_s"] / fast["evals_per_s"]
            if fast["evals_per_s"] > 0
            else 0.0
        )
        _strip_history(rec)
        section["backends"][backend] = rec
    if include_transport:
        section["transport"] = _transport_section(
            model_name, backends, workers, calib, config, seed, fast,
            addresses,
        )
    _strip_history(reference, fast)
    return section


def run_search_throughput_bench(
    calib: int = 16,
    config: LPQConfig | None = None,
    seed: int = 0,
    models: tuple[str, ...] = ("resnet", "vit", "swin"),
    backends: tuple[str, ...] = ("serial", "process"),
    workers: int | None = None,
    objective: str = "mse",
    include_objective: bool = True,
    include_multi_job: bool = True,
    include_transport: bool = True,
    addresses=None,
    chaos_plans=None,
) -> dict:
    """Benchmark record: per-model reference/fast/backend search runs.

    ``backends`` may include ``"remote"``: with no ``addresses`` the
    remote legs run against an in-process localhost worker fleet
    (``workers`` servers), measuring the full socket transport;
    ``addresses`` points them at an external fleet instead.

    ``workers=None`` lets the executor use every CPU.  The returned
    record keeps the PR-1 top-level ``reference``/``fast``/``speedup``/
    ``identical`` fields (mirroring the first model) so the perf
    trajectory across PRs stays comparable.

    ``include_multi_job`` adds the ``multi_job`` section: two search
    jobs run back-to-back on dedicated pools vs multiplexed on one
    shared pool by the :class:`repro.serve.SearchScheduler`, using the
    first non-serial backend (pool startup amortisation plus batch
    interleaving should put the shared-pool aggregate throughput above
    back-to-back; trajectories must stay bitwise-identical).

    ``include_transport`` adds the top-level ``transport`` section: per
    backend, the same search run cold (empty blob store, fresh fleet
    caches) and then warm against the *same* fleet — the warm run must
    report ``blob.hits > 0``, a reduced ``transport.bytes_sent``, and
    ``identical: true`` (see :func:`_transport_section`).

    ``chaos_plans`` (a tuple of :data:`repro.serve.chaos.
    COMMITTED_PLANS` names) adds the ``chaos`` section: the first model
    searched against a deliberately misbehaving fleet, one entry per
    fault plan, each asserting bitwise identity plus the expected
    nonzero ``fault.*`` recovery counters (see :func:`_chaos_section`).
    """
    config = config or bench_config(seed)
    record: dict = {
        "benchmark": "search_throughput",
        "cpu": {
            "count": os.cpu_count(),
            "machine": platform.machine(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "population": config.population,
            "passes": config.passes,
            "cycles": config.cycles,
            "block_size": config.block_size,
            "diversity_parents": config.diversity_parents,
            "hw_widths": list(config.hw_widths or []),
            "seed": config.seed,
        },
        "calib": calib,
        "models": {},
    }
    for model_name in models:
        record["models"][model_name] = _model_section(
            model_name, calib, config, seed, backends, workers, addresses,
            include_transport=include_transport and model_name == models[0],
        )
    if include_transport:
        record["transport"] = record["models"][models[0]].pop("transport")
    if chaos_plans:
        record["chaos"] = _chaos_section(
            models[0], calib, config, seed, tuple(chaos_plans)
        )
    # worker counts each executor *actually* used (SerialExecutor is
    # always 1 regardless of --workers); identical across models
    first_backends = record["models"][models[0]]["backends"]
    record["workers"] = {
        backend: rec["workers"] for backend, rec in first_backends.items()
    }
    if include_objective:
        obj_ref = _run_search(
            models[0], False, calib, config, seed, objective=objective
        )
        obj_fast = _run_search(
            models[0], True, calib, config, seed, objective=objective
        )
        record["objective_evaluator"] = {
            "model": models[0],
            "objective": objective,
            "reference": obj_ref,
            "fast": obj_fast,
            "speedup": (
                obj_ref["wall_s"] / obj_fast["wall_s"]
                if obj_fast["wall_s"] > 0
                else 0.0
            ),
            "identical": (
                obj_ref["best_fitness"] == obj_fast["best_fitness"]
                and obj_ref["history"] == obj_fast["history"]
            ),
        }
        _strip_history(obj_ref, obj_fast)
    if include_multi_job:
        multi_backend = next(
            (b for b in backends if b != "serial"), backends[0]
        )
        record["multi_job"] = _multi_job_section(
            models, multi_backend, workers, calib, config, seed, addresses
        )
    # legacy top-level mirror of the first model's serial comparison
    first = record["models"][models[0]]
    record["model"] = f"{models[0]} / {calib} calib images"
    record["reference"] = first["reference"]
    record["fast"] = first["fast"]
    record["speedup"] = first["speedup"]
    record["identical"] = first["identical"]
    return record


def write_bench_record(record: dict, path: str | Path | None = None) -> Path:
    """Write the record next to the repo root (BENCH_search_throughput.json)."""
    if path is None:
        path = Path(__file__).resolve().parents[3] / DEFAULT_RECORD
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
