"""Search-throughput benchmark: incremental LPQ engine vs reference path.

Runs the *same* genetic search twice — once with the reference
evaluator (full BN-recalibration pass + full fingerprint pass per
candidate) and once with the incremental engine (fitness memo,
quantized-weight cache, fused recalibration, prefix-reuse forwards) —
and reports wall-clock, throughput, speedup, and the engine's cache hit
rates.  Both runs must produce bitwise-identical search trajectories;
``identical`` in the emitted record asserts the correctness bar of the
fast path, not just its speed.

The benchmark model is a BatchNorm CNN with a *front-loaded* cost
profile (constant channel width, spatial halving), mirroring real CNNs
where early high-resolution layers dominate: the deeper the first
changed layer, the bigger the replayed prefix.

``python scripts/run_search_throughput_bench.py`` emits the record as
``BENCH_search_throughput.json`` so the perf trajectory is tracked
across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .. import nn
from ..data import calibration_batch
from ..quant import (
    FitnessConfig,
    FitnessEvaluator,
    LPQConfig,
    LPQEngine,
    collect_layer_stats,
    derive_activation_params,
)
from . import get_perf, reset_perf

__all__ = ["BenchSearchCNN", "bench_config", "run_search_throughput_bench",
           "write_bench_record"]

#: default output location (repo root) for the emitted record
DEFAULT_RECORD = "BENCH_search_throughput.json"


class BenchSearchCNN(nn.Module):
    """Thirteen-layer (12 conv + head) BatchNorm CNN, front-loaded compute.

    Channel width stays constant while the spatial resolution halves at
    stage boundaries, so per-layer cost drops ~4× per stage — the first
    stage carries most of the FLOPs, as in real CNNs.  Depth matters for
    the benchmark: the more blocks the search sweeps, the larger the
    average prefix the incremental engine gets to replay.
    """

    def __init__(self, channels: int = 12, num_classes: int = 16) -> None:
        super().__init__()

        def block(cin: int) -> list[nn.Module]:
            return [
                nn.Conv2d(cin, channels, 3, padding=1, bias=False),
                nn.BatchNorm2d(channels),
                nn.ReLU(),
            ]

        self.features = nn.Sequential(
            *block(3), *block(channels), *block(channels),
            nn.MaxPool2d(2),
            *block(channels), *block(channels), *block(channels),
            nn.MaxPool2d(2),
            *block(channels), *block(channels), *block(channels),
            nn.MaxPool2d(2),
            *block(channels), *block(channels), *block(channels),
        )
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(channels, num_classes)

    def forward(self, x):
        return self.head(self.pool(self.features(x)))


def bench_config(seed: int = 0) -> LPQConfig:
    """Fast-effort search budget used by the throughput benchmark."""
    return LPQConfig(
        population=4,
        passes=2,
        cycles=1,
        block_size=3,
        diversity_parents=2,
        hw_widths=(2, 4, 8),
        seed=seed,
    )


def _run_search(fast: bool, calib: int, config: LPQConfig, seed: int) -> dict:
    """One full search with a freshly seeded model; returns measurements."""
    nn.seed(seed)  # identical weights across the two modes
    model = BenchSearchCNN()
    model.eval()
    images = calibration_batch(calib, seed=seed + 1)
    stats = collect_layer_stats(model, images)
    reset_perf()
    evaluator = FitnessEvaluator(
        model, images, stats.param_counts, FitnessConfig(fast=fast)
    )

    def evaluate(solution):
        acts = derive_activation_params(solution, stats)
        return evaluator(solution, acts)

    engine = LPQEngine(evaluate, stats.weight_log_centers, config)
    start = time.perf_counter()
    solution, fitness = engine.run()
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "evaluations": evaluator.evaluations,
        "computed_evaluations": evaluator.computed_evaluations,
        "evals_per_s": evaluator.evaluations / wall if wall > 0 else 0.0,
        "best_fitness": fitness,
        "history": list(engine.history.best_fitness),
        "mean_bits": solution.mean_weight_bits(),
        "perf": get_perf().snapshot(),
    }


def run_search_throughput_bench(
    calib: int = 16, config: LPQConfig | None = None, seed: int = 0
) -> dict:
    """Benchmark record comparing reference vs incremental search runs."""
    config = config or bench_config(seed)
    reference = _run_search(False, calib, config, seed)
    fast = _run_search(True, calib, config, seed)
    identical = (
        reference["best_fitness"] == fast["best_fitness"]
        and reference["history"] == fast["history"]
    )
    speedup = (
        reference["wall_s"] / fast["wall_s"] if fast["wall_s"] > 0 else 0.0
    )
    for rec in (reference, fast):
        del rec["history"]  # bulky; equality already distilled
    return {
        "benchmark": "search_throughput",
        "model": f"BenchSearchCNN(channels=12) / {calib} calib images",
        "config": {
            "population": config.population,
            "passes": config.passes,
            "cycles": config.cycles,
            "block_size": config.block_size,
            "diversity_parents": config.diversity_parents,
            "hw_widths": list(config.hw_widths or []),
            "seed": config.seed,
        },
        "reference": reference,
        "fast": fast,
        "speedup": speedup,
        "identical": identical,
    }


def write_bench_record(record: dict, path: str | Path | None = None) -> Path:
    """Write the record next to the repo root (BENCH_search_throughput.json)."""
    if path is None:
        path = Path(__file__).resolve().parents[3] / DEFAULT_RECORD
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
