"""Table 3 — area / throughput / compute density of LPA vs baselines.

All designs: 8×8 weight-stationary array, 512 kB buffers, 28 nm.  The
workload is the paper's actual ResNet50 layer dimensions; per-layer
precisions come from an LPQ search on the ResNet50 analogue (whose 54
layers map one-to-one onto the full network's 54 GEMMs).
"""

from __future__ import annotations

from ..accel import ALL_ARCHS, evaluate_arch
from ..accel.workload import paper_resnet50_shapes
from .common import get_lpq_result
from .reference import TABLE3

__all__ = ["resnet50_bits", "run_table3"]


def resnet50_bits(effort: str = "fast") -> tuple[list[int], list[int]]:
    """Per-layer (weight, activation) widths from LPQ on the ResNet50
    analogue, mapped index-wise onto the full ResNet50 GEMM list."""
    _, solution, act, _ = get_lpq_result("resnet50", effort)
    shapes = paper_resnet50_shapes()
    w = [solution[i % len(solution)].n for i in range(len(shapes))]
    a = [act[i % len(act)].n for i in range(len(shapes))]
    return w, a


def run_table3(effort: str = "fast") -> dict:
    shapes = paper_resnet50_shapes()
    w_bits, a_bits = resnet50_bits(effort)
    rows = {}
    for name, arch in ALL_ARCHS().items():
        r = evaluate_arch(shapes, arch, w_bits, a_bits)
        rows[name] = {
            "compute_area_um2": r.compute_area_um2,
            "gops": r.throughput_gops,
            "tops_per_mm2": r.compute_density_tops_mm2,
            "total_area_mm2": r.total_area_mm2,
        }
    lpa_density = rows["LPA"]["tops_per_mm2"]
    return {
        "rows": rows,
        "density_gain_vs_ant": lpa_density / rows["ANT"]["tops_per_mm2"],
        "density_gain_vs_bitfusion": lpa_density
        / rows["BitFusion"]["tops_per_mm2"],
        "paper": TABLE3,
    }
