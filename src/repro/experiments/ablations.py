"""Design-choice ablations called out in docs/design.md §5 (beyond the
paper's own tables): kurtosis vs mean IR pooling, diversity-promoting
selection on/off, block-wise vs whole-vector regeneration."""

from __future__ import annotations

import numpy as np

from ..data import calibration_batch
from ..models import get_model
from ..quant import (
    FitnessConfig,
    FitnessEvaluator,
    LPQConfig,
    LPQEngine,
    collect_layer_stats,
    derive_activation_params,
    quantized,
)
from ..models.zoo import evaluate
from .common import EFFORTS, test_set

__all__ = ["run_pooling_ablation", "run_search_ablation"]


def _search_accuracy(model, calib, stats, config, fitness_config=None,
                     eval_images: int = 256) -> dict:
    evaluator = FitnessEvaluator(
        model, calib, stats.param_counts, fitness_config
    )
    engine = LPQEngine(evaluator, stats.weight_log_centers, config)
    solution, fitness = engine.run()
    from ..quant import bn_recalibrated

    act = derive_activation_params(solution, stats)
    images, labels = test_set(eval_images, seed=11)
    with quantized(model, solution, act):
        with bn_recalibrated(model, calib):
            top1 = evaluate(model, images, labels)
    return {
        "top1": top1,
        "fitness": fitness,
        "mean_bits": solution.mean_weight_bits(),
        "evaluations": evaluator.evaluations,
    }


def run_pooling_ablation(model_name: str = "resnet18", effort: str = "fast") -> dict:
    """Kurtosis-3 pooling (paper) vs mean pooling of IR fingerprints."""
    eff = EFFORTS[effort]
    model = get_model(model_name)
    calib = calibration_batch(eff.calib, seed=4)
    stats = collect_layer_stats(model, calib)
    return {
        "kurtosis": _search_accuracy(
            model, calib, stats, eff.config, FitnessConfig(pooling="kurtosis")
        ),
        "mean": _search_accuracy(
            model, calib, stats, eff.config, FitnessConfig(pooling="mean")
        ),
    }


def run_search_ablation(model_name: str = "resnet18", effort: str = "fast") -> dict:
    """Step-3 diversity and block-wise regeneration switched off."""
    eff = EFFORTS[effort]
    model = get_model(model_name)
    calib = calibration_batch(eff.calib, seed=5)
    stats = collect_layer_stats(model, calib)
    base = eff.config
    variants = {
        "full": base,
        "no_diversity": LPQConfig(
            population=base.population, passes=base.passes, cycles=base.cycles,
            block_size=base.block_size, diversity=False, seed=base.seed,
        ),
        "no_blockwise": LPQConfig(
            population=base.population, passes=base.passes, cycles=base.cycles,
            block_size=base.block_size, blockwise=False, seed=base.seed,
        ),
    }
    return {
        name: _search_accuracy(model, calib, stats, cfg)
        for name, cfg in variants.items()
    }
