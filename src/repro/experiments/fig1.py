"""Fig. 1 — (a) layer-wise weight-distribution variance, (b) LP's
distribution-aware relative accuracy vs AdaptivFloat's flat profile."""

from __future__ import annotations

import numpy as np

from ..models import get_model
from ..nn import quantizable_layers
from ..numerics import (
    AdaptivFloatFormat,
    LogPositFormat,
    LPParams,
    relative_decimal_accuracy,
)

__all__ = ["weight_distributions", "accuracy_profiles", "run_fig1"]


def weight_distributions(model_names=("resnet50", "vit_b")) -> dict:
    """Fig. 1(a): per-layer |w| percentiles showing orders-of-magnitude
    spread across layers and models."""
    out: dict[str, list[dict]] = {}
    for name in model_names:
        model = get_model(name)
        rows = []
        for lname, layer in quantizable_layers(model):
            w = np.abs(np.asarray(layer.weight.data, dtype=np.float64))
            w = w[w > 0]
            rows.append(
                {
                    "layer": lname,
                    "p1": float(np.percentile(w, 1)),
                    "p50": float(np.percentile(w, 50)),
                    "p99": float(np.percentile(w, 99)),
                    "std": float(w.std()),
                }
            )
        out[name] = rows
    return out


def accuracy_profiles(n: int = 8, points: int = 129) -> dict:
    """Fig. 1(b): relative decimal accuracy vs magnitude for LP variants
    and AdaptivFloat."""
    mags = np.logspace(-6, 6, points) * 1.0173  # dodge exact code points
    curves = {
        "LP rs=3": relative_decimal_accuracy(
            LogPositFormat(LPParams(n, 1, 3, 0.0)), mags
        ),
        "LP rs=5 (more taper)": relative_decimal_accuracy(
            LogPositFormat(LPParams(n, 1, 5, 0.0)), mags
        ),
        "LP sf=8 (shifted)": relative_decimal_accuracy(
            LogPositFormat(LPParams(n, 1, 3, 8.0)), mags
        ),
        "AdaptivFloat": relative_decimal_accuracy(
            AdaptivFloatFormat(n=n, ebits=4, exp_bias=7), mags
        ),
    }
    return {"magnitudes": mags, "curves": curves}


def run_fig1() -> dict:
    """Headline checks: (a) ≥3 orders of magnitude across layer medians;
    (b) LP tapers (peaked) while AdaptivFloat is flat."""
    dists = weight_distributions()
    spreads = {}
    for name, rows in dists.items():
        medians = np.array([r["p50"] for r in rows])
        spreads[name] = float(np.log10(medians.max() / medians.min()))
    prof = accuracy_profiles()

    def taper_range(curve: np.ndarray) -> float:
        """Accuracy spread over the central 60% of the covered region.

        The edge trim excludes boundary effects common to all formats
        (clamping at the range limits, float subnormals) so the statistic
        isolates the *shape* inside the usable range — tapered for LP,
        flat for floats (Fig. 1(b)).
        """
        idx = np.where((curve > 0) & (curve < 16))[0]
        trim = max(1, len(idx) // 5)
        core = curve[idx[trim:-trim]]
        return float(core.max() - core.min())

    return {
        "distributions": dists,
        "median_log10_spread": spreads,
        "lp_taper_range": taper_range(prof["curves"]["LP rs=5 (more taper)"]),
        "af_taper_range": taper_range(prof["curves"]["AdaptivFloat"]),
        "profiles": prof,
    }
