"""Table 4 — PE-type ablation on ResNet50: compute density, top-1
accuracy, and energy efficiency for LPA-2/4/8 (mixed), LPA-8, LPA-2,
Posit-2/4/8 and AdaptivFloat-8.

Shape targets: LPA-2 best density/efficiency but collapsed accuracy,
LPA-8 best accuracy but lowest LPA density, the mixed LPA close to the
best of both; posit and AdaptivFloat PEs far less efficient.
"""

from __future__ import annotations

import numpy as np

from ..accel import adaptivfloat_arch, evaluate_arch, lpa, posit_arch
from ..accel.workload import paper_resnet50_shapes
from ..numerics import LPParams, PositFormat, AdaptivFloatFormat
from ..nn import quantizable_layers
from ..quant import QuantSolution, collect_layer_stats, derive_activation_params
from ..data import calibration_batch
from ..models.zoo import evaluate
from .common import EFFORTS, eval_quantized, get_lpq_result, test_set
from .reference import TABLE4
from .table3 import resnet50_bits

__all__ = ["run_table4"]


def _uniform_lp_solution(model, stats, n: int) -> QuantSolution:
    es = min(2, max(n - 3, 0))
    rs = min(3, max(n - 1, 1))
    return QuantSolution(
        tuple(
            LPParams(n, es, rs, stats.weight_log_centers[i])
            for i in range(len(quantizable_layers(model)))
        )
    )


def _accuracy_with_family(model, family_ctor, images, labels, calib) -> float:
    """Top-1 with every layer weight quantized by ``family_ctor(w)``."""
    from ..quant import bn_recalibrated

    layers = quantizable_layers(model)
    try:
        for _, layer in layers:
            w = layer.weight.data
            fmt = family_ctor(w)
            layer.weight_fq = fmt.quantize(w).astype(w.dtype)
        with bn_recalibrated(model, calib):
            return evaluate(model, images, labels)
    finally:
        for _, layer in layers:
            layer.clear_quant()


def run_table4(effort: str = "fast") -> dict:
    eff = EFFORTS[effort]
    shapes = paper_resnet50_shapes()
    w_mixed, a_mixed = resnet50_bits(effort)
    model, solution, act, _ = get_lpq_result("resnet50", effort)
    images, labels = test_set(eff.eval_images)
    calib = calibration_batch(eff.calib, seed=1)
    stats = collect_layer_stats(model, calib)

    rows: dict[str, dict] = {}

    def hw(label, arch, bits):
        r = evaluate_arch(shapes, arch, bits, a_mixed)
        rows[label] = {
            "density": r.compute_density_tops_mm2,
            "gops_per_watt": r.gops_per_watt,
        }

    hw("LPA-2/4/8", lpa(), w_mixed)
    hw("LPA-8", lpa(), [8] * len(shapes))
    hw("LPA-2", lpa(), [2] * len(shapes))
    hw("Posit-2/4/8", posit_arch(), w_mixed)
    hw("AdaptivFloat-8", adaptivfloat_arch(), [8] * len(shapes))

    # accuracy column
    rows["LPA-2/4/8"]["top1"] = eval_quantized(model, solution, act, images, labels)
    sol8 = _uniform_lp_solution(model, stats, 8)
    rows["LPA-8"]["top1"] = eval_quantized(
        model, sol8, derive_activation_params(sol8, stats), images, labels
    )
    sol2 = _uniform_lp_solution(model, stats, 2)
    rows["LPA-2"]["top1"] = eval_quantized(
        model, sol2, derive_activation_params(sol2, stats), images, labels
    )
    # standard posit (no sf/rs adaptation) at the same mixed widths
    n_layers = len(quantizable_layers(model))
    posit_bits = [solution[i].n for i in range(n_layers)]

    def posit_ctor_factory():
        idx = {"i": 0}

        def ctor(w):
            n = posit_bits[idx["i"] % n_layers]
            idx["i"] += 1
            return PositFormat(n=max(n, 2), es=min(1, max(n - 3, 0)))

        return ctor

    rows["Posit-2/4/8"]["top1"] = _accuracy_with_family(
        model, posit_ctor_factory(), images, labels, calib
    )
    rows["AdaptivFloat-8"]["top1"] = _accuracy_with_family(
        model, lambda w: AdaptivFloatFormat.for_tensor(w, 8), images, labels, calib
    )

    fp_top1 = evaluate(model, images, labels)
    return {"rows": rows, "fp_top1": fp_top1, "paper": TABLE4}
