"""Fig. 6 — normalized latency and energy of all architectures on
ResNet50 and ViT-B.

Shape targets: LPA lowest latency on both models; LPA energy slightly
above ANT (native mixed-precision + conversion overheads), AdaptivFloat
far worse on both axes.
"""

from __future__ import annotations

from ..accel import ALL_ARCHS, evaluate_arch
from ..accel.workload import paper_resnet50_shapes, paper_vit_b_shapes
from .common import get_lpq_result
from .table3 import resnet50_bits

__all__ = ["run_fig6"]


def _vit_bits(effort: str) -> tuple[list[int], list[int]]:
    _, solution, act, _ = get_lpq_result("vit_b", effort)
    shapes = paper_vit_b_shapes()
    w = [solution[i % len(solution)].n for i in range(len(shapes))]
    a = [act[i % len(act)].n for i in range(len(shapes))]
    return w, a


def run_fig6(effort: str = "fast") -> dict:
    workloads = {
        "resnet50": (paper_resnet50_shapes(), *resnet50_bits(effort)),
        "vit_b": (paper_vit_b_shapes(), *_vit_bits(effort)),
    }
    out: dict[str, dict] = {}
    for wl_name, (shapes, w_bits, a_bits) in workloads.items():
        reports = {
            name: evaluate_arch(shapes, arch, w_bits, a_bits)
            for name, arch in ALL_ARCHS().items()
        }
        base = reports["LPA"]
        out[wl_name] = {
            name: dict(zip(("latency", "energy"), r.normalized_to(base)))
            for name, r in reports.items()
        }
    checks = {
        "lpa_lowest_latency": all(
            min(rows, key=lambda k: rows[k]["latency"]) == "LPA"
            for rows in out.values()
        ),
        "ant_energy_leq_lpa": all(
            rows["ANT"]["energy"] <= 1.05 for rows in out.values()
        ),
    }
    return {"normalized": out, "checks": checks}
