"""Fig. 5 — (a) convergence of the search under different objectives,
(b) per-layer RMSE of quantization error by number format.
"""

from __future__ import annotations

import numpy as np

from ..data import calibration_batch
from ..models import get_model
from ..models.zoo import evaluate
from ..quant import (
    FitnessEvaluator,
    LPQConfig,
    LPQEngine,
    OutputObjectiveEvaluator,
    collect_layer_stats,
    derive_activation_params,
    per_layer_rmse,
    quantized,
)
from .common import EFFORTS, test_set

__all__ = ["convergence_curves", "format_rmse", "run_fig5a", "run_fig5b"]

FIG5A_OBJECTIVES = ("mse", "kl", "global_contrastive", "global_local_contrastive")


def convergence_curves(
    model_name: str = "resnet18",
    objectives=FIG5A_OBJECTIVES,
    effort: str = "fast",
    probe_every: int = 2,
    eval_images: int = 256,
) -> dict:
    """Fig. 5(a): top-1 of the incumbent solution vs search iteration for
    each objective.  The engine is stepped manually so accuracy can be
    probed mid-search."""
    eff = EFFORTS[effort]
    model = get_model(model_name)
    calib = calibration_batch(eff.calib, seed=2)
    stats = collect_layer_stats(model, calib)
    images, labels = test_set(eval_images, seed=9)
    curves: dict[str, dict] = {}
    for obj in objectives:
        if obj == "global_local_contrastive":
            evaluator = FitnessEvaluator(model, calib, stats.param_counts)
        else:
            evaluator = OutputObjectiveEvaluator(
                model, calib, stats.param_counts, obj
            )
        engine = LPQEngine(evaluator, stats.weight_log_centers, eff.config)
        engine.initialize()
        accs, iters = [], []
        update = 0

        def probe():
            from ..quant import bn_recalibrated

            best = engine.population[0][0]
            act = derive_activation_params(best, stats)
            with quantized(model, best, act):
                with bn_recalibrated(model, calib):
                    accs.append(evaluate(model, images, labels))
            iters.append(update)

        probe()
        for _ in range(eff.config.passes):
            for block in engine._blocks():
                for _ in range(eff.config.cycles):
                    engine.step(block)
                    update += 1
                    if update % probe_every == 0:
                        probe()
        if iters[-1] != update:
            probe()
        curves[obj] = {
            "iterations": iters,
            "top1": accs,
            "fitness": engine.history.best_fitness,
        }
    return curves


def run_fig5a(effort: str = "fast") -> dict:
    """Shape target: the global-local contrastive objective ends at the
    highest (or tied-highest) late-stage accuracy."""
    curves = convergence_curves(effort=effort)
    final = {obj: c["top1"][-1] for obj, c in curves.items()}
    return {
        "curves": {k: {kk: vv for kk, vv in v.items() if kk != "fitness"}
                   for k, v in curves.items()},
        "final_top1": final,
        "ours_is_best": final["global_local_contrastive"]
        >= max(v for k, v in final.items() if k != "global_local_contrastive")
        - 1e-9,
    }


FIG5B_FAMILIES = ("int", "float", "adaptivfloat", "posit", "lns", "lp")


def format_rmse(
    model_name: str = "vit_b", bits: int = 6, families=FIG5B_FAMILIES
) -> dict:
    """Fig. 5(b): per-layer weight-quantization RMSE per format family."""
    model = get_model(model_name)
    per_family = {
        fam: per_layer_rmse(model, fam, bits) for fam in families
    }
    means = {fam: float(np.mean(list(v.values()))) for fam, v in per_family.items()}
    return {"per_layer": per_family, "mean_rmse": means}


def run_fig5b(model_name: str = "vit_b", bits: int = 6) -> dict:
    res = format_rmse(model_name, bits)
    means = res["mean_rmse"]
    res["best_format"] = min(means, key=means.get)
    res["lp_vs_adaptivfloat"] = means["adaptivfloat"] / means["lp"]
    return res
