"""One harness per paper table/figure + reference constants + ablations."""

from .ablations import run_pooling_ablation, run_search_ablation
from .common import EFFORTS, Effort, eval_quantized, format_table, get_lpq_result
from .fig1 import accuracy_profiles, run_fig1, weight_distributions
from .fig5 import convergence_curves, format_rmse, run_fig5a, run_fig5b
from .fig6 import run_fig6
from .reference import TABLE1, TABLE2, TABLE3, TABLE4, paper_drop
from .table1 import lpq_row, run_table1
from .table2 import run_table2
from .table3 import resnet50_bits, run_table3
from .table4 import run_table4

__all__ = [
    "EFFORTS",
    "Effort",
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "accuracy_profiles",
    "convergence_curves",
    "eval_quantized",
    "format_rmse",
    "format_table",
    "get_lpq_result",
    "lpq_row",
    "paper_drop",
    "resnet50_bits",
    "run_fig1",
    "run_fig5a",
    "run_fig5b",
    "run_fig6",
    "run_pooling_ablation",
    "run_search_ablation",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "weight_distributions",
]
