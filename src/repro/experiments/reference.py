"""Paper-reported numbers (DAC 2024, Tables 1-4) kept as constants.

These are the values the reproduction is compared against in
EXPERIMENTS.md.  Rows for competing methods (EMQ, HAWQ-V3, AFP, ANT,
BREC-Q, Evol-Q, FQ-ViT) are *published* numbers the paper itself quotes —
the paper did not re-run them, and neither do we.
"""

from __future__ import annotations

__all__ = ["TABLE1", "TABLE2", "TABLE3", "TABLE4", "paper_drop"]

#: Table 1 — CNNs on ImageNet: method -> model -> (W/A, size MB, top-1 %)
TABLE1 = {
    "baseline": {
        "resnet18": ("32/32", 44.60, 71.08),
        "resnet50": ("32/32", 97.80, 77.72),
        "mobilenetv2": ("32/32", 13.40, 72.49),
    },
    "EMQ": {
        "resnet18": ("MP/4", 5.50, 70.12),
        "resnet50": ("MP/5", 17.86, 76.70),
        "mobilenetv2": ("MP/8", 1.50, 70.75),
    },
    "HAWQ-V3": {
        "resnet18": ("4/4", 5.81, 68.45),
        "resnet50": ("MP/MP", 18.70, 75.39),
        "mobilenetv2": ("MP/MP", 1.68, 70.84),
    },
    "AFP": {
        "resnet50": ("MP4.8/MP", 13.20, 76.09),
        "mobilenetv2": ("MP4.8/MP", 1.94, 70.91),
    },
    "ANT": {
        "resnet18": ("MP/MP", 5.87, 70.30),
        "resnet50": ("MP/MP", 14.54, 76.70),
        "mobilenetv2": ("MP/MP", 1.84, 70.74),
    },
    "BREC-Q": {
        "resnet18": ("MP/8", 5.10, 68.88),
        "resnet50": ("MP/8", 13.15, 76.45),
        "mobilenetv2": ("MP/8", 1.30, 68.99),
    },
    "LPQ": {
        "resnet18": ("MP4.2/MP5.5", 4.10, 70.30),
        "resnet50": ("MP5.3/MP5.9", 14.0, 76.98),
        "mobilenetv2": ("MP4.1/MP4.98", 1.30, 71.20),
    },
}

#: Table 2 — ViTs: method -> model -> (W/A, top-1 %)
TABLE2 = {
    "baseline": {
        "vit_b": ("32/32", 84.53),
        "deit_s": ("32/32", 79.80),
        "swin_t": ("32/32", 81.20),
    },
    "Evol-Q": {
        "vit_b": ("4/8", 79.50),
        "deit_s": ("4/8", 77.06),
        "swin_t": ("4/8", 80.43),
    },
    "FQ-ViT": {
        "vit_b": ("4/8", 78.73),
        "deit_s": ("4/8", 76.93),
        "swin_t": ("4/8", 80.73),
    },
    "LPQ": {
        "vit_b": ("MP4.7/MP6.3", 80.14),
        "deit_s": ("MP3.9/MP5.5", 78.01),
        "swin_t": ("MP4.5/MP6.2", 80.98),
    },
}

#: Table 3 — arch -> (compute area µm², GOPS, TOPS/mm², total area mm²)
TABLE3 = {
    "LPA": (12078.72, 203.4, 16.84, 4.212),
    "ANT": (5102.28, 44.95, 8.81, 4.205),
    "BitFusion": (5093.75, 44.01, 8.64, 4.205),
    "AdaptivFloat": (23357.14, 63.99, 2.74, 4.223),
}

#: Table 4 — PE type -> (TOPS/mm², top-1 %, GOPS/W) on ResNet50
TABLE4 = {
    "LPA-2/4/8": (16.84, 76.98, 212.17),
    "LPA-8": (6.98, 77.70, 124.26),
    "LPA-2": (23.79, 0.0, 438.96),
    "Posit-2/4/8": (3.15, 73.65, 70.36),
    "AdaptivFloat-8": (2.74, 76.13, 71.12),
}


def paper_drop(model: str) -> float:
    """Paper's top-1 drop (FP − LPQ) for a model, in percentage points."""
    if model in TABLE1["baseline"]:
        return TABLE1["baseline"][model][2] - TABLE1["LPQ"][model][2]
    return TABLE2["baseline"][model][1] - TABLE2["LPQ"][model][1]
