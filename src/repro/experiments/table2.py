"""Table 2 — LPQ quantization accuracy on ViTs (ViT-B, DeiT-S, Swin-T).

Same harness as Table 1; the paper's block size for transformers is one
attention block, which the fast efforts approximate with their block
width over the ~4-layers-per-block encoder structure.
"""

from __future__ import annotations

import numpy as np

from .common import EFFORTS
from .reference import TABLE2
from .table1 import lpq_row

__all__ = ["run_table2"]


def run_table2(effort: str = "fast", models=("vit_b", "deit_s", "swin_t")) -> dict:
    rows = {m: lpq_row(m, effort) for m in models}
    return {
        "rows": rows,
        "mean_drop": float(np.mean([r["drop"] for r in rows.values()])),
        "paper": TABLE2,
    }
