"""Table 1 — LPQ quantization accuracy on CNNs (ResNet18/50, MobileNetV2).

For each model: FP32 baseline size/accuracy and the LPQ row (mixed-
precision average W/A bits, bit-packed model size, top-1).  The shape
target is <1% average top-1 drop at ≥7× compression.
"""

from __future__ import annotations

import numpy as np

from ..models import fp_model_size_mb, get_model
from ..models.zoo import evaluate
from .common import EFFORTS, eval_quantized, get_lpq_result, test_set
from .reference import TABLE1

__all__ = ["run_table1", "lpq_row"]


def lpq_row(model_name: str, effort: str = "fast") -> dict:
    """One LPQ result row for Table 1/2."""
    eff = EFFORTS[effort]
    model, solution, act, rec = get_lpq_result(model_name, effort)
    images, labels = test_set(eff.eval_images)
    fp_top1 = evaluate(model, images, labels)
    q_top1 = eval_quantized(model, solution, act, images, labels)
    w_bits = solution.mean_weight_bits()
    a_bits = float(np.mean([p.n for p in act]))
    return {
        "model": model_name,
        "wa": f"MP{w_bits:.1f}/MP{a_bits:.1f}",
        "w_bits": w_bits,
        "a_bits": a_bits,
        "size_mb": solution.model_size_mb(rec["param_counts"]),
        "fp_size_mb": fp_model_size_mb(model),
        "fp_top1": fp_top1,
        "top1": q_top1,
        "drop": fp_top1 - q_top1,
        "compression": fp_model_size_mb(model)
        / solution.model_size_mb(rec["param_counts"]),
    }


def run_table1(effort: str = "fast", models=("resnet18", "resnet50", "mobilenetv2")) -> dict:
    rows = {m: lpq_row(m, effort) for m in models}
    return {
        "rows": rows,
        "mean_drop": float(np.mean([r["drop"] for r in rows.values()])),
        "mean_compression": float(
            np.mean([r["compression"] for r in rows.values()])
        ),
        "paper": TABLE1,
    }
