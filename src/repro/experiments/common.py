"""Shared plumbing for the experiment harnesses.

Effort levels keep the benchmarks tractable on CPU: ``fast`` shrinks the
GA budget and calibration batch (minutes per model), ``paper`` uses the
published search parameters (K=20, P=10, C=4, 128 calibration images).
Every harness accepts an effort label so EXPERIMENTS.md can be
regenerated at full fidelity when time permits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..data import calibration_batch, make_dataset
from ..models import get_model, zoo_dir
from ..models.zoo import evaluate
from ..numerics import LPParams
from ..quant import LPQConfig, LPQResult, QuantSolution, lpq_quantize

__all__ = ["EFFORTS", "Effort", "get_lpq_result", "eval_quantized",
           "test_set", "format_table"]


@dataclass(frozen=True)
class Effort:
    """Search/evaluation budget of one experiment run."""

    name: str
    calib: int
    eval_images: int
    config: LPQConfig


EFFORTS: dict[str, Effort] = {
    "smoke": Effort(
        "smoke", calib=16, eval_images=128,
        config=LPQConfig(population=4, passes=1, cycles=1, block_size=8,
                         diversity_parents=2),
    ),
    # The fast effort cannot afford the paper's 1400+ fitness
    # evaluations, so it searches the safer (4, 8) width set — at the
    # published budget the GA has enough signal to keep 2-bit layers only
    # where they are harmless (use effort="paper" for the full space).
    "fast": Effort(
        "fast", calib=64, eval_images=512,
        config=LPQConfig(population=10, passes=2, cycles=1, block_size=6,
                         diversity_parents=3, hw_widths=(4, 8)),
    ),
    "paper": Effort(
        "paper", calib=128, eval_images=512,
        config=LPQConfig(population=20, passes=10, cycles=4, block_size=4),
    ),
}


def test_set(n: int = 512, seed: int = 0):
    ds = make_dataset("test", n, seed=seed)
    return ds.images, ds.labels


def _result_cache_path(model_name: str, effort: str) -> Path:
    return zoo_dir() / f"lpq_{model_name}_{effort}.json"


def _serialize_result(res: LPQResult) -> dict:
    return {
        "solution": [[p.n, p.es, p.rs, p.sf] for p in res.solution.layer_params],
        "act_params": [[p.n, p.es, p.rs, p.sf] for p in res.act_params],
        "fitness": res.fitness,
        "best_fitness": res.history.best_fitness,
        "mean_bits": res.history.mean_bits,
        "param_counts": res.stats.param_counts,
        "evaluations": res.evaluations,
    }


def get_lpq_result(
    model_name: str, effort: str = "fast", force: bool = False
) -> tuple[object, QuantSolution, list[LPParams], dict]:
    """LPQ-quantize a zoo model, caching the searched solution on disk.

    Returns (model, weight solution, activation params, raw record).
    """
    eff = EFFORTS[effort]
    model = get_model(model_name)
    cache = _result_cache_path(model_name, effort)
    if cache.exists() and not force:
        rec = json.loads(cache.read_text())
    else:
        from ..quant import FitnessConfig

        calib = calibration_batch(eff.calib, seed=1)
        # λ is re-calibrated to this reproduction's L_CO scale (our
        # cosine-normalised contrastive loss spans a smaller range than
        # the paper's unnormalised one); 0.15 here plays the role the
        # paper's 0.4 plays on ImageNet models. See docs/design.md §6.
        res = lpq_quantize(model, calib, config=eff.config,
                           fitness_config=FitnessConfig(lam=0.15))
        rec = _serialize_result(res)
        cache.write_text(json.dumps(rec))
    solution = QuantSolution(
        tuple(LPParams(n=int(n), es=int(es), rs=int(rs), sf=float(sf))
              for n, es, rs, sf in rec["solution"])
    )
    act = [
        LPParams(n=int(n), es=int(es), rs=int(rs), sf=float(sf))
        for n, es, rs, sf in rec["act_params"]
    ]
    return model, solution, act, rec


def eval_quantized(model, solution, act_params, images, labels,
                   bn_calib: np.ndarray | None = None) -> float:
    """Top-1 (%) with the solution applied; model restored afterwards.

    BatchNorm statistics are re-estimated on a calibration batch under
    the quantized weights (standard PTQ deployment practice; see
    docs/design.md §6) — a no-op for LayerNorm-based transformers.
    """
    from ..quant import bn_recalibrated, quantized

    if bn_calib is None:
        bn_calib = calibration_batch(64, seed=1)
    with quantized(model, solution, act_params):
        with bn_recalibrated(model, bn_calib):
            return evaluate(model, images, labels)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table for harness printouts (matches the paper rows)."""
    cols = [max(len(str(h)), *(len(str(r[i])) for r in rows)) + 2
            for i, h in enumerate(headers)]
    def fmt(row):
        return "".join(str(v).ljust(c) for v, c in zip(row, cols))
    lines = [fmt(headers), "-" * sum(cols)]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)
