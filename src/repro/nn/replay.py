"""Prefix-reuse forward passes for incremental re-evaluation.

LPQ's genetic search is block-wise by construction: each candidate
differs from the previously evaluated one in only a few consecutive
layers.  Everything a network computes *before* the first changed layer
is therefore identical across the two evaluations — recomputing it is
pure waste.

:class:`ForwardCache` exploits this.  One *record* pass stores, for every
module call, its output and its pre-order call interval ``[start, end)``
(``end`` covers the whole subtree the call executed).  On later *replay*
passes, given the first changed ("dirty") module, any call whose entire
subtree finished before the dirty module's start is served from the
cache without executing; calls whose interval straddles the cutoff
re-execute their forward so their children can decide individually, and
calls at or after the cutoff recompute (refreshing the cache, which
after the pass describes the *new* candidate end to end).

Invariants required of the caller:

* the model architecture and the input tensor are identical across
  passes (the cache full-recomputes if it sees a different input object);
* module outputs depend only on module state and inputs — true for every
  layer here except ``Dropout`` in training mode, whose RNG draw is not
  replayable (callers must keep stochastic layers out of cached passes);
* every module instance is called at most once per pass.  A violation is
  detected during the record pass and the cache permanently falls back
  to full recomputation (correct, just not fast).

Replayed (skipped) container calls do not execute their children, so
forward hooks inside a skipped subtree do not fire; hooks attached to a
module whose ``__call__`` runs — including replayed leaves — fire with
the cached output.
"""

from __future__ import annotations

import numpy as np

from . import module as _module
from .module import Module

__all__ = ["ForwardCache"]

#: sentinel distinguishing "everything dirty" from "nothing dirty" (None)
_ALL_DIRTY = object()


class _CallRecord:
    __slots__ = ("start", "end", "output")

    def __init__(self) -> None:
        self.start = 0
        self.end = 0
        self.output: np.ndarray | None = None


class ForwardCache:
    """Caches one reference forward pass of ``model`` and replays the
    unchanged prefix of subsequent passes.

    >>> cache = ForwardCache(model)
    >>> out = cache.forward(x)                  # record pass (full)
    >>> out = cache.forward(x, dirty=layer_k)   # replays up to layer_k
    >>> out = cache.forward(x, dirty=None)      # nothing changed: free
    """

    def __init__(self, model: Module) -> None:
        self.model = model
        self._records: dict[int, _CallRecord] = {}
        self._seen: set[int] = set()
        self._seq = 0
        self._mode = "record"
        self._cutoff = 0
        self._input_ref: np.ndarray | None = None
        self._primed = False
        self._unsupported = False
        #: cumulative instrumentation (read by the perf subsystem)
        self.calls_replayed = 0
        self.calls_computed = 0
        self.record_passes = 0
        self.replay_passes = 0

    @property
    def primed(self) -> bool:
        """True when the cache holds a complete, usable reference pass."""
        return self._primed and not self._unsupported

    def invalidate(self) -> None:
        """Drop the cached pass (e.g. after model weights were mutated)."""
        self._records.clear()
        self._primed = False

    def recorded_in_order(self, modules) -> bool:
        """True if every module was recorded (its ``__call__`` ran) and
        the recorded execution order matches the given sequence.

        Replay cutoffs are positions in *execution* order; callers that
        derive the cutoff from a definition-order layer list (e.g. the
        fitness engine with ``quantizable_layers``) must check the two
        orders agree after the record pass and fall back otherwise.
        """
        starts = []
        for module in modules:
            rec = self._records.get(id(module))
            if rec is None:
                return False
            starts.append(rec.start)
        return all(a < b for a, b in zip(starts, starts[1:]))

    # -- pass execution --------------------------------------------------
    def forward(self, x: np.ndarray, dirty=_ALL_DIRTY) -> np.ndarray:
        """Run ``model(x)``, replaying every call that finished before
        ``dirty``'s recorded position.

        ``dirty`` is the first module whose behaviour changed since the
        cached pass (``None`` = nothing changed: the cached final output
        is returned without running anything).  Omitting it forces a full
        record pass.
        """
        if (
            dirty is _ALL_DIRTY
            or not self.primed
            or x is not self._input_ref
            or (dirty is not None and id(dirty) not in self._records)
        ):
            return self._run_record(x)
        if dirty is None:
            cutoff = self._records[id(self.model)].end
        else:
            cutoff = self._records[id(dirty)].start
        return self._run_replay(x, cutoff)

    def _activate(self):
        # thread-local: concurrent replicas (thread-backend population
        # evaluation) must not observe each other's cached passes
        prev = _module._REPLAY.active
        _module._REPLAY.active = self
        return prev

    def _run_record(self, x: np.ndarray) -> np.ndarray:
        self._records.clear()
        self._seen.clear()
        self._seq = 0
        self._mode = "record"
        self._primed = False
        self._unsupported = False
        prev = self._activate()
        try:
            out = self.model(x)
        finally:
            _module._REPLAY.active = prev
        self._primed = True
        self._input_ref = x
        self.record_passes += 1
        return out

    def _run_replay(self, x: np.ndarray, cutoff: int) -> np.ndarray:
        self._mode = "replay"
        self._cutoff = cutoff
        prev = self._activate()
        try:
            out = self.model(x)
        except BaseException:
            # an aborted pass leaves records mixing the old candidate's
            # prefix with the new one's partial suffix — unusable as a
            # reference; force a record pass next time
            self._primed = False
            raise
        finally:
            _module._REPLAY.active = prev
        self.replay_passes += 1
        return out

    # -- called from Module.__call__ -------------------------------------
    def call(self, module: Module, x) -> np.ndarray:
        if self._mode == "record":
            key = id(module)
            if key in self._seen:
                # same instance called twice in one pass: intervals would
                # be ambiguous, so disable replay for this model
                self._unsupported = True
                return module.forward(x)
            self._seen.add(key)
            rec = _CallRecord()
            self._records[key] = rec
            rec.start = self._seq
            self._seq += 1
            out = module.forward(x)
            rec.end = self._seq
            rec.output = out
            return out
        rec = self._records.get(id(module))
        if rec is None:  # module not seen during record: compute
            return module.forward(x)
        if rec.end <= self._cutoff:
            self.calls_replayed += 1
            return rec.output
        self.calls_computed += 1
        out = module.forward(x)
        rec.output = out
        return out
