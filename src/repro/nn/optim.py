"""Optimizers: SGD with momentum and Adam (with optional weight decay)."""

from __future__ import annotations

import numpy as np

from .tensor import Parameter

__all__ = ["SGD", "Adam"]


class SGD:
    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v += g
            p.data -= self.lr * v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1c = 1 - self.beta1**self._t
        b2c = 1 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            p.data -= self.lr * (m / b1c) / (np.sqrt(v / b2c) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
