"""Loss functions (forward value + input gradient in one call)."""

from __future__ import annotations

import numpy as np

from .functional import log_softmax, softmax

__all__ = ["cross_entropy", "accuracy"]


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray, label_smoothing: float = 0.0
) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy.  Returns (mean loss, dloss/dlogits)."""
    b, c = logits.shape
    logp = log_softmax(logits, axis=-1)
    onehot = np.zeros((b, c))
    onehot[np.arange(b), labels] = 1.0
    if label_smoothing:
        onehot = onehot * (1 - label_smoothing) + label_smoothing / c
    loss = float(-(onehot * logp).sum(axis=-1).mean())
    grad = (softmax(logits, axis=-1) - onehot) / b
    return loss, grad


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    return float((logits.argmax(axis=-1) == np.asarray(labels)).mean())
