"""Minimal numpy DNN framework (forward + backward) used as the paper's
PyTorch substitute: enough to train and run CNNs and vision transformers.
"""

from .attention import MultiHeadSelfAttention, WindowAttention
from .functional import gelu, log_softmax, softmax
from .layers import (
    Add,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    GlobalAvgPool,
    LayerNorm,
    Linear,
    MaxPool2d,
    QuantizableMixin,
    ReLU,
)
from .losses import accuracy, cross_entropy
from .module import Module, Sequential
from .optim import Adam, SGD
from .recorder import quantizable_layers, record_activations
from .replay import ForwardCache
from .tensor import Parameter, get_default_dtype, init_rng, seed, set_default_dtype

__all__ = [
    "Adam",
    "Add",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "ForwardCache",
    "GELU",
    "GlobalAvgPool",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "Module",
    "MultiHeadSelfAttention",
    "Parameter",
    "QuantizableMixin",
    "ReLU",
    "SGD",
    "Sequential",
    "WindowAttention",
    "accuracy",
    "cross_entropy",
    "gelu",
    "get_default_dtype",
    "init_rng",
    "seed",
    "set_default_dtype",
    "log_softmax",
    "quantizable_layers",
    "record_activations",
    "softmax",
]
