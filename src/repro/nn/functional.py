"""Low-level numpy kernels: patch extraction, conv/pool helpers, activations.

Convolutions lower to GEMM: a strided-view patch gather is copied once
into an im2col matrix and hits BLAS.  Three paths are specialized —
dense (groups=1, plain GEMM), depthwise (broadcast multiply-reduce), and
general grouped (batched GEMM).  The backward scatter (``col2im``) loops
only over the K×K kernel offsets so every add is a big vectorized slice.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = [
    "pad2d",
    "extract_patches",
    "scatter_patches",
    "conv2d_forward",
    "conv2d_backward",
    "gelu",
    "gelu_grad",
    "softmax",
    "log_softmax",
]


def pad2d(x: np.ndarray, pad: int) -> np.ndarray:
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))


def extract_patches(x_padded: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Strided view (B, C, OH, OW, KH, KW) over a padded NCHW tensor."""
    b, c, h, w = x_padded.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sb, sc, sh, sw = x_padded.strides
    return as_strided(
        x_padded,
        shape=(b, c, oh, ow, kh, kw),
        strides=(sb, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def scatter_patches(
    patch_grads: np.ndarray,
    x_shape: tuple[int, int, int, int],
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`extract_patches`.

    ``patch_grads`` has shape (B, C, OH, OW, KH, KW); returns the gradient
    w.r.t. the *unpadded* input of shape ``x_shape``.
    """
    b, c, h, w = x_shape
    _, _, oh, ow, kh, kw = patch_grads.shape
    out = np.zeros((b, c, h + 2 * pad, w + 2 * pad), dtype=patch_grads.dtype)
    for i in range(kh):
        hi = i + stride * oh
        for j in range(kw):
            wj = j + stride * ow
            out[:, :, i:hi:stride, j:wj:stride] += patch_grads[:, :, :, :, i, j]
    if pad:
        out = out[:, :, pad:-pad, pad:-pad]
    return out


def _im2col(xp: np.ndarray, kh: int, kw: int, stride: int) -> tuple[np.ndarray, int, int]:
    """im2col matrix (B*OH*OW, C*KH*KW) plus output spatial dims."""
    patches = extract_patches(xp, kh, kw, stride)
    b, c, oh, ow = patches.shape[:4]
    cols = np.ascontiguousarray(patches.transpose(0, 2, 3, 1, 4, 5))
    return cols.reshape(b * oh * ow, c * kh * kw), oh, ow


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
    groups: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Grouped 2-D convolution.

    Returns (output, padded input) — the padded input is what backward
    needs to rebuild the im2col matrix without holding a second copy.
    ``weight`` has shape (O, C/G, KH, KW); activations are NCHW.
    """
    o, cg, kh, kw = weight.shape
    b, c = x.shape[0], x.shape[1]
    xp = pad2d(x, pad)
    if groups == 1:
        cols, oh, ow = _im2col(xp, kh, kw, stride)
        out = cols @ weight.reshape(o, -1).T  # (B*OH*OW, O)
        out = out.reshape(b, oh, ow, o).transpose(0, 3, 1, 2)
    elif cg == 1 and groups == c and o == c:
        # depthwise: broadcast multiply + reduce over the kernel window
        patches = extract_patches(xp, kh, kw, stride)
        out = np.einsum("bcijkl,ckl->bcij", patches, weight[:, 0], optimize=True)
        oh, ow = out.shape[2], out.shape[3]
    else:
        patches = extract_patches(xp, kh, kw, stride)
        oh, ow = patches.shape[2], patches.shape[3]
        og = o // groups
        # (G, B*OH*OW, Cg*KH*KW) batched against (G, Cg*KH*KW, Og)
        pg = patches.reshape(b, groups, cg, oh, ow, kh, kw)
        lhs = np.ascontiguousarray(pg.transpose(1, 0, 3, 4, 2, 5, 6))
        lhs = lhs.reshape(groups, b * oh * ow, cg * kh * kw)
        rhs = weight.reshape(groups, og, cg * kh * kw).transpose(0, 2, 1)
        out = np.matmul(lhs, rhs)  # (G, B*OH*OW, Og)
        out = out.reshape(groups, b, oh, ow, og).transpose(1, 0, 4, 2, 3)
        out = out.reshape(b, o, oh, ow)
    out = np.ascontiguousarray(out)
    if bias is not None:
        out += bias[None, :, None, None]
    return out, xp


def conv2d_backward(
    grad: np.ndarray,
    xp: np.ndarray,
    weight: np.ndarray,
    x_shape: tuple[int, int, int, int],
    stride: int,
    pad: int,
    groups: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients (dx, dweight, dbias) of a grouped conv.

    ``xp`` is the padded input returned by :func:`conv2d_forward`.
    """
    o, cg, kh, kw = weight.shape
    b, c = x_shape[0], x_shape[1]
    oh, ow = grad.shape[2], grad.shape[3]
    dbias = grad.sum(axis=(0, 2, 3))
    if groups == 1:
        cols, _, _ = _im2col(xp, kh, kw, stride)
        gm = np.ascontiguousarray(grad.transpose(0, 2, 3, 1)).reshape(-1, o)
        dweight = (gm.T @ cols).reshape(o, cg, kh, kw)
        gcols = gm @ weight.reshape(o, -1)  # (B*OH*OW, C*KH*KW)
        # scatter straight from the (B, OH, OW, C, KH, KW) layout — no
        # materialized transpose of the full 6-D gradient tensor
        g6 = gcols.reshape(b, oh, ow, c, kh, kw)
        dxp = np.zeros_like(xp)
        for i in range(kh):
            hi = i + stride * oh
            for j in range(kw):
                wj = j + stride * ow
                dxp[:, :, i:hi:stride, j:wj:stride] += g6[:, :, :, :, i, j].transpose(
                    0, 3, 1, 2
                )
        dx = dxp[:, :, pad:-pad, pad:-pad] if pad else dxp
        return dx, dweight, dbias
    if cg == 1 and groups == c and o == c:
        patches = extract_patches(xp, kh, kw, stride)
        dweight = np.einsum("bcijkl,bcij->ckl", patches, grad, optimize=True)
        dweight = dweight.reshape(o, 1, kh, kw)
        patch_grads = grad[:, :, :, :, None, None] * weight[:, 0][None, :, None, None]
    else:
        patches = extract_patches(xp, kh, kw, stride)
        og = o // groups
        pg = patches.reshape(b, groups, cg, oh, ow, kh, kw)
        lhs = np.ascontiguousarray(pg.transpose(1, 0, 3, 4, 2, 5, 6))
        lhs = lhs.reshape(groups, b * oh * ow, cg * kh * kw)
        gg = grad.reshape(b, groups, og, oh, ow)
        gmat = np.ascontiguousarray(gg.transpose(1, 0, 3, 4, 2))
        gmat = gmat.reshape(groups, b * oh * ow, og)
        dweight = np.matmul(gmat.transpose(0, 2, 1), lhs)  # (G, Og, CgKK)
        dweight = dweight.reshape(o, cg, kh, kw)
        wmat = weight.reshape(groups, og, cg * kh * kw)
        gcols = np.matmul(gmat, wmat)  # (G, B*OH*OW, CgKK)
        gcols = gcols.reshape(groups, b, oh, ow, cg, kh, kw)
        patch_grads = gcols.transpose(1, 0, 4, 2, 3, 5, 6).reshape(
            b, c, oh, ow, kh, kw
        )
    dx = scatter_patches(patch_grads, x_shape, stride, pad)
    return dx, dweight, dbias


_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU with the tanh approximation (as used by ViT/DeiT/Swin)."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    t = np.tanh(inner)
    dinner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x**2)
    return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    z = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(z)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    z = x - np.max(x, axis=axis, keepdims=True)
    return z - np.log(np.sum(np.exp(z), axis=axis, keepdims=True))
