"""Multi-head self-attention with explicit backward (ViT/DeiT/Swin).

``MultiHeadSelfAttention`` operates on (B, N, D) token tensors.
``WindowAttention`` adds Swin-style (optionally shifted) local windows on
(B, H, W, D) feature maps, including the attention mask that prevents
tokens wrapped by the cyclic shift from attending across the boundary.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .layers import Linear
from .module import Module

__all__ = ["MultiHeadSelfAttention", "WindowAttention"]


class MultiHeadSelfAttention(Module):
    """Standard MHSA: qkv projection, scaled dot-product, output proj."""

    def __init__(self, dim: int, num_heads: int) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError("dim must be divisible by num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = self.head_dim**-0.5
        self.qkv = Linear(dim, dim * 3)
        self.proj = Linear(dim, dim)
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, n, _ = x.shape
        return x.reshape(b, n, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, n, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, n, h * d)

    def forward(
        self, x: np.ndarray, attn_mask: np.ndarray | None = None
    ) -> np.ndarray:
        b, n, d = x.shape
        qkv = self.qkv(x)  # (B, N, 3D)
        q, k, v = np.split(qkv, 3, axis=-1)
        qh, kh, vh = map(self._split_heads, (q, k, v))  # (B, H, N, hd)
        logits = (qh @ kh.transpose(0, 1, 3, 2)) * self.scale  # (B, H, N, N)
        if attn_mask is not None:
            logits = logits + attn_mask
        attn = softmax(logits, axis=-1)
        ctx = attn @ vh  # (B, H, N, hd)
        out = self.proj(self._merge_heads(ctx))
        self._cache = (qh, kh, vh, attn)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        qh, kh, vh, attn = self._cache
        g_ctx_flat = self.proj.backward(grad)  # (B, N, D)
        g_ctx = self._split_heads(g_ctx_flat)  # (B, H, N, hd)
        g_attn = g_ctx @ vh.transpose(0, 1, 3, 2)  # (B, H, N, N)
        g_v = attn.transpose(0, 1, 3, 2) @ g_ctx
        # softmax backward: dL/dz = a * (da - sum(da * a))
        tmp = (g_attn * attn).sum(axis=-1, keepdims=True)
        g_logits = attn * (g_attn - tmp)
        g_q = (g_logits @ kh) * self.scale
        g_k = (g_logits.transpose(0, 1, 3, 2) @ qh) * self.scale
        g_qkv = np.concatenate(
            [self._merge_heads(g) for g in (g_q, g_k, g_v)], axis=-1
        )
        return self.qkv.backward(g_qkv)


class WindowAttention(Module):
    """Swin-style windowed MHSA over (B, H, W, D) maps with optional shift.

    The feature map is partitioned into ``window × window`` tiles, each
    attending only within itself.  With ``shift > 0`` the map is cyclically
    rolled before partitioning and an additive mask blocks attention
    between tokens that came from opposite sides of the wrap boundary.
    """

    def __init__(self, dim: int, num_heads: int, window: int, shift: int = 0) -> None:
        super().__init__()
        if not 0 <= shift < window:
            raise ValueError("shift must be in [0, window)")
        self.window = window
        self.shift = shift
        self.attn = MultiHeadSelfAttention(dim, num_heads)
        self._shape: tuple[int, ...] | None = None
        self._mask_cache: dict[tuple[int, int], np.ndarray] = {}

    def _window_mask(self, h: int, w: int) -> np.ndarray | None:
        """Additive (-inf) mask for shifted windows, one per window tile."""
        if self.shift == 0:
            return None
        key = (h, w)
        if key not in self._mask_cache:
            win, s = self.window, self.shift
            # Region bands are assigned in the *rolled* coordinate frame
            # (as in the Swin reference): the last `s` rows/cols of the
            # rolled map are tokens that wrapped around the boundary.
            img = np.zeros((h, w), dtype=np.int64)
            region = 0
            for hs in (slice(0, -win), slice(-win, -s), slice(-s, None)):
                for ws in (slice(0, -win), slice(-win, -s), slice(-s, None)):
                    img[hs, ws] = region
                    region += 1
            tiles = img.reshape(h // win, win, w // win, win)
            tiles = tiles.transpose(0, 2, 1, 3).reshape(-1, win * win)
            same = tiles[:, :, None] == tiles[:, None, :]
            mask = np.where(same, 0.0, -1e9).astype(np.float32)
            self._mask_cache[key] = mask[:, None, :, :]  # head broadcast dim
        return self._mask_cache[key]

    def _partition(self, x: np.ndarray) -> np.ndarray:
        b, h, w, d = x.shape
        win = self.window
        t = x.reshape(b, h // win, win, w // win, win, d)
        t = t.transpose(0, 1, 3, 2, 4, 5)
        return t.reshape(b * (h // win) * (w // win), win * win, d)

    def _unpartition(self, x: np.ndarray, b: int, h: int, w: int) -> np.ndarray:
        win = self.window
        d = x.shape[-1]
        t = x.reshape(b, h // win, w // win, win, win, d)
        t = t.transpose(0, 1, 3, 2, 4, 5)
        return t.reshape(b, h, w, d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, h, w, d = x.shape
        if h % self.window or w % self.window:
            raise ValueError(
                f"feature map {h}x{w} not divisible by window {self.window}"
            )
        self._shape = x.shape
        if self.shift:
            x = np.roll(x, (-self.shift, -self.shift), axis=(1, 2))
        tokens = self._partition(x)  # (B*nW, win^2, D)
        mask = self._window_mask(h, w)
        if mask is not None:
            nw = (h // self.window) * (w // self.window)
            mask = np.tile(mask, (b, 1, 1, 1))
            assert mask.shape[0] == tokens.shape[0] == b * nw
        out = self.attn.forward(tokens, attn_mask=mask)
        out = self._unpartition(out, b, h, w)
        if self.shift:
            out = np.roll(out, (self.shift, self.shift), axis=(1, 2))
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        b, h, w, d = self._shape
        if self.shift:
            grad = np.roll(grad, (-self.shift, -self.shift), axis=(1, 2))
        g_tokens = self._partition(grad)
        g = self.attn.backward(g_tokens)
        g = self._unpartition(g, b, h, w)
        if self.shift:
            g = np.roll(g, (self.shift, self.shift), axis=(1, 2))
        return g
