"""Activation capture for intermediate-representation (IR) objectives.

LPQ's fitness function compares intermediate layer outputs of the FP and
quantized models (paper Section 4.1).  ``record_activations`` attaches
forward hooks to the chosen layers and collects their outputs by name.

Recording composes with prefix-reuse forward passes
(:class:`repro.nn.replay.ForwardCache`): hooks fire for every module
whose ``__call__`` runs, including individually replayed layers — but a
layer inside a wholesale-skipped container never reaches ``__call__``,
so callers replaying a prefix should only request names at or after the
first recomputed layer (their earlier fingerprints are unchanged by
definition).
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

import numpy as np

from .layers import Conv2d, Linear
from .module import Module

__all__ = ["quantizable_layers", "record_activations"]


def quantizable_layers(model: Module) -> list[tuple[str, Module]]:
    """All (name, layer) pairs that hold a weight tensor to quantize.

    Order follows the module tree, which our models construct in forward
    execution order — the "layer l" index of the paper.
    """
    return [
        (name, mod)
        for name, mod in model.named_modules()
        if isinstance(mod, (Conv2d, Linear))
    ]


@contextlib.contextmanager
def record_activations(
    model: Module, layer_names: list[str] | None = None
) -> Iterator[dict[str, np.ndarray]]:
    """Context manager yielding a dict that fills with layer outputs.

    >>> with record_activations(model) as acts:
    ...     model(x)
    >>> acts["features.0"].shape
    """
    store: dict[str, np.ndarray] = {}
    removers = []
    wanted = None if layer_names is None else set(layer_names)
    for name, layer in quantizable_layers(model):
        if wanted is not None and name not in wanted:
            continue

        def hook(_mod: Module, out: np.ndarray, _name: str = name) -> None:
            store[_name] = out

        removers.append(layer.add_forward_hook(hook))
    try:
        yield store
    finally:
        for remove in removers:
            remove()
