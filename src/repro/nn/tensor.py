"""Parameter: a learnable tensor with an accumulated gradient.

The framework's default dtype is float32 (fast BLAS path); gradient-check
tests switch to float64 via :func:`set_default_dtype` for tight numerical
tolerances.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "set_default_dtype", "get_default_dtype", "seed", "init_rng"]

_DEFAULT_DTYPE = np.float32
_INIT_RNG = np.random.default_rng(0x5EED)


def seed(value: int) -> None:
    """Reseed the global parameter-initialization RNG (deterministic
    model construction for experiments and tests)."""
    global _INIT_RNG
    _INIT_RNG = np.random.default_rng(value)


def init_rng() -> np.random.Generator:
    """The RNG used by layers to initialize their parameters."""
    return _INIT_RNG


def set_default_dtype(dtype) -> None:
    """Set the dtype used for newly created parameters."""
    global _DEFAULT_DTYPE
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError("default dtype must be float32 or float64")
    _DEFAULT_DTYPE = dt.type


def get_default_dtype():
    return _DEFAULT_DTYPE


class Parameter:
    """A trainable array; ``grad`` accumulates across backward calls."""

    __slots__ = ("data", "grad", "requires_grad")

    def __init__(self, data: np.ndarray, requires_grad: bool = True) -> None:
        self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad = np.zeros_like(self.data)
        self.requires_grad = requires_grad

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def accumulate(self, grad: np.ndarray) -> None:
        if self.requires_grad:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.data.shape})"
