"""Core layers: Linear, Conv2d, norms, activations, pooling, reshape.

``Linear`` and ``Conv2d`` are the *quantizable* layers: they carry two
optional inference-time overrides used by :mod:`repro.quant` —

* ``weight_fq`` — a fake-quantized copy of the weight to use instead of
  the FP weight (weights stay untouched, so quantization is reversible);
* ``input_fq`` — a callable applied to the input activation tensor,
  modelling activation quantization at the layer boundary.

Both are ignored by ``backward`` (quantized models are inference-only).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Parameter, init_rng

__all__ = [
    "QuantizableMixin",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "MaxPool2d",
    "GlobalAvgPool",
    "Flatten",
    "Dropout",
    "Add",
]


class QuantizableMixin:
    """Adds inference-time weight/activation override hooks to a layer."""

    weight: Parameter

    def init_quant_hooks(self) -> None:
        self.weight_fq: np.ndarray | None = None
        self.input_fq: Callable[[np.ndarray], np.ndarray] | None = None

    def effective_weight(self) -> np.ndarray:
        return self.weight.data if self.weight_fq is None else self.weight_fq

    def maybe_quantize_input(self, x: np.ndarray) -> np.ndarray:
        return x if self.input_fq is None else self.input_fq(x)

    def clear_quant(self) -> None:
        self.weight_fq = None
        self.input_fq = None


class Linear(Module, QuantizableMixin):
    """Affine map on the last axis: ``y = x @ W.T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        bound = float(np.sqrt(2.0 / in_features))
        rng = init_rng()
        self.weight = Parameter(rng.normal(0.0, bound, (out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.init_quant_hooks()
        self._cache_x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.maybe_quantize_input(x)
        self._cache_x = x
        out = x @ self.effective_weight().T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._cache_x
        assert x is not None, "backward called before forward"
        gm = grad.reshape(-1, self.out_features)
        xm = x.reshape(-1, self.in_features)
        self.weight.accumulate(gm.T @ xm)
        if self.bias is not None:
            self.bias.accumulate(gm.sum(axis=0))
        return (grad @ self.weight.data).reshape(x.shape)


class Conv2d(Module, QuantizableMixin):
    """Grouped 2-D convolution on NCHW tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        bound = float(np.sqrt(2.0 / fan_in))
        rng = init_rng()
        self.weight = Parameter(
            rng.normal(
                0.0,
                bound,
                (out_channels, in_channels // groups, kernel_size, kernel_size),
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.init_quant_hooks()
        self._cache: tuple[np.ndarray, tuple[int, int, int, int]] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.maybe_quantize_input(x)
        out, xp = F.conv2d_forward(
            x,
            self.effective_weight(),
            None if self.bias is None else self.bias.data,
            self.stride,
            self.padding,
            self.groups,
        )
        self._cache = (xp, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        xp, x_shape = self._cache
        dx, dw, db = F.conv2d_backward(
            grad,
            xp,
            self.weight.data,
            x_shape,
            self.stride,
            self.padding,
            self.groups,
        )
        self.weight.accumulate(dw)
        if self.bias is not None:
            self.bias.accumulate(db)
        return dx


class BatchNorm2d(Module):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        from .tensor import get_default_dtype

        self.running_mean = np.zeros(channels, dtype=get_default_dtype())
        self.running_var = np.ones(channels, dtype=get_default_dtype())
        self._buffer_names = ["running_mean", "running_var"]
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (xhat, inv_std)
        return self.gamma.data[None, :, None, None] * xhat + self.beta.data[
            None, :, None, None
        ]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        xhat, inv_std = self._cache
        n = grad.shape[0] * grad.shape[2] * grad.shape[3]
        self.gamma.accumulate((grad * xhat).sum(axis=(0, 2, 3)))
        self.beta.accumulate(grad.sum(axis=(0, 2, 3)))
        g = grad * self.gamma.data[None, :, None, None]
        if not self.training:
            return g * inv_std[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * xhat).sum(axis=(0, 2, 3), keepdims=True)
        return inv_std[None, :, None, None] / n * (n * g - sum_g - xhat * sum_gx)


class LayerNorm(Module):
    """Normalization over the last axis (transformer-style)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv_std
        self._cache = (xhat, inv_std)
        return self.gamma.data * xhat + self.beta.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        xhat, inv_std = self._cache
        d = self.dim
        axes = tuple(range(grad.ndim - 1))
        self.gamma.accumulate((grad * xhat).sum(axis=axes))
        self.beta.accumulate(grad.sum(axis=axes))
        g = grad * self.gamma.data
        sum_g = g.sum(axis=-1, keepdims=True)
        sum_gx = (g * xhat).sum(axis=-1, keepdims=True)
        return inv_std / d * (d * g - sum_g - xhat * sum_gx)


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad * self._mask


class GELU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.gelu(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None
        return grad * F.gelu_grad(self._x)


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        b, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"spatial dims {h}x{w} not divisible by pool {k}")
        oh, ow = h // k, w // k
        xr = x.reshape(b, c, oh, k, ow, k)
        out = xr.max(axis=(3, 5))
        mask = xr == out[:, :, :, None, :, None]  # (b, c, oh, k, ow, k)
        # break ties: keep only the first max per window
        flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(b, c, oh, ow, k * k)
        flat = flat & (np.cumsum(flat, axis=-1) == 1)
        mask = flat.reshape(b, c, oh, ow, k, k).transpose(0, 1, 2, 4, 3, 5)
        self._cache = (mask, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        mask, x_shape = self._cache
        b, c, h, w = x_shape
        k = self.kernel_size
        g = grad[:, :, :, None, :, None] * mask
        return g.reshape(b, c, h, w)


class GlobalAvgPool(Module):
    """NCHW -> NC global average pooling."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        b, c, h, w = self._shape
        return np.broadcast_to(grad[:, :, None, None], (b, c, h, w)) / (h * w)


class Flatten(Module):
    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad.reshape(self._shape)


class Dropout(Module):
    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        if not 0 <= p < 1:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._mask: np.ndarray | None = None
        self._rng = np.random.default_rng()

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad if self._mask is None else grad * self._mask


class Add(Module):
    """Residual join: stores nothing, backward fans the gradient out.

    Used by blocks that manage their own two-branch structure; calling
    convention is ``forward((a, b))`` — kept as an explicit module so the
    module tree mirrors the network graph.
    """

    def forward(self, x):  # type: ignore[override]
        a, b = x
        return a + b

    def backward(self, grad: np.ndarray):  # type: ignore[override]
        return grad, grad
