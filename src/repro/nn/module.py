"""Module base class: parameter registry, training mode, forward hooks.

The framework uses explicit layer-wise backward (each module caches what
its backward pass needs during forward) rather than a tape-based autograd;
this keeps kernels in plain numpy and the control flow obvious.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator

import numpy as np

from .tensor import Parameter

__all__ = ["Module", "Sequential"]


class _ReplayState(threading.local):
    """Holder for the active prefix-reuse forward cache.

    Thread-local on purpose: parallel population evaluation runs one
    replica model per thread, each with its own ForwardCache — a plain
    module global would let one thread's cached pass capture another
    thread's module calls (corrupting both records).  ``active`` is
    rebound by repro.nn.replay while a cached pass is running; None
    keeps __call__ on the zero-overhead path.
    """

    active = None


_REPLAY = _ReplayState()


class Module:
    """Base class for all layers and models.

    Subclasses implement ``forward(x)`` and ``backward(grad)``; both must
    be matched one-to-one (backward consumes the cache the immediately
    preceding forward stored).  Parameters and sub-modules registered as
    attributes are discovered automatically.
    """

    def __init__(self) -> None:
        self.training = True
        #: callables invoked as hook(module, output) after forward
        self._forward_hooks: list[Callable[["Module", np.ndarray], None]] = []
        #: attribute names of non-trainable state saved in state_dict
        #: (e.g. BatchNorm running statistics)
        self._buffer_names: list[str] = []

    # -- registry -----------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, attr in vars(self).items():
            if isinstance(attr, Module):
                sub = f"{prefix}.{name}" if prefix else name
                yield from attr.named_modules(sub)
            elif isinstance(attr, (list, tuple)):
                for i, item in enumerate(attr):
                    if isinstance(item, Module):
                        sub = f"{prefix}.{name}.{i}" if prefix else f"{name}.{i}"
                        yield from item.named_modules(sub)

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        for mod_name, mod in self.named_modules():
            for name, attr in vars(mod).items():
                if isinstance(attr, Parameter):
                    yield (f"{mod_name}.{name}" if mod_name else name), attr

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- training mode ------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for _, m in self.named_modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state dict ---------------------------------------------------------
    def named_buffers(self) -> Iterator[tuple[str, np.ndarray]]:
        for mod_name, mod in self.named_modules():
            for name in mod._buffer_names:
                full = f"{mod_name}.{name}" if mod_name else name
                yield full, getattr(mod, name)

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own: dict[str, np.ndarray] = {
            name: p.data for name, p in self.named_parameters()
        }
        own.update(dict(self.named_buffers()))
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)[:5]} "
                f"extra={sorted(extra)[:5]}"
            )
        for name, arr in own.items():
            if arr.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{arr.shape} vs {state[name].shape}"
                )
            arr[...] = state[name]

    # -- forward/backward ---------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        replay = _REPLAY.active
        if replay is None:
            out = self.forward(x)
        else:
            # prefix-reuse mode: the cache decides whether this call's
            # subtree is unchanged (replay its recorded output) or must
            # recompute; hooks fire either way so activation recording
            # sees every module whose __call__ ran
            out = replay.call(self, x)
        for hook in self._forward_hooks:
            hook(self, out)
        return out

    def add_forward_hook(
        self, hook: Callable[["Module", np.ndarray], None]
    ) -> Callable[[], None]:
        """Attach a post-forward hook; returns a detach callable."""
        self._forward_hooks.append(hook)

        def remove() -> None:
            if hook in self._forward_hooks:
                self._forward_hooks.remove(hook)

        return remove


class Sequential(Module):
    """Chain of modules; backward runs them in reverse."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]
