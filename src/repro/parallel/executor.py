"""Executor backends for parallel population evaluation.

Three interchangeable backends score batches of candidates:

* ``serial`` — one replica in the calling thread.  Zero overhead, and
  because the replica records into the ambient perf registry and its
  caches live across batches, a serial run is bit-for-bit *and*
  counter-for-counter the PR-1 incremental engine.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor` over N
  replicas.  numpy releases the GIL inside BLAS kernels, so medium-size
  models see real concurrency without any pickling.
* ``process`` — a :class:`multiprocessing.pool.Pool` whose workers each
  build a replica from the pickled :class:`EvaluatorSpec` at startup.
  True parallelism; candidates and scalar results are the only per-task
  traffic.
* ``remote`` — TCP workers (:mod:`repro.serve.remote`) addressed by
  ``ExecutorConfig(backend="remote", addresses=["host:port", ...])``.
  Jobs cross the socket as plain-JSON wire payloads
  (:mod:`repro.spec.wire`), so the workers may live on other hosts;
  start them with ``scripts/run_worker.py``.

All backends return results in submission order.  Worker replicas record
into private :class:`~repro.perf.PerfRegistry` instances and ship one
snapshot *delta* per result; the coordinating process merges the deltas
into the ambient registry, so counters and cache hit-rates stay truthful
after a fan-out.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..perf import PerfRegistry, diff_snapshots
from ..spec import registry as spec_registry
from .evaluator import EvaluatorReplica, EvaluatorSpec

__all__ = [
    "BACKENDS",
    "ExecutorConfig",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "parse_address",
    "parse_address_list",
]

#: the built-in backends; the executor registry
#: (``repro.spec.registry``) is the source of truth for validation and
#: dispatch, so registered extension backends are accepted everywhere
#: an ``ExecutorConfig`` is
BACKENDS = ("serial", "thread", "process", "remote")


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; raises ``ValueError`` with
    the offending string on anything else."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address {address!r} must look like 'host:port'"
        )
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(
            f"worker address {address!r} has a non-integer port"
        ) from None
    if not 0 < port_num < 65536:
        raise ValueError(f"worker address {address!r} port out of range")
    return host, port_num


def parse_address_list(text: str) -> tuple[str, ...]:
    """Comma-separated ``host:port`` list → validated address tuple
    (the shape every CLI ``--addresses`` flag takes)."""
    addresses = tuple(a.strip() for a in text.split(",") if a.strip())
    if not addresses:
        raise ValueError(f"no worker addresses in {text!r}")
    for address in addresses:
        parse_address(address)
    return addresses


@dataclass(frozen=True)
class ExecutorConfig:
    """Backend selection for population evaluation.

    ``workers=None`` uses every available CPU (min 1).  ``start_method``
    overrides the multiprocessing start method for the process backend
    (``None`` = platform default; "spawn" exercises the fully-pickled
    path that a distributed deployment would use).

    The ``remote`` backend instead takes ``addresses`` — ``host:port``
    strings of running ``scripts/run_worker.py`` workers — plus an
    optional shared-secret ``token`` the workers were started with;
    ``workers`` is implied by the fleet size.  Two further remote-only
    knobs shape failure handling: ``retry`` (a
    :class:`repro.serve.resilience.RetryPolicy` or its dict form —
    requeue budgets, deterministic backoff, deadlines, heartbeat
    overrides) and ``on_fleet_death`` (``"fail"`` keeps the fail-fast
    default; ``"local"`` degrades gracefully by evaluating remaining
    chunks on an in-process fallback evaluator, bitwise-identically).

    The same config drives single-search executors
    (:func:`repro.quant.lpq_quantize`'s ``executor`` knob) and the
    shared multi-search pools of :class:`repro.serve.SearchScheduler`;
    whatever the backend and worker count, search trajectories are
    bitwise-identical — the knob only changes wall-clock.

    >>> from repro.parallel import ExecutorConfig
    >>> ExecutorConfig().backend  # serial: in-process, zero overhead
    'serial'
    >>> ExecutorConfig("thread", workers=2).resolved_workers()
    2
    >>> ExecutorConfig().resolved_workers() >= 1  # None = all CPUs
    True
    >>> remote = ExecutorConfig("remote",
    ...                         addresses=["127.0.0.1:7301", "127.0.0.1:7302"])
    >>> remote.addresses, remote.resolved_workers()
    (('127.0.0.1:7301', '127.0.0.1:7302'), 2)
    >>> ExecutorConfig("remote")
    Traceback (most recent call last):
        ...
    ValueError: remote backend requires addresses=['host:port', ...] of running workers (scripts/run_worker.py)
    >>> ExecutorConfig("gpu")
    Traceback (most recent call last):
        ...
    ValueError: unknown backend 'gpu'; choose from ('serial', 'thread', 'process', 'remote')
    >>> cfg = ExecutorConfig("remote", addresses=["127.0.0.1:7301"],
    ...                      retry={"max_attempts": 2}, on_fleet_death="local")
    >>> cfg.retry.max_attempts, cfg.on_fleet_death
    (2, 'local')
    >>> ExecutorConfig.from_dict(cfg.to_dict()) == cfg  # spec-JSON safe
    True
    """

    backend: str = "serial"
    workers: int | None = None
    start_method: str | None = None
    addresses: tuple[str, ...] | None = None
    token: str | None = None
    retry: object | None = None
    on_fleet_death: str = "fail"

    def __post_init__(self) -> None:
        backends = spec_registry.registry("executor")
        if self.backend not in backends:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from "
                f"{backends.names()}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be positive")
        if self.addresses is not None:
            # normalize to a tuple so configs built with a list still
            # hash/compare/serialize like their from_dict twins
            object.__setattr__(self, "addresses", tuple(self.addresses))
            for address in self.addresses:
                parse_address(address)
        if self.retry is not None:
            # deferred import: repro.serve builds on this module
            from ..serve.resilience import RetryPolicy

            if isinstance(self.retry, dict):
                # dict form (spec JSON) normalizes to the policy object
                object.__setattr__(
                    self, "retry", RetryPolicy.from_dict(self.retry)
                )
            elif not isinstance(self.retry, RetryPolicy):
                raise ValueError(
                    f"retry must be a RetryPolicy or its dict form, got "
                    f"{type(self.retry).__name__}"
                )
        if self.on_fleet_death not in ("fail", "local"):
            raise ValueError(
                f"on_fleet_death must be 'fail' or 'local', got "
                f"{self.on_fleet_death!r}"
            )
        if self.backend == "remote":
            if not self.addresses:
                raise ValueError(
                    "remote backend requires addresses=['host:port', ...] "
                    "of running workers (scripts/run_worker.py)"
                )
        elif self.addresses is not None or self.token is not None:
            raise ValueError(
                f"addresses/token only apply to the remote backend, not "
                f"{self.backend!r}"
            )
        elif self.retry is not None or self.on_fleet_death != "fail":
            raise ValueError(
                f"retry/on_fleet_death only apply to the remote backend, "
                f"not {self.backend!r}"
            )

    def resolved_workers(self) -> int:
        if self.backend == "remote":
            return len(self.addresses)
        if self.workers is not None:
            return self.workers
        return max(os.cpu_count() or 1, 1)

    def to_dict(self) -> dict:
        """Plain-JSON dict form (used by :class:`repro.spec.SearchSpec`)."""
        from ..spec.serde import config_to_dict

        out = config_to_dict(self)
        if self.retry is not None:
            # nested policy dataclass → its own dict form (the one
            # nested config the flat serde helpers don't descend into)
            out["retry"] = self.retry.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutorConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        from ..spec.serde import config_from_dict

        return config_from_dict(cls, data)


class SerialExecutor:
    """In-process evaluation; the replica records into the ambient
    registry directly, so no snapshot merging is needed."""

    def __init__(self, spec: EvaluatorSpec, perf) -> None:
        # the replica may use a passed-in model instance as-is: nothing
        # else evaluates concurrently in this backend
        self.replica = spec.build(perf=perf, copy_model=False)
        self.workers = 1

    def evaluate_batch(self, solutions) -> list[float]:
        return self.replica.evaluate_many(solutions)

    def close(self) -> None:
        pass


class ThreadExecutor:
    """Thread-pool evaluation over per-worker replicas.

    Replicas are handed out through a queue so each is used by exactly
    one task at a time; each owns a private registry whose per-task
    deltas are merged by the submitting thread, keeping merges ordered
    and race-free.
    """

    def __init__(self, spec: EvaluatorSpec, workers: int, perf) -> None:
        self.workers = workers
        self.perf = perf
        self._replicas: queue.SimpleQueue = queue.SimpleQueue()
        for _ in range(workers):
            registry = PerfRegistry()
            replica = spec.build(perf=registry, copy_model=True)
            self._replicas.put((replica, registry, [registry.snapshot()]))
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-eval"
        )

    def _evaluate_one(self, solution):
        slot = self._replicas.get()
        replica, registry, last_snap = slot
        try:
            fitness = replica.evaluate_many([solution])[0]
            snap = registry.snapshot()
            delta = diff_snapshots(snap, last_snap[0])
            last_snap[0] = snap
            return fitness, delta
        finally:
            self._replicas.put(slot)

    def evaluate_batch(self, solutions) -> list[float]:
        futures = [
            self._pool.submit(self._evaluate_one, sol) for sol in solutions
        ]
        results = []
        for future in futures:  # submission order == result order
            fitness, delta = future.result()
            self.perf.merge_snapshot(delta)
            results.append(fitness)
        return results

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# -- process backend ----------------------------------------------------
# Worker state lives in module globals: multiprocessing initializes each
# worker once with the pickled spec (or its wire payload + blob transport
# table), then tasks only carry candidates.
_WORKER_REPLICA: EvaluatorReplica | None = None
_WORKER_PERF: PerfRegistry | None = None
_WORKER_SNAP: dict | None = None
_WORKER_INIT_ERROR: str | None = None


def _init_worker(spec: EvaluatorSpec | None, wire: dict | None = None,
                 blob_table: dict | None = None) -> None:
    global _WORKER_REPLICA, _WORKER_PERF, _WORKER_SNAP, _WORKER_INIT_ERROR
    # the initializer must never raise: multiprocessing.Pool responds to
    # an initializer exception by silently respawning the worker forever,
    # turning a bad spec into a hang.  Swallow the error here and let the
    # first task report it instead.
    try:
        _WORKER_PERF = PerfRegistry()
        if wire is not None:
            from ..spec.blob import attach_transport_table
            from ..spec.wire import decode_job

            blobs = (
                attach_transport_table(blob_table) if blob_table else None
            )
            spec = decode_job(wire, blobs=blobs)
        # a fresh process owns its (inherited or unpickled) spec outright
        # — no copy needed even when the spec carries a model instance
        _WORKER_REPLICA = spec.build(perf=_WORKER_PERF, copy_model=False)
        _WORKER_SNAP = _WORKER_PERF.snapshot()
        _WORKER_INIT_ERROR = None
    except BaseException:  # lint: disable=broad-except -- worker-process boundary: init failure is parked and reported via the first result
        import traceback

        _WORKER_REPLICA = None
        _WORKER_INIT_ERROR = traceback.format_exc()


def _evaluate_in_worker(solution):
    global _WORKER_SNAP
    if _WORKER_REPLICA is None:
        raise RuntimeError(
            "evaluator replica failed to initialize in worker:\n"
            f"{_WORKER_INIT_ERROR or 'worker not initialized'}"
        )
    fitness = _WORKER_REPLICA.evaluate_many([solution])[0]
    snap = _WORKER_PERF.snapshot()
    delta = diff_snapshots(snap, _WORKER_SNAP)
    _WORKER_SNAP = snap
    return fitness, delta


class ProcessExecutor:
    """Process-pool evaluation; workers rebuild replicas from the spec.

    Wire-encodable specs ship as a content-addressed wire payload: the
    calibration batch and state dict go into the process-global
    :class:`~repro.spec.blob.BlobStore` and cross the pool boundary as
    shared-memory segments (zero-copy) or, where shm is unavailable, as
    a once-per-worker inline blob table.  Specs the wire codec rejects
    (unimportable models, probe mismatches) fall back to the original
    pickled-spec path, byte-identical to before.
    """

    def __init__(
        self,
        spec: EvaluatorSpec,
        workers: int,
        perf,
        start_method: str | None = None,
    ) -> None:
        self.workers = workers
        self.perf = perf
        initargs = (spec,)
        self._blob_table = None
        try:
            from ..spec.blob import (
                account_transport,
                blob_transport_table,
                get_blob_store,
            )
            from ..spec.wire import encode_job

            store = get_blob_store()
            wire = encode_job(spec, blobs=store)
            self._blob_table = blob_transport_table(store)
            initargs = (None, wire, self._blob_table)
            account_transport(perf, wire, self._blob_table, workers)
        except ValueError:
            pass  # not wire-encodable: pickle the spec as before
        ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._pool = ctx.Pool(
            processes=workers, initializer=_init_worker, initargs=initargs
        )

    def evaluate_batch(self, solutions) -> list[float]:
        results = []
        # chunksize 1: population slices are small (a handful of diversity
        # children), so per-candidate dispatch keeps all workers busy
        for fitness, delta in self._pool.map(
            _evaluate_in_worker, solutions, chunksize=1
        ):
            self.perf.merge_snapshot(delta)
            results.append(fitness)
        return results

    def close(self) -> None:
        self._pool.close()
        self._pool.join()


def make_executor(spec: EvaluatorSpec, config: ExecutorConfig, perf):
    """Build the executor selected by ``config``.

    Backends dispatch through the executor registry
    (``repro.spec.registry``), so a registered extension backend — a
    factory ``(spec, config, perf) -> executor`` — slots in everywhere
    the built-in three do.
    """
    factory = spec_registry.resolve("executor", config.backend)
    return factory(spec, config, perf)


# -- the built-in backends, in canonical order ---------------------------
spec_registry.register(
    "executor", "serial", lambda spec, config, perf: SerialExecutor(spec, perf)
)
spec_registry.register(
    "executor",
    "thread",
    lambda spec, config, perf: ThreadExecutor(
        spec, config.resolved_workers(), perf
    ),
)
spec_registry.register(
    "executor",
    "process",
    lambda spec, config, perf: ProcessExecutor(
        spec,
        config.resolved_workers(),
        perf,
        start_method=config.start_method,
    ),
)


def _make_remote_executor(spec, config, perf):
    # deferred import: the transport layer builds on repro.serve, which
    # builds on this module
    from ..serve.remote import RemoteExecutor  # lint: disable=registry-bypass -- this IS the registered 'remote' executor factory

    return RemoteExecutor(spec, config, perf)


spec_registry.register("executor", "remote", _make_remote_executor)
