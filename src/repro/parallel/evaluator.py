"""Evaluator replicas and the batched population evaluator.

The parallel population engine never shares a live evaluator between
workers — the incremental engine mutates its model in place (installed
fake-quantization, BN statistics windows), so every worker owns a full
*replica*: its own model copy, calibration state, and worker-local
caches (:class:`~repro.quant.quantizer.WeightQuantCache`,
:class:`~repro.quant.quantizer.ActQuantCache`,
:class:`repro.nn.ForwardCache`).

:class:`EvaluatorSpec` is the picklable recipe a replica is built from:
a model source (a picklable builder callable, an optional state dict,
or a model instance — models at rest are plain numpy containers and
pickle fine), the calibration batch, layer statistics, and the fitness
configuration.  Workers rebuild byte-identical evaluators from it, so
every backend produces bitwise-identical fitness values.

:class:`PopulationEvaluator` is what the GA engine talks to: a callable
with ``evaluate_many`` that dedupes candidates against a population-level
memo and fans the rest out through an executor backend, returning results
in submission order.
"""

from __future__ import annotations

import copy
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..nn import Module
from ..perf import get_perf
from ..quant import (  # lint: disable=registry-bypass -- EvaluatorSpec.build is the registered construction path; the objective registry carries labels, not classes
    FitnessConfig,
    FitnessEvaluator,
    LayerStats,
    OutputObjectiveEvaluator,
    QuantSolution,
    collect_layer_stats,
    derive_activation_params,
)

__all__ = ["EvaluatorSpec", "EvaluatorReplica", "PopulationEvaluator"]


@dataclass
class EvaluatorSpec:
    """Picklable recipe for building worker-local evaluator replicas.

    Exactly one model source is required: ``builder`` (a picklable
    callable — a module-level function or class — optionally combined
    with ``state`` to load trained weights) or ``model`` (an instance;
    pickled/copied wholesale for workers).

    ``objective`` selects the evaluator: ``None`` builds the paper's
    :class:`FitnessEvaluator`, a Fig. 5(a) objective name builds an
    :class:`OutputObjectiveEvaluator`.  ``act_mode`` is the activation
    scale-factor derivation mode (``None`` disables activation
    quantization entirely).  ``stats`` avoids re-running the calibration
    pass in every worker; when omitted each replica recollects it
    (deterministic, just slower).
    """

    images: np.ndarray
    builder: Callable[[], Module] | None = None
    state: dict[str, np.ndarray] | None = None
    model: Module | None = None
    config: FitnessConfig | None = field(default_factory=FitnessConfig)
    objective: str | None = None
    act_mode: str | None = "calibrated"
    stats: LayerStats | None = None

    def __post_init__(self) -> None:
        if (self.builder is None) == (self.model is None):
            raise ValueError(
                "exactly one of builder or model must be provided"
            )

    def build(self, perf=None, copy_model: bool = False) -> "EvaluatorReplica":
        """Construct a replica; ``copy_model=True`` deep-copies a model
        instance so the replica can mutate it independently (builders
        always produce a fresh model)."""
        if self.builder is not None:
            model = self.builder()
        else:
            model = copy.deepcopy(self.model) if copy_model else self.model
        if self.state is not None:
            model.load_state_dict(self.state)
        model.eval()
        stats = self.stats
        if stats is None:
            stats = collect_layer_stats(model, self.images)
        config = self.config or FitnessConfig()
        if self.objective is None:
            evaluator = FitnessEvaluator(
                model, self.images, stats.param_counts, config, perf=perf
            )
        else:
            evaluator = OutputObjectiveEvaluator(
                model, self.images, stats.param_counts, self.objective,
                config, perf=perf,
            )
        return EvaluatorReplica(evaluator, stats, self.act_mode)


class EvaluatorReplica:
    """One worker's evaluator: model copy + calibration state + caches.

    Candidates are scored in their deployed configuration — activation
    parameters are derived deterministically from the weight parameters
    (Section 4), so a solution alone fully specifies the evaluation and
    replicas need no shared state.
    """

    def __init__(
        self, evaluator, stats: LayerStats, act_mode: str | None
    ) -> None:
        self.evaluator = evaluator
        self.stats = stats
        self.act_mode = act_mode

    def _act_params(self, solution: QuantSolution):
        if self.act_mode is None:
            return None
        return derive_activation_params(
            solution, self.stats, mode=self.act_mode
        )

    def evaluate(self, solution: QuantSolution) -> float:
        return self.evaluator(solution, self._act_params(solution))

    def evaluate_many(self, solutions) -> list[float]:
        """Score a batch through the evaluator's vectorized batch path
        (stacked weight-cache prefill + the usual incremental per-
        candidate pass — bitwise identical to :meth:`evaluate` calls)."""
        solutions = list(solutions)
        acts_list = [self._act_params(sol) for sol in solutions]
        return self.evaluator.evaluate_many(solutions, acts_list)


class PopulationEvaluator:
    """Batched candidate evaluation across an executor backend.

    The GA engine submits whole population slices through
    ``evaluate_many``; duplicates (common under crossover) are deduped
    against a population-level memo before any work is fanned out, and
    results come back in submission order regardless of which worker
    finished first.  ``__call__`` keeps the single-candidate evaluator
    interface working.

    Use as a context manager (or call :meth:`close`) to shut worker
    pools down deterministically.
    """

    def __init__(self, spec: EvaluatorSpec, executor=None, perf=None) -> None:
        from .executor import ExecutorConfig, make_executor

        self.spec = spec
        self.executor_config = executor or ExecutorConfig()
        self.perf = perf if perf is not None else get_perf()
        self._executor = make_executor(spec, self.executor_config, self.perf)
        self._memo: dict[QuantSolution, float] = {}
        #: evaluations requested (memo hits included)
        self.evaluations = 0
        #: evaluations submitted to a worker (memo misses)
        self.computed_evaluations = 0

    @property
    def backend(self) -> str:
        return self.executor_config.backend

    @property
    def workers(self) -> int:
        return self._executor.workers

    def __call__(self, solution: QuantSolution, act_params=None) -> float:
        if act_params is not None:
            raise ValueError(
                "PopulationEvaluator derives activation parameters from its "
                "spec; pass act_mode there instead of per-call act_params"
            )
        return self.evaluate_many([solution])[0]

    def evaluate_many(self, solutions) -> list[float]:
        memo_stats = self.perf.cache("population.memo")
        unique: list[QuantSolution] = []
        seen: set[QuantSolution] = set()
        for sol in solutions:
            if sol in self._memo or sol in seen:
                memo_stats.hit()
            else:
                memo_stats.miss()
                seen.add(sol)
                unique.append(sol)
        if unique:
            with self.perf.timer("population.evaluate_batch").time():
                fits = self._executor.evaluate_batch(unique)
            for sol, fit in zip(unique, fits):
                self._memo[sol] = fit
            self.computed_evaluations += len(unique)
        self.evaluations += len(solutions)
        return [self._memo[sol] for sol in solutions]

    def close(self) -> None:
        self._executor.close()

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
