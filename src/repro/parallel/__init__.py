"""Parallel population evaluation for the LPQ genetic search.

The GA's Step-3 diversity children are embarrassingly parallel: each
candidate evaluation is independent given a frozen model and calibration
batch.  This package fans population slices out across worker replicas:

* :class:`EvaluatorSpec` — picklable recipe (model source, calibration
  state, config) that every worker builds its private evaluator from;
* :class:`PopulationEvaluator` — the batched evaluator the GA engine
  talks to: memo-dedupes candidates, fans the rest out, returns results
  in submission order;
* :class:`ExecutorConfig` + ``serial`` / ``thread`` / ``process`` /
  ``remote`` executors — interchangeable backends with deterministic
  ordering and perf-snapshot merging (worker cache hit-rates stay
  truthful).  The remote backend fans out to TCP workers
  (:mod:`repro.serve.remote`) addressed by ``host:port``.

The hard guarantee mirrors the incremental engine's: every backend
produces bitwise-identical fitness values and search trajectories.

::

    from repro.parallel import EvaluatorSpec, ExecutorConfig, PopulationEvaluator
    spec = EvaluatorSpec(images=calib, model=model, stats=stats)
    with PopulationEvaluator(spec, ExecutorConfig("process", 4)) as ev:
        engine = LPQEngine(ev, stats.weight_log_centers, config)
        solution, fitness = engine.run()
"""

from .evaluator import EvaluatorReplica, EvaluatorSpec, PopulationEvaluator
from .executor import (
    BACKENDS,
    ExecutorConfig,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    parse_address,
    parse_address_list,
)

__all__ = [
    "BACKENDS",
    "EvaluatorReplica",
    "EvaluatorSpec",
    "ExecutorConfig",
    "PopulationEvaluator",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "make_executor",
    "parse_address",
    "parse_address_list",
]
