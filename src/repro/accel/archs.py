"""Accelerator architecture configurations (paper Section 6, Table 3).

Component areas come from the paper's published synthesis results
(TSMC 28 nm, Table 3): they are the *inputs* of this model, exactly as
the paper's own evaluation reduces synthesis to per-component scalars.
Energy-per-MAC values are calibrated so the published efficiency ratios
of Table 4 emerge from the same cycle model (see EXPERIMENTS.md).

Fusion semantics (paper Section 6.2): ANT and BitFusion group neighbouring
PEs to reach higher precisions, shrinking the effective array ("8-by-4 or
8-by-2 behaviour"); LPA instead *packs* several low-precision weights into
one PE, growing effective columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ArchConfig", "lpa", "ant", "bitfusion", "adaptivfloat_arch",
           "posit_arch", "ALL_ARCHS", "BUFFER_KB", "BUFFER_AREA_MM2"]

#: shared on-chip buffer configuration used by every design in Table 3
BUFFER_KB = 512
BUFFER_AREA_MM2 = 4.2


@dataclass(frozen=True)
class ArchConfig:
    """One systolic-array accelerator design point."""

    name: str
    rows: int = 8
    cols: int = 8
    #: native PE operand width; weights wider than this fuse PEs
    pe_bits: int = 8
    #: widths the design can execute (weights snap up to the nearest)
    supported_weight_bits: tuple[int, ...] = (8,)
    #: LPA-style multi-weight packing (Section 5.2 Multi-precision)
    packs_weights: bool = False
    freq_ghz: float = 1.0
    #: areas in µm² (28 nm), counts along the array boundary
    pe_area_um2: float = 0.0
    decoder_area_um2: float = 0.0
    decoder_count: int = 0
    encoder_area_um2: float = 0.0
    encoder_count: int = 0
    #: energy per MAC by *weight* width (pJ, incl. local datapath)
    e_mac_pj: dict[int, float] = field(default_factory=dict)
    #: SRAM / DRAM access energy (pJ per byte)
    e_sram_pj_byte: float = 1.2
    e_dram_pj_byte: float = 20.0
    #: DRAM bandwidth available to the array (bytes per cycle)
    dram_bytes_per_cycle: float = 16.0

    # -- derived quantities -------------------------------------------------
    def snap_weight_bits(self, bits: int) -> int:
        """Smallest supported width that can hold ``bits``-bit weights."""
        cands = [b for b in self.supported_weight_bits if b >= bits]
        return min(cands) if cands else max(self.supported_weight_bits)

    def pack_factor(self, weight_bits: int) -> int:
        """Weights per PE (1 for non-packing designs)."""
        if not self.packs_weights:
            return 1
        return max(1, self.pe_bits // self.snap_weight_bits(weight_bits))

    def col_fusion(self, weight_bits: int) -> int:
        """PEs ganged along a row to host one wide weight."""
        if self.packs_weights:
            return 1
        return max(1, math.ceil(self.snap_weight_bits(weight_bits) / self.pe_bits))

    def row_fusion(self, act_bits: int) -> int:
        """PEs ganged along a column to host one wide activation."""
        if self.packs_weights:
            return 1
        return max(1, math.ceil(act_bits / max(self.pe_bits, 4)))

    def effective_dims(self, weight_bits: int, act_bits: int) -> tuple[int, float]:
        """(effective reduction rows, effective output columns)."""
        rows = max(1, self.rows // self.row_fusion(act_bits))
        cols = (self.cols // self.col_fusion(weight_bits)) * self.pack_factor(
            weight_bits
        )
        return rows, max(1, cols)

    def compute_area_um2(self) -> float:
        return (
            self.rows * self.cols * self.pe_area_um2
            + self.decoder_count * self.decoder_area_um2
            + self.encoder_count * self.encoder_area_um2
        )

    def total_area_mm2(self) -> float:
        return BUFFER_AREA_MM2 + self.compute_area_um2() / 1e6

    def mac_energy_pj(self, weight_bits: int) -> float:
        return self.e_mac_pj[self.snap_weight_bits(weight_bits)]


def lpa() -> ArchConfig:
    """LPA: native 2/4/8-bit LP PEs with MODE-A/B/C weight packing."""
    return ArchConfig(
        name="LPA",
        pe_bits=8,
        supported_weight_bits=(2, 4, 8),
        packs_weights=True,
        pe_area_um2=187.43,
        decoder_area_um2=5.2,
        decoder_count=16,  # 8 weight-column + 8 activation-row blocks
        encoder_area_um2=9.4,
        encoder_count=0,  # output encoders accounted in the PPU
        e_mac_pj={2: 4.1, 4: 8.2, 8: 15.7},
    )


def ant() -> ArchConfig:
    """ANT: 4-bit flint PEs, pairwise fusion for 8-bit operands."""
    return ArchConfig(
        name="ANT",
        pe_bits=4,
        supported_weight_bits=(4, 8),
        pe_area_um2=79.57,
        decoder_area_um2=4.9,
        decoder_count=2,
        e_mac_pj={4: 7.0, 8: 14.0},
    )


def bitfusion() -> ArchConfig:
    """BitFusion: fusible low-precision integer PEs (2/4/8-bit).

    At the granularity of this comparison a BitFusion fusion unit matches
    ANT's 4-bit PE class (Table 3 reports near-identical PE areas); 2-bit
    weights execute but do not unlock extra parallelism beyond the 4-bit
    configuration of the fusion unit.
    """
    return ArchConfig(
        name="BitFusion",
        pe_bits=4,
        supported_weight_bits=(2, 4, 8),
        pe_area_um2=79.59,
        e_mac_pj={2: 6.5, 4: 7.2, 8: 14.5},
    )


def adaptivfloat_arch() -> ArchConfig:
    """AdaptivFloat: fixed 8-bit hybrid-float PEs; larger and slower
    (float datapath critical path halves the clock)."""
    return ArchConfig(
        name="AdaptivFloat",
        pe_bits=8,
        supported_weight_bits=(8,),
        freq_ghz=0.5,
        pe_area_um2=364.96,
        e_mac_pj={8: 27.8},
    )


def posit_arch() -> ArchConfig:
    """Standard posit mixed-precision PE (Table 4 'Posit-2/4/8'):
    packs like LPA but pays full posit arithmetic (no LNS multiply) —
    ~5.3× the PE area and ~3× the MAC energy of the LP PE."""
    return ArchConfig(
        name="Posit-2/4/8",
        pe_bits=8,
        supported_weight_bits=(2, 4, 8),
        packs_weights=True,
        pe_area_um2=1000.0,
        decoder_area_um2=5.2,
        decoder_count=16,
        e_mac_pj={2: 12.5, 4: 25.0, 8: 48.0},
    )


def ALL_ARCHS() -> dict[str, ArchConfig]:
    return {
        a.name: a
        for a in (lpa(), ant(), bitfusion(), adaptivfloat_arch())
    }
