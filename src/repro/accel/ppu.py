"""Post-Processing Unit (paper Section 5.1).

The PPU sits between the output buffer and memory: it quantizes the
PE-array's wide partial sums down to 4- or 8-bit LP, computes the
activation scale factor for the next layer, and applies the layer's
non-linearity (ReLU / softmax).  The encoder performs the linear→log
fraction conversion with the same gate-table converter the PE uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..numerics import LPParams, lp_encode, lp_decode, tensor_log_center
from .loglinear import linear2log_table

__all__ = ["PPUResult", "ppu_requantize"]


@dataclass(frozen=True)
class PPUResult:
    """Output of one PPU pass over a partial-sum tile."""

    codes: np.ndarray  # packed LP codes (int)
    values: np.ndarray  # decoded real values (what the next layer sees)
    params: LPParams  # the activation LP parameters used
    scale_factor: float  # the sf computed by the PPU


def _encoder_fraction_loss(x: np.ndarray, width: int = 8) -> np.ndarray:
    """Model the encoder's linear→log fraction conversion error.

    Partial sums arrive with a *linear* fraction; the unified LP encoder
    converts it to the log domain through the gate-table converter before
    bit-packing (Section 5.2).  This applies that table's rounding.
    """
    out = np.zeros_like(np.asarray(x, dtype=np.float64))
    nz = x != 0
    mag = np.abs(x[nz])
    e = np.floor(np.log2(mag))
    lf = mag / np.exp2(e)  # 1.f in [1, 2)
    codes = np.round((lf - 1.0) * (1 << width)).astype(np.int64)
    carry = codes >> width
    codes &= (1 << width) - 1
    lnf = linear2log_table(width)[codes] / float(1 << width)
    out[nz] = np.sign(x[nz]) * np.exp2(e + carry + lnf)
    return out


def ppu_requantize(
    partial_sums: np.ndarray,
    act_bits: int = 8,
    es: int = 2,
    rs: int = 3,
    relu: bool = False,
    converter_bits: int = 8,
) -> PPUResult:
    """Quantize partial sums to LP activations as the PPU does.

    Pipeline: optional ReLU → scale-factor computation (log-centre of the
    tile) → linear→log conversion → LP encode at ⟨act_bits, es, rs, sf⟩.
    """
    if act_bits not in (4, 8):
        raise ValueError("the PPU emits 4- or 8-bit LP activations")
    x = np.asarray(partial_sums, dtype=np.float64)
    if relu:
        x = np.maximum(x, 0.0)
    sf = tensor_log_center(x)
    params = LPParams(
        n=act_bits, es=min(es, max(act_bits - 3, 0)),
        rs=min(rs, act_bits - 1), sf=sf,
    )
    x_conv = _encoder_fraction_loss(x, converter_bits)
    codes = lp_encode(x_conv, params)
    values = lp_decode(codes, params)
    return PPUResult(codes=codes, values=values, params=params,
                     scale_factor=sf)
