"""Cycle-level model of a weight-stationary systolic array (Section 5.1).

For one layer GEMM (M, K, N) on an R×C array the weights tile into
⌈K/R⌉ × ⌈N/C_eff⌉ stationary tiles; each tile streams M activations east
with a pipeline fill of R cycles and drain of C cycles.  LPA's weight
packing multiplies effective columns; ANT/BitFusion fusion shrinks the
effective array instead.  Memory traffic is overlapped (double-buffered
PEs, Section 5.2) and the layer is roofline-limited by DRAM bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from .archs import ArchConfig
from .workload import LayerShape

__all__ = ["LayerSim", "simulate_layer", "simulate_network"]


@dataclass(frozen=True)
class LayerSim:
    """Cycle/energy simulation of one layer on one architecture."""

    name: str
    weight_bits: int
    act_bits: int
    macs: int
    compute_cycles: int
    memory_cycles: int
    energy_pj: float

    @property
    def cycles(self) -> int:
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def utilization(self) -> float:
        """Achieved MACs per cycle over the array's nominal 64 MACs."""
        return self.macs / self.cycles


def simulate_layer(
    shape: LayerShape,
    arch: ArchConfig,
    weight_bits: int,
    act_bits: int,
    batch: int = 1,
) -> LayerSim:
    """Simulate one layer; returns cycles and energy."""
    wb = arch.snap_weight_bits(weight_bits)
    ab = min(8, max(4, act_bits))
    rows_eff, cols_eff = arch.effective_dims(wb, ab)

    m = shape.m * batch
    compute = 0
    for _ in range(shape.groups):
        k_tiles = math.ceil(shape.k / rows_eff)
        n_tiles = math.ceil(shape.n / cols_eff)
        # each stationary tile: fill (rows) + stream M + drain (cols)
        compute += k_tiles * n_tiles * (rows_eff + m + arch.cols)
    # groups share the fill pipeline poorly on small arrays; keep additive

    # memory traffic (bytes): weights once per n-tile pass, activations
    # once per k-tile pass, outputs once
    weight_bytes = shape.weight_params * wb / 8
    act_bytes = shape.act_elems * batch * ab / 8
    out_bytes = shape.out_elems * batch * 2  # 16-bit partial sums to PPU
    total_bytes = weight_bytes + act_bytes + out_bytes
    memory = math.ceil(total_bytes / arch.dram_bytes_per_cycle)

    macs = shape.macs * batch
    energy = (
        macs * arch.mac_energy_pj(wb)
        + (weight_bytes + act_bytes) * arch.e_sram_pj_byte * 2  # rd + wr
        + total_bytes * arch.e_dram_pj_byte
    )
    return LayerSim(
        name=shape.name,
        weight_bits=wb,
        act_bits=ab,
        macs=macs,
        compute_cycles=int(compute),
        memory_cycles=int(memory),
        energy_pj=float(energy),
    )


def simulate_network(
    shapes: list[LayerShape],
    arch: ArchConfig,
    weight_bits: list[int],
    act_bits: list[int] | int = 8,
    batch: int = 1,
) -> list[LayerSim]:
    """Simulate every layer of a network under per-layer precisions."""
    if len(weight_bits) != len(shapes):
        raise ValueError("need one weight width per layer")
    if isinstance(act_bits, int):
        act_bits = [act_bits] * len(shapes)
    return [
        simulate_layer(s, arch, wb, ab, batch)
        for s, wb, ab in zip(shapes, weight_bits, act_bits)
    ]
