"""Log↔linear fraction converters (paper Section 5.2, Accumulation Stage).

LPA multiplies in the log domain (adds of ``ulfx``) but accumulates in the
linear domain.  Instead of an expensive LUT, the paper derives gate-level
converters from a Karnaugh map of the full truth table.  Behaviourally a
gate network synthesized from a truth table *is* that truth table, so we
model the converters as the exact 2^w-entry tables the K-maps were built
from — including their rounding error, which is the real accuracy cost of
the hardware.

``log2linear_table(w)[i]`` maps the log-domain fraction f' = i/2^w to the
linear fraction f = round((2^{f'} − 1)·2^w)/2^w, and ``linear2log_table``
is the inverse construction.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "log2linear_table",
    "linear2log_table",
    "log2linear",
    "linear2log",
    "converter_max_error",
]


@lru_cache(maxsize=32)
def log2linear_table(width: int = 8) -> np.ndarray:
    """Integer table: log fraction code → linear fraction code."""
    if not 1 <= width <= 16:
        raise ValueError("converter width must be in [1, 16]")
    codes = np.arange(1 << width)
    frac = codes / float(1 << width)  # f' in [0, 1)
    linear = np.exp2(frac) - 1.0  # f in [0, 1)
    return np.round(linear * (1 << width)).astype(np.int64) & ((1 << width) - 1)


@lru_cache(maxsize=32)
def linear2log_table(width: int = 8) -> np.ndarray:
    """Integer table: linear fraction code → log fraction code."""
    if not 1 <= width <= 16:
        raise ValueError("converter width must be in [1, 16]")
    codes = np.arange(1 << width)
    frac = codes / float(1 << width)  # f in [0, 1)
    logf = np.log2(1.0 + frac)  # f' in [0, 1)
    return np.round(logf * (1 << width)).astype(np.int64) & ((1 << width) - 1)


def log2linear(code: np.ndarray, width: int = 8) -> np.ndarray:
    """Apply the log→linear converter to integer fraction codes."""
    return log2linear_table(width)[np.asarray(code, dtype=np.int64)]


def linear2log(code: np.ndarray, width: int = 8) -> np.ndarray:
    """Apply the linear→log converter to integer fraction codes."""
    return linear2log_table(width)[np.asarray(code, dtype=np.int64)]


def converter_max_error(width: int = 8) -> float:
    """Worst-case absolute error of the log→linear conversion in value
    terms (on 1.f ∈ [1, 2)); bounded by ~1 ulp of the fraction."""
    codes = np.arange(1 << width)
    exact = np.exp2(codes / float(1 << width))
    approx = 1.0 + log2linear_table(width)[codes] / float(1 << width)
    return float(np.max(np.abs(exact - approx)))
