"""LP Processing Element datapath model (paper Section 5.2).

A PE holds 1/2/4 decoded weights (MODE-C/B/A) that share one eastbound
input activation and produces that many partial sums per cycle.

* **MUL stage** — log-domain multiply: per-lane adds of regime scales and
  ``ulfx`` codes (no carries between lanes, as in Fig. 3's split adders).
* **ACC stage** — the product's log fraction (``lnf``) is converted to a
  linear fraction (``lf``) by the gate-level log→linear converter, aligned
  to the running partial sum's exponent, and added.  Partial sums keep the
  fraction linear (and only the encoder converts back) because they are
  progressively accumulated down the column.

The model is *value-faithful at field granularity*: products are exact in
the log domain (hardware adds are exact), and the accumulation applies the
two real precision losses of the datapath — the 8-bit log→linear
conversion and the ``acc_frac_bits`` alignment of the linear fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..numerics import LPParams
from .decoder import DecodedLanes, MODES, decode_weights, mode_for_bits
from .loglinear import log2linear_table

__all__ = ["PEConfig", "multiply_stage", "accumulate", "pe_dot", "pack_count"]


@dataclass(frozen=True)
class PEConfig:
    """Datapath widths: defaults follow Fig. 3 (8-bit lnf/lf, 16-bit
    regime/ulfx in the unified format)."""

    converter_bits: int = 8
    acc_frac_bits: int = 23  # linear-fraction bits kept while accumulating


def pack_count(bits: int) -> int:
    """Weights per PE for a weight width (MODE-A/B/C packing)."""
    return MODES[mode_for_bits(bits)][1]


def multiply_stage(
    weights: DecodedLanes, act: DecodedLanes
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Log-domain multiply: returns (sign, exponent_scale, log_frac).

    ``exponent_scale`` is the integer power-of-two part (regime·2^es + sf
    bias + integer carry out of the fraction add); ``log_frac`` ∈ [0, 1)
    is the fractional log2 part, still in the log domain.
    """
    ws = weights.sign
    # activation has a single lane broadcast against the weight lanes
    a_sign = act.sign[..., 0:1]
    sign = ws ^ a_sign
    w_ulfx = weights.ulfx_code / float(1 << weights.frac_bits)
    a_ulfx = act.ulfx_code[..., 0:1] / float(1 << act.frac_bits)
    total = (
        weights.regime_scale
        + act.regime_scale[..., 0:1]
        + w_ulfx
        + a_ulfx
    )
    exp_scale = np.floor(total).astype(np.int64)
    log_frac = total - exp_scale
    zero = weights.is_zero | act.is_zero[..., 0:1]
    return np.where(zero, 0, sign), np.where(zero, -(10**6), exp_scale), np.where(
        zero, 0.0, log_frac
    )


def accumulate(
    sign: np.ndarray,
    exp_scale: np.ndarray,
    log_frac: np.ndarray,
    sf_total: float,
    config: PEConfig | None = None,
) -> np.ndarray:
    """ACC stage over the reduction axis (axis 0) of the product fields.

    Applies the 8-bit log→linear conversion to each product, aligns to a
    fixed accumulator fraction, and sums — returning real partial sums.
    """
    config = config or PEConfig()
    cw = config.converter_bits
    table = log2linear_table(cw)
    codes = np.round(log_frac * (1 << cw)).astype(np.int64)
    # rounding to 2^cw means the fraction carried into the next binade
    carry = codes >> cw
    codes = codes & ((1 << cw) - 1)
    lf = 1.0 + table[codes] / float(1 << cw)  # linear 1.f in [1, 2)
    value = np.where(sign == 1, -lf, lf) * np.exp2(
        exp_scale + carry - sf_total
    )
    # alignment: quantize every addend to the accumulator's fixed point
    step = np.exp2(
        np.floor(np.log2(np.maximum(np.abs(value).max(axis=0), 1e-300)))
        - config.acc_frac_bits
    )
    aligned = np.round(value / step) * step
    return aligned.sum(axis=0)


def pe_dot(
    w: np.ndarray,
    a: np.ndarray,
    w_params: LPParams,
    a_params: LPParams,
    config: PEConfig | None = None,
) -> np.ndarray:
    """Dot products through the full bit-level PE path.

    ``w``: (K, P) real weights (P = packed output lanes sharing each
    activation), ``a``: (K,) real activations.  Weights/activations are
    first LP-encoded (as the buffers store them), decoded by the unified
    decoder, multiplied in the log domain and accumulated.  Returns (P,)
    partial sums.
    """
    from ..numerics import lp_encode

    config = config or PEConfig()
    w = np.asarray(w, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    if w.ndim != 2 or a.ndim != 1 or w.shape[0] != a.shape[0]:
        raise ValueError("w must be (K, P) and a must be (K,)")
    wp = w_params.clamped()
    ap = a_params.clamped()
    mode_w = mode_for_bits(wp.n)
    lanes = MODES[mode_w][1]
    if w.shape[1] != lanes:
        raise ValueError(
            f"{wp.n}-bit weights pack {lanes}/PE; got {w.shape[1]} columns"
        )
    from .decoder import pack_lanes

    w_codes = lp_encode(w, wp)  # (K, P) lane codes
    packed = pack_lanes(w_codes, mode_w)  # (K,) words
    decoded_w = decode_weights(packed, mode_w, wp)
    from .decoder import decode_activations

    decoded_a = decode_activations(lp_encode(a, ap), ap)
    sign, exp_scale, log_frac = multiply_stage(decoded_w, decoded_a)
    return accumulate(sign, exp_scale, log_frac, wp.sf + ap.sf, config)
