"""LPA: LP-based DNN accelerator model + ANT/BitFusion/AdaptivFloat
baselines (paper Section 5 and 6.2).

Bit-accurate pieces: unified LP decoder/encoder lanes, log↔linear
converters, the LP PE multiply/accumulate path.  Analytic pieces: the
weight-stationary systolic cycle model and the component-calibrated
area/energy model.
"""

from .archs import (
    ALL_ARCHS,
    ArchConfig,
    BUFFER_AREA_MM2,
    BUFFER_KB,
    adaptivfloat_arch,
    ant,
    bitfusion,
    lpa,
    posit_arch,
)
from .decoder import (
    DecodedLanes,
    MODES,
    decode_activations,
    decode_weights,
    lane_values,
    mode_for_bits,
    pack_lanes,
    unpack_lanes,
)
from .loglinear import (
    converter_max_error,
    linear2log,
    linear2log_table,
    log2linear,
    log2linear_table,
)
from .pe import PEConfig, accumulate, multiply_stage, pack_count, pe_dot
from .perf import PerfReport, evaluate_arch
from .ppu import PPUResult, ppu_requantize
from .systolic import LayerSim, simulate_layer, simulate_network
from .workload import LayerShape, extract_workload

__all__ = [
    "ALL_ARCHS",
    "ArchConfig",
    "BUFFER_AREA_MM2",
    "BUFFER_KB",
    "DecodedLanes",
    "LayerShape",
    "LayerSim",
    "MODES",
    "PEConfig",
    "PPUResult",
    "PerfReport",
    "accumulate",
    "adaptivfloat_arch",
    "ant",
    "bitfusion",
    "converter_max_error",
    "decode_activations",
    "decode_weights",
    "evaluate_arch",
    "extract_workload",
    "lane_values",
    "linear2log",
    "linear2log_table",
    "log2linear",
    "log2linear_table",
    "lpa",
    "mode_for_bits",
    "multiply_stage",
    "pack_count",
    "pack_lanes",
    "pe_dot",
    "ppu_requantize",
    "posit_arch",
    "simulate_layer",
    "simulate_network",
    "unpack_lanes",
]
