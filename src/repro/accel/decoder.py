"""Unified LP decoder / encoder (paper Section 5.1, Fig. 3 and Fig. 4).

The Weight Buffer stores packed 8-bit words whose interpretation depends
on the PE MODE:

* MODE-A — four 2-bit LP weights,
* MODE-B — two 4-bit LP weights,
* MODE-C — one 8-bit LP weight.

The decoder mirrors the hardware pipeline behaviourally: a unified 2's
complementer (multi-precision, Fig. 4(a)), a leading-zero/one counter
(Fig. 4(b)) for the regime run-length, a shifter that removes the regime,
and a ``ulfx`` constructor that applies ``es``/``sf``.  The output is the
unified format used inside the PE array: per-lane sign bits, 16-bit regime
*scale* values (already multiplied by 2^es and biased by −sf, as the
"Regime Out" block in Fig. 3 does), and fixed-point ``ulfx`` codes.

All functions are vectorized over arrays of packed words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..numerics import LPParams

__all__ = ["MODES", "DecodedLanes", "unpack_lanes", "decode_weights",
           "lane_values", "pack_lanes", "mode_for_bits"]

#: MODE name -> (lane width in bits, lanes per 8-bit word)
MODES: dict[str, tuple[int, int]] = {"A": (2, 4), "B": (4, 2), "C": (8, 1)}


def mode_for_bits(bits: int) -> str:
    for mode, (width, _) in MODES.items():
        if width == bits:
            return mode
    raise ValueError(f"no PE MODE for {bits}-bit weights (need 2/4/8)")


@dataclass(frozen=True)
class DecodedLanes:
    """Unified-format fields per lane: shape (..., lanes)."""

    sign: np.ndarray  # 0/1
    regime_scale: np.ndarray  # int: 2^es · k (before sf bias)
    ulfx_code: np.ndarray  # int: ulfx · 2^frac_bits
    frac_bits: int  # fixed-point position of ulfx_code
    is_zero: np.ndarray  # bool
    sf: float  # scale-factor bias (applied at evaluation)

    @property
    def lanes(self) -> int:
        return self.sign.shape[-1]


def unpack_lanes(words: np.ndarray, mode: str) -> np.ndarray:
    """Split packed 8-bit words into lanes (Bit Unpack in Fig. 3)."""
    width, lanes = MODES[mode]
    w = np.asarray(words, dtype=np.int64) & 0xFF
    out = np.empty(w.shape + (lanes,), dtype=np.int64)
    mask = (1 << width) - 1
    for i in range(lanes):
        # lane 0 sits in the most-significant field
        shift = width * (lanes - 1 - i)
        out[..., i] = (w >> shift) & mask
    return out


def pack_lanes(lanes_arr: np.ndarray, mode: str) -> np.ndarray:
    """Inverse of :func:`unpack_lanes` (used by the unified LP encoder)."""
    width, lanes = MODES[mode]
    la = np.asarray(lanes_arr, dtype=np.int64)
    if la.shape[-1] != lanes:
        raise ValueError(f"expected {lanes} lanes for MODE-{mode}")
    word = np.zeros(la.shape[:-1], dtype=np.int64)
    mask = (1 << width) - 1
    for i in range(lanes):
        shift = width * (lanes - 1 - i)
        word |= (la[..., i] & mask) << shift
    return word


def _decode_fields(
    codes: np.ndarray, n: int, es: int, rs: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Bit-level field extraction for one lane width.

    Returns (sign, regime_scale=2^es·k, ulfx_code, is_zero, frac_bits).
    Mirrors the hardware: 2's complement, leading-run count (capped at
    rs), regime shift-out, remaining bits interpreted as es-integer +
    log-fraction fixed point.
    """
    c = np.asarray(codes, dtype=np.int64) & ((1 << n) - 1)
    # the LP encoder never emits the NaR pattern (10...0); the hardware
    # decoder maps it to zero rather than spending exception logic on it
    is_zero = (c == 0) | (c == (1 << (n - 1)))
    sign = (c >> (n - 1)) & 1
    mag = np.where(sign == 1, ((1 << n) - c) & ((1 << n) - 1), c)
    body = mag & ((1 << (n - 1)) - 1)
    nb = n - 1
    max_run = min(nb, max(1, min(rs, nb)))
    first = (body >> (nb - 1)) & 1 if nb >= 1 else np.zeros_like(body)
    run = np.zeros_like(body)
    alive = np.ones(body.shape, dtype=bool)
    for i in range(max_run):
        bit = (body >> (nb - 1 - i)) & 1
        alive = alive & (bit == first)
        run += alive.astype(np.int64)
    consumed = np.minimum(run + 1, max_run)
    k = np.where(first == 1, run - 1, -run)

    remaining = nb - consumed
    rem = body & ((np.int64(1) << remaining) - 1)
    es_eff = min(es, max(nb - 1, 0))
    e_avail = np.minimum(remaining, es_eff)
    e = (rem >> (remaining - e_avail)) << (es_eff - e_avail)
    fbits_each = remaining - e_avail  # varies per element
    f = rem & ((np.int64(1) << fbits_each) - 1)
    # normalize every lane's fraction to a common fixed-point position
    frac_bits = max(nb - 1, 0)
    ulfx_code = (e << frac_bits) + (f << (frac_bits - fbits_each))
    regime_scale = k * (1 << es_eff)
    return sign, regime_scale, ulfx_code, is_zero, frac_bits


def decode_weights(words: np.ndarray, mode: str, params: LPParams) -> DecodedLanes:
    """Unified LP weight decoder: packed words → per-lane fields."""
    width, _ = MODES[mode]
    p = params.clamped()
    if p.n != width:
        raise ValueError(
            f"MODE-{mode} expects {width}-bit params, got n={p.n}"
        )
    lanes = unpack_lanes(words, mode)
    sign, regime_scale, ulfx_code, is_zero, frac_bits = _decode_fields(
        lanes, width, p.es_eff, p.rs_eff
    )
    return DecodedLanes(
        sign=sign,
        regime_scale=regime_scale,
        ulfx_code=ulfx_code,
        frac_bits=frac_bits,
        is_zero=is_zero,
        sf=p.sf,
    )


def decode_activations(codes: np.ndarray, params: LPParams) -> DecodedLanes:
    """Activation decoder: one n-bit LP code per element, single lane.

    In hardware 4-bit activations are stored zero-extended in 8-bit slots
    (Section 5.1); behaviourally each element is a single lane with the
    activation tensor's ⟨n, es, rs, sf⟩.
    """
    p = params.clamped()
    c = np.asarray(codes, dtype=np.int64)[..., None]  # single lane axis
    sign, regime_scale, ulfx_code, is_zero, frac_bits = _decode_fields(
        c, p.n, p.es_eff, p.rs_eff
    )
    return DecodedLanes(
        sign=sign,
        regime_scale=regime_scale,
        ulfx_code=ulfx_code,
        frac_bits=frac_bits,
        is_zero=is_zero,
        sf=p.sf,
    )


def lane_values(decoded: DecodedLanes) -> np.ndarray:
    """Real values of decoded lanes (Eq. 1) — used to verify the decoder
    against the reference :func:`repro.numerics.lp_decode`."""
    ulfx = decoded.ulfx_code / float(1 << decoded.frac_bits)
    mag = np.exp2(decoded.regime_scale + ulfx - decoded.sf)
    val = np.where(decoded.sign == 1, -mag, mag)
    return np.where(decoded.is_zero, 0.0, val)
