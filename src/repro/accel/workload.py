"""Workload extraction: DNN layers → GEMM shapes for the cycle model.

Each quantizable layer lowers to a GEMM of dimensions (M, K, N):

* Conv2d — M = OH·OW (output pixels), K = (Cin/G)·KH·KW, N = Cout;
  grouped convs execute their G independent GEMMs back to back.
* Linear — M = tokens per image, K = in features, N = out features.

Shapes are captured with forward hooks on a single-image probe pass, so
any model built from :mod:`repro.nn` layers works unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Conv2d, Linear, Module, quantizable_layers

__all__ = [
    "LayerShape",
    "extract_workload",
    "paper_resnet50_shapes",
    "paper_vit_b_shapes",
]


@dataclass(frozen=True)
class LayerShape:
    """GEMM view of one layer, per image."""

    name: str
    m: int  # output rows (pixels / tokens)
    k: int  # reduction depth
    n: int  # output channels / features
    groups: int = 1

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.groups

    @property
    def weight_params(self) -> int:
        return self.k * self.n * self.groups

    @property
    def act_elems(self) -> int:
        return self.m * self.k * self.groups

    @property
    def out_elems(self) -> int:
        return self.m * self.n * self.groups


def extract_workload(model: Module, image_size: int = 32) -> list[LayerShape]:
    """Probe the model with one image and return per-layer GEMM shapes."""
    layers = quantizable_layers(model)
    outputs: dict[str, tuple[int, ...]] = {}
    removers = []
    for name, layer in layers:

        def hook(_mod, out, _name=name):
            outputs[_name] = out.shape

        removers.append(layer.add_forward_hook(hook))
    model.eval()
    try:
        model(np.zeros((1, 3, image_size, image_size), dtype=np.float32))
    finally:
        for remove in removers:
            remove()

    shapes: list[LayerShape] = []
    for name, layer in layers:
        out_shape = outputs[name]
        if isinstance(layer, Conv2d):
            oh, ow = out_shape[2], out_shape[3]
            g = layer.groups
            shapes.append(
                LayerShape(
                    name=name,
                    m=oh * ow,
                    k=(layer.in_channels // g) * layer.kernel_size**2,
                    n=layer.out_channels // g,
                    groups=g,
                )
            )
        elif isinstance(layer, Linear):
            m = int(np.prod(out_shape[:-1]))  # batch dim is 1 in the probe
            shapes.append(
                LayerShape(name=name, m=m, k=layer.in_features,
                           n=layer.out_features)
            )
        else:  # pragma: no cover - quantizable_layers only yields these
            raise TypeError(f"unexpected layer type {type(layer)}")
    return shapes


def paper_resnet50_shapes() -> list[LayerShape]:
    """Layer GEMMs of the full ImageNet ResNet-50 (224×224 input).

    The hardware experiments (Tables 3-4, Fig. 6) depend only on layer
    *dimensions*, which are architecture constants — so the cycle model
    runs the paper's actual workload even though accuracy experiments use
    the scaled-down trained models.
    """
    shapes: list[LayerShape] = [
        LayerShape("conv1", m=112 * 112, k=3 * 49, n=64)
    ]
    spatial = 56
    cin = 64
    stage_widths = (64, 128, 256, 512)
    stage_depths = (3, 4, 6, 3)
    for s, (width, depth) in enumerate(zip(stage_widths, stage_depths)):
        for block in range(depth):
            stride = 2 if (s > 0 and block == 0) else 1
            out_sp = spatial // stride
            prefix = f"layer{s + 1}.{block}"
            shapes.append(
                LayerShape(f"{prefix}.conv1", m=spatial * spatial, k=cin, n=width)
            )
            shapes.append(
                LayerShape(
                    f"{prefix}.conv2", m=out_sp * out_sp, k=width * 9, n=width
                )
            )
            shapes.append(
                LayerShape(
                    f"{prefix}.conv3", m=out_sp * out_sp, k=width, n=width * 4
                )
            )
            if block == 0:
                shapes.append(
                    LayerShape(
                        f"{prefix}.downsample",
                        m=out_sp * out_sp,
                        k=cin,
                        n=width * 4,
                    )
                )
            cin = width * 4
            spatial = out_sp
    shapes.append(LayerShape("fc", m=1, k=2048, n=1000))
    return shapes


def paper_vit_b_shapes() -> list[LayerShape]:
    """Layer GEMMs of ViT-B/16 at 224×224 (197 tokens, dim 768)."""
    tokens, dim = 197, 768
    shapes = [LayerShape("patch_embed", m=196, k=3 * 256, n=dim)]
    for i in range(12):
        shapes.append(LayerShape(f"blocks.{i}.qkv", m=tokens, k=dim, n=3 * dim))
        shapes.append(LayerShape(f"blocks.{i}.proj", m=tokens, k=dim, n=dim))
        shapes.append(LayerShape(f"blocks.{i}.fc1", m=tokens, k=dim, n=4 * dim))
        shapes.append(LayerShape(f"blocks.{i}.fc2", m=tokens, k=4 * dim, n=dim))
    shapes.append(LayerShape("head", m=1, k=dim, n=1000))
    return shapes
