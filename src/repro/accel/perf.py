"""End-to-end performance/area/energy evaluation (Tables 3-4, Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass

from .archs import ArchConfig
from .systolic import LayerSim, simulate_network
from .workload import LayerShape

__all__ = ["PerfReport", "evaluate_arch"]


@dataclass(frozen=True)
class PerfReport:
    """Aggregate metrics for one network on one architecture."""

    arch: str
    total_macs: int
    total_cycles: int
    latency_ms: float
    throughput_gops: float
    energy_mj: float
    gops_per_watt: float
    compute_area_um2: float
    total_area_mm2: float
    compute_density_tops_mm2: float

    def normalized_to(self, other: "PerfReport") -> tuple[float, float]:
        """(latency, energy) of self normalised to ``other`` (Fig. 6)."""
        return (
            self.latency_ms / other.latency_ms,
            self.energy_mj / other.energy_mj,
        )


def evaluate_arch(
    shapes: list[LayerShape],
    arch: ArchConfig,
    weight_bits: list[int],
    act_bits: list[int] | int = 8,
    batch: int = 1,
) -> PerfReport:
    """Run the cycle model over a network and aggregate Table-3 metrics."""
    sims: list[LayerSim] = simulate_network(shapes, arch, weight_bits, act_bits, batch)
    cycles = sum(s.cycles for s in sims)
    macs = sum(s.macs for s in sims)
    seconds = cycles / (arch.freq_ghz * 1e9)
    ops = 2.0 * macs
    gops = ops / seconds / 1e9
    energy_j = sum(s.energy_pj for s in sims) * 1e-12
    watts = energy_j / seconds
    compute_um2 = arch.compute_area_um2()
    return PerfReport(
        arch=arch.name,
        total_macs=macs,
        total_cycles=cycles,
        latency_ms=seconds * 1e3,
        throughput_gops=gops,
        energy_mj=energy_j * 1e3,
        gops_per_watt=gops / watts if watts > 0 else 0.0,
        compute_area_um2=compute_um2,
        total_area_mm2=arch.total_area_mm2(),
        compute_density_tops_mm2=(ops / seconds / 1e12) / (compute_um2 / 1e6),
    )
