"""Runtime lock-order analysis for the serve stack.

Static rules can prove an attribute is *guarded*; they cannot prove two
locks are always taken in the same order.  :class:`LockOrderMonitor`
does that at runtime: while installed it replaces ``threading.Lock`` /
``threading.RLock`` with instrumented wrappers that maintain, per
thread, the stack of locks currently held, and a process-wide directed
graph with an edge ``A -> B`` the first time any thread acquires ``B``
while holding ``A``.  A new edge that closes a cycle is a potential
deadlock: two threads can interleave the two paths and block forever.
Violations are recorded (with the acquisition stacks of both edges) and
reported by :meth:`LockOrderMonitor.report`; the autouse fixtures in
``tests/serve/conftest.py`` and ``tests/obs/conftest.py`` fail the test
that produced one.  Self-deadlocks — re-acquiring a non-reentrant
``Lock`` the same thread already holds — are reported immediately too.

The wrappers implement the full lock protocol including the private
``_is_owned`` / ``_release_save`` / ``_acquire_restore`` hooks, so
``threading.Condition`` built over an instrumented lock (the
``SearchServer`` wake condition) keeps correct bookkeeping across
``wait()``.  Instrumentation is passive: it never changes acquisition
semantics, only observes them, and a wrapper outliving its monitor
degrades to plain delegation.
"""

from __future__ import annotations

import threading
import traceback

__all__ = ["LockOrderMonitor", "LockOrderViolation", "lock_order_monitor"]

#: the real factories, captured at import so monitors can patch/restore
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class LockOrderViolation(AssertionError):
    """A potential deadlock found by the acquisition-order graph."""


def _site(depth: int = 8) -> str:
    """Compact acquisition stack, innermost frames last."""
    frames = traceback.extract_stack()[: -3][-depth:]
    return "".join(traceback.format_list(frames))


class _Instrumented:
    """Wrapper recording acquisition order; delegates everything else."""

    def __init__(self, monitor: "LockOrderMonitor", inner, reentrant: bool,
                 label: str) -> None:
        self._monitor = monitor
        self._inner = inner
        self._reentrant = reentrant
        self.label = label

    # -- core protocol ---------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1):
        self._monitor._before_acquire(self, blocking)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._monitor._acquired(self)
        return got

    def release(self) -> None:
        self._inner.release()
        self._monitor._released(self)

    __enter__ = acquire

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- Condition integration hooks -------------------------------------
    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _release_save(self):
        state = (
            self._inner._release_save()
            if hasattr(self._inner, "_release_save")
            else self._inner.release()
        )
        self._monitor._released(self, fully=True)
        return state

    def _acquire_restore(self, state) -> None:
        self._monitor._before_acquire(self, True)
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._monitor._acquired(self)

    def __getattr__(self, name: str):
        # everything else (e.g. RLock._recursion_count, _at_fork_reinit)
        # delegates straight to the real lock
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"<instrumented {self._inner!r} from {self.label}>"


class LockOrderMonitor:
    """Patch the lock factories and maintain the acquisition graph."""

    def __init__(self) -> None:
        self._mutex = _REAL_LOCK()  # guards the graph, never instrumented
        self._held = threading.local()
        self.active = False
        #: (id(a), id(b)) -> (label_a, label_b, stack at first occurrence)
        self.edges: dict[tuple[int, int], tuple[str, str, str]] = {}
        #: adjacency over lock ids, for cycle search
        self._adj: dict[int, set[int]] = {}
        self.violations: list[str] = []

    # -- factory patching ------------------------------------------------
    def install(self) -> "LockOrderMonitor":
        self.active = True

        def make_lock():
            return _Instrumented(self, _REAL_LOCK(), False, _creation_site())

        def make_rlock():
            return _Instrumented(self, _REAL_RLOCK(), True, _creation_site())

        def _creation_site() -> str:
            for frame in reversed(traceback.extract_stack()[:-2]):
                return f"{frame.filename}:{frame.lineno}"
            return "<unknown>"

        threading.Lock = make_lock
        threading.RLock = make_rlock
        return self

    def uninstall(self) -> None:
        self.active = False
        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK

    def __enter__(self) -> "LockOrderMonitor":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # -- per-thread bookkeeping ------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _before_acquire(self, lock: _Instrumented, blocking) -> None:
        """Only flags self-deadlock: a blocking acquire of a held Lock
        would hang right here, so it must be reported pre-acquire."""
        if not self.active or not blocking or lock._reentrant:
            return
        if any(entry[0] is lock for entry in self._stack()):
            message = (
                f"self-deadlock: non-reentrant Lock from {lock.label} "
                f"re-acquired by the holding thread\n{_site()}"
            )
            self._record_violation(message)
            # proceeding would hang this thread forever; a crisp raise
            # is the only useful way to surface a guaranteed deadlock
            raise LockOrderViolation(message)

    def _acquired(self, lock: _Instrumented) -> None:
        if not self.active:
            return
        stack = self._stack()
        for entry in stack:
            if entry[0] is lock:
                entry[1] += 1
                return  # re-entrant: no new ordering information
        for entry in stack:
            self._add_edge(entry[0], lock)
        stack.append([lock, 1])

    def _released(self, lock: _Instrumented, fully: bool = False) -> None:
        stack = getattr(self._held, "stack", None)
        if not stack:
            return
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is lock:
                stack[index][1] -= 1
                if fully or stack[index][1] <= 0:
                    del stack[index]
                return

    # -- the graph -------------------------------------------------------
    def _add_edge(self, held: _Instrumented, wanted: _Instrumented) -> None:
        key = (id(held), id(wanted))
        with self._mutex:
            if key in self.edges:
                return
            stack_text = _site()
            self.edges[key] = (held.label, wanted.label, stack_text)
            self._adj.setdefault(id(held), set()).add(id(wanted))
            cycle = self._find_path(id(wanted), id(held))
        if cycle is not None:
            first = self.edges.get((cycle[-2], cycle[-1])) if len(
                cycle
            ) >= 2 else None
            other = first[2] if first else "<stack unavailable>"
            self._record_violation(
                "lock-order cycle: "
                f"{held.label} -> {wanted.label} closes a cycle with the "
                f"reverse path.\n--- this acquisition ---\n{stack_text}"
                f"--- prior conflicting acquisition ---\n{other}"
            )

    def _find_path(self, start: int, goal: int) -> list[int] | None:
        """DFS path start -> goal over the edge graph (caller holds mutex)."""
        seen = {start}
        path = [start]

        def walk(node: int) -> bool:
            if node == goal:
                return True
            for nxt in self._adj.get(node, ()):
                if nxt in seen:
                    continue
                seen.add(nxt)
                path.append(nxt)
                if walk(nxt):
                    return True
                path.pop()
            return False

        return path if walk(start) else None

    def _record_violation(self, message: str) -> None:
        with self._mutex:
            self.violations.append(message)

    # -- reporting -------------------------------------------------------
    def report(self) -> str:
        """Human-readable summary; empty string when clean."""
        if not self.violations:
            return ""
        parts = [
            f"{len(self.violations)} lock-order violation(s) detected:"
        ]
        parts.extend(
            f"\n[{index}] {text}"
            for index, text in enumerate(self.violations, start=1)
        )
        return "\n".join(parts)

    def check(self) -> None:
        """Raise :class:`LockOrderViolation` if any cycle was recorded."""
        text = self.report()
        if text:
            raise LockOrderViolation(text)


def lock_order_monitor() -> LockOrderMonitor:
    """A fresh, not-yet-installed monitor (fixture convenience)."""
    return LockOrderMonitor()
