"""``determinism``: no ambient entropy inside the engine paths.

The repo's core bar is bitwise reproducibility — remote ≡ process ≡
thread ≡ serial, replays identical.  That only holds while the engine
packages (:mod:`repro.quant`, :mod:`repro.numerics`,
:mod:`repro.parallel`) draw randomness exclusively from explicitly
seeded ``numpy.random.Generator`` objects and never read wall-clock
state into results.  This rule forbids, inside those packages:

* ``time.time()`` (wall clock; ``time.monotonic``/``perf_counter`` are
  fine — they only feed telemetry),
* any ``random.*`` call (the stdlib global RNG),
* ``os.urandom`` / ``secrets.*`` (OS entropy),
* ``numpy.random.*`` module-level calls except the explicit-Generator
  constructors (``default_rng``, ``Generator``, ``SeedSequence``),
* iterating directly over a perf ``snapshot()`` (dict-order-dependent;
  wrap in ``sorted(...)`` to make traversal order part of the
  contract).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule
from ._util import dotted_name, import_aliases

__all__ = ["DeterminismRule"]

#: packages holding the bitwise-deterministic engine paths
ENGINE_PACKAGES = ("repro.quant", "repro.numerics", "repro.parallel")

_NUMPY_GENERATOR_OK = {"default_rng", "Generator", "SeedSequence"}


def _in_engine_path(module: ModuleSource) -> bool:
    dotted = module.dotted
    return any(
        dotted == pkg or dotted.startswith(pkg + ".")
        for pkg in ENGINE_PACKAGES
    )


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "engine packages must not read ambient entropy (wall clock, "
        "global RNGs, OS randomness) or iterate raw perf snapshots"
    )

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        if not _in_engine_path(module):
            return
        aliases = import_aliases(module.tree)

        def resolve(call: ast.Call) -> str | None:
            dotted = dotted_name(call.func)
            if dotted is None:
                return None
            root, _, rest = dotted.partition(".")
            real = aliases.get(root)
            if real is None:
                return None
            return f"{real}.{rest}" if rest else real

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = resolve(node)
                if dotted is None:
                    continue
                if dotted == "time.time":
                    yield module.finding(
                        self.name, node,
                        "time.time() in an engine path (wall clock is "
                        "ambient state; monotonic/perf_counter for "
                        "telemetry only)",
                    )
                elif dotted == "os.urandom" or dotted.startswith("secrets."):
                    yield module.finding(
                        self.name, node,
                        f"{dotted}() draws OS entropy in an engine path",
                    )
                elif dotted.startswith("random."):
                    yield module.finding(
                        self.name, node,
                        f"{dotted}() uses the stdlib global RNG; thread "
                        "a seeded numpy Generator instead",
                    )
                elif dotted.startswith("numpy.random."):
                    leaf = dotted.rsplit(".", 1)[-1]
                    if leaf not in _NUMPY_GENERATOR_OK:
                        yield module.finding(
                            self.name, node,
                            f"{dotted}() without an explicit Generator; "
                            "use numpy.random.default_rng(seed)",
                        )
            elif isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                # `for k in x.snapshot()` / `... .snapshot().items()`
                target = None
                if isinstance(it, ast.Call):
                    func = it.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "snapshot"
                    ):
                        target = it
                    elif (
                        isinstance(func, ast.Attribute)
                        and func.attr in ("items", "keys", "values")
                        and isinstance(func.value, ast.Call)
                        and isinstance(func.value.func, ast.Attribute)
                        and func.value.func.attr == "snapshot"
                    ):
                        target = it
                if target is not None:
                    yield module.finding(
                        self.name, target,
                        "iteration over a raw perf snapshot() is "
                        "dict-order-dependent; wrap in sorted(...)",
                    )
