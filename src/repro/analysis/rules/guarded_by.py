"""``guarded-by``: lock-guarded attributes stay guarded everywhere.

In a class that owns a ``threading.Lock``/``RLock``, an instance
attribute assigned under ``with self._lock`` in one method and bare in
another is the PerfRegistry-snapshot class of race PR 9 fixed by hand:
the unguarded write is invisible until two threads interleave on it.

The rule is intra-class and assignment-based: it finds the lock
attributes a class creates in ``__init__`` (including
``threading.Condition(self._lock)`` aliases), classifies every
``self.X = ...`` / ``self.X += ...`` statement as guarded (lexically
inside a ``with self._lock`` block) or bare, and reports attributes
that have both — at each bare write site.  ``__init__`` writes are
construction (happens-before thread start) and never count as bare.
Reads and container mutation (``self.x.append``) are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule
from ._util import dotted_name, str_const

__all__ = ["GuardedByRule"]

_LOCK_FACTORIES = {"Lock", "RLock"}


def _self_attr(node: ast.AST) -> str | None:
    """``x`` for a ``self.x`` attribute node."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes holding a Lock/RLock or a Condition built on one."""
    locks: set[str] = set()
    conditions: dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        attr = _self_attr(node.targets[0])
        if attr is None or not isinstance(node.value, ast.Call):
            continue
        dotted = dotted_name(node.value.func) or ""
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf in _LOCK_FACTORIES:
            locks.add(attr)
        elif leaf == "Condition" and node.value.args:
            wrapped = _self_attr(node.value.args[0])
            if wrapped is not None:
                conditions[attr] = wrapped
    # a Condition over an owned lock guards that lock's attributes too
    locks |= {name for name, tgt in conditions.items() if tgt in locks}
    return locks


class _WriteCollector(ast.NodeVisitor):
    """Classify every ``self.X`` assignment as guarded or bare."""

    def __init__(self, locks: set[str]) -> None:
        self.locks = locks
        self.depth = 0  # with-lock nesting
        self.guarded: dict[str, list[int]] = {}
        self.bare: dict[str, list[int]] = {}

    def visit_With(self, node: ast.With) -> None:
        holds = any(
            (_self_attr(item.context_expr) or "") in self.locks
            for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
        self.depth += 1 if holds else 0
        for stmt in node.body:
            self.visit(stmt)
        self.depth -= 1 if holds else 0

    def _record(self, target: ast.AST, lineno: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record(elt, lineno)
            return
        attr = _self_attr(target)
        if attr is None or attr in self.locks:
            return
        bucket = self.guarded if self.depth else self.bare
        bucket.setdefault(attr, []).append(lineno)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, node.lineno)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, node.lineno)
        self.visit(node.value)


class GuardedByRule(Rule):
    name = "guarded-by"
    description = (
        "attributes assigned under `with self._lock` anywhere must be "
        "assigned under it everywhere outside __init__"
    )

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for cls in module.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = _lock_attrs(cls)
            if not locks:
                continue
            collector = _WriteCollector(locks)
            for stmt in cls.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name != "__init__"
                ):
                    collector.visit(stmt)
            for attr in sorted(set(collector.guarded) & set(collector.bare)):
                for lineno in collector.bare[attr]:
                    yield module.finding(
                        self.name, lineno,
                        f"{cls.name}.{attr} is assigned under a lock at "
                        f"line {collector.guarded[attr][0]} but bare "
                        "here",
                    )
