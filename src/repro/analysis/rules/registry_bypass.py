"""``registry-bypass``: resolve pluggable components through registries.

Where a :mod:`repro.spec.registry` family exists (executors, shared
pools, format families, objectives), importing a concrete
implementation across subsystem boundaries re-couples what the registry
decoupled: the importing module works for the built-in but breaks for
every registered extension, and spec JSON stops being the single
switch.  The rule flags ``from repro.X import ConcreteImpl`` (absolute
or relative) whenever the importing module lives outside the
implementation's home package.  The sanctioned paths are
``registry.resolve(family, name)``, ``ExecutorConfig``,
``make_shared_pool`` and ``calibrated_format``/``make_format``.

Registry *factories* that must import the concrete class they construct
(e.g. the deferred ``RemoteExecutor`` import inside the ``remote``
executor factory) carry a disable comment naming that role.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule

__all__ = ["RegistryBypassRule", "CONCRETE_IMPLS"]

#: concrete implementation name -> (registry family, home packages that
#: may import it directly).  Everything else goes through the registry.
CONCRETE_IMPLS: dict[str, tuple[str, tuple[str, ...]]] = {
    # executor family (ExecutorConfig / registry("executor"))
    "SerialExecutor": ("executor", ("repro.parallel",)),
    "ThreadExecutor": ("executor", ("repro.parallel",)),
    "ProcessExecutor": ("executor", ("repro.parallel",)),
    "RemoteExecutor": ("executor", ("repro.serve",)),
    # shared_pool family (make_shared_pool / registry("shared_pool"))
    "SharedSerialPool": ("shared_pool", ("repro.serve",)),
    "SharedThreadPool": ("shared_pool", ("repro.serve",)),
    "SharedProcessPool": ("shared_pool", ("repro.serve",)),
    "SharedRemotePool": ("shared_pool", ("repro.serve",)),
    # format_family (calibrated_format / make_format)
    "IntFormat": ("format_family", ("repro.numerics",)),
    "MiniFloatFormat": ("format_family", ("repro.numerics",)),
    "AdaptivFloatFormat": ("format_family", ("repro.numerics",)),
    "PositFormat": ("format_family", ("repro.numerics",)),
    "LNSFormat": ("format_family", ("repro.numerics",)),
    "FlintFormat": ("format_family", ("repro.numerics",)),
    "LogPositFormat": ("format_family", ("repro.numerics",)),
    # objective family (registry("objective") / FitnessConfig.objective)
    "OutputObjectiveEvaluator": ("objective", ("repro.quant", "repro.perf")),
}


def _resolve_relative(module: ModuleSource, node: ast.ImportFrom) -> str:
    """Absolute dotted module an ImportFrom refers to."""
    if node.level == 0:
        return node.module or ""
    parts = module.dotted.split(".")
    # level 1 = current package; the module itself is parts[:-1]'s child
    base = parts[: len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _package(module: ModuleSource) -> str:
    """Top two components of the module's dotted path (repro.serve)."""
    return ".".join(module.dotted.split(".")[:2])


class RegistryBypassRule(Rule):
    name = "registry-bypass"
    description = (
        "concrete registry-family implementations are imported only "
        "inside their home package; everyone else resolves by name"
    )

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        home_pkg = _package(module) if module.dotted.startswith(
            "repro."
        ) else ""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            target = _resolve_relative(module, node)
            if not target.startswith("repro."):
                continue
            for alias in node.names:
                entry = CONCRETE_IMPLS.get(alias.name)
                if entry is None:
                    continue
                family, homes = entry
                if any(
                    target == h or target.startswith(h + ".")
                    for h in homes
                ) is False:
                    continue  # not the implementation's real module
                if any(
                    home_pkg == h or home_pkg.startswith(h + ".")
                    for h in homes
                ):
                    continue
                yield module.finding(
                    self.name, node,
                    f"direct import of {alias.name} bypasses the "
                    f"{family!r} registry; resolve it by name "
                    "(or move the import into a registered factory)",
                )
