"""The project lint rules, registered in the ``lint_rule`` family.

Importing this package (the family's bootstrap module) registers every
built-in rule; :func:`repro.analysis.engine.default_rules` instantiates
them through the registry, so downstream code can add project rules the
same way it adds objectives or executors:

    from repro.spec import registry
    registry.register("lint_rule", "my-rule", MyRule)
"""

from ...spec import registry as spec_registry
from .broad_except import BroadExceptRule
from .counter_namespace import CounterNamespaceRule
from .determinism import DeterminismRule
from .guarded_by import GuardedByRule
from .registry_bypass import RegistryBypassRule
from .wire_frames import WireFrameCoverageRule

__all__ = [
    "BroadExceptRule",
    "CounterNamespaceRule",
    "DeterminismRule",
    "GuardedByRule",
    "RegistryBypassRule",
    "WireFrameCoverageRule",
]

for _rule in (
    WireFrameCoverageRule,
    GuardedByRule,
    DeterminismRule,
    CounterNamespaceRule,
    BroadExceptRule,
    RegistryBypassRule,
):
    spec_registry.register("lint_rule", _rule.name, _rule)
