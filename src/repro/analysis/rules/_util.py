"""Shared AST helpers for the project lint rules."""

from __future__ import annotations

import ast

__all__ = [
    "dotted_name",
    "import_aliases",
    "str_const",
    "class_defs",
]


def dotted_name(node: ast.AST) -> str | None:
    """``np.random.default_rng`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> real dotted module for top-level ``import`` forms.

    ``import numpy as np`` maps ``np -> numpy``; ``import os`` maps
    ``os -> os``; ``from numpy import random`` maps
    ``random -> numpy.random``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                real = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = real
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            for alias in node.names:
                if alias.name == "*" or node.module is None:
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def str_const(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def class_defs(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Top-level class name -> ClassDef node."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }
