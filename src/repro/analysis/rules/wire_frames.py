"""``wire-frame-coverage``: no orphan frame ops, no dead handler arms.

The framed wire protocol (:mod:`repro.spec.wire`) is dispatched by hand
in four places — the worker session reader, the remote pool reader, the
daemon session reader, and the search client reader.  Nothing but
convention keeps a newly added ``*_message`` constructor (or a raw
``{"type": ...}`` send) in sync with the ``kind == "..."`` arms on the
other end of the socket.  This rule extracts both sides per channel
from the AST and reports the difference:

* a frame type *sent* on a channel with no handler arm in any of the
  channel's receiver classes is an **orphan op**;
* a handler arm for a type nothing on the channel sends is a **dead
  handler**.

Sends are ``<name>_message(...)`` calls (resolved to their ``"type"``
literal through the constructors in ``repro/spec/wire.py``) and inline
``{"type": "..."}`` dict literals inside the sender classes.  Handler
arms are comparisons of a string literal against ``.get("type")`` (or a
variable assigned from it, or the conventional ``kind`` dispatch
variable).  Connection-scoped frames every peer may emit or ignore
(``ping``/``pong``/``bye``/``error``) are exempt from both directions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Project, Rule
from ._util import dotted_name, str_const

__all__ = ["WireFrameCoverageRule", "CHANNELS"]

#: frames any peer may send or pre-emptively handle: keepalive and
#: connection-teardown traffic is connection-scoped, not protocol drift
_CONNECTION_FRAMES = {"ping", "pong", "bye", "error"}

#: the four directed frame channels of the serve stack:
#: (channel name, sender (module, class) specs, receiver specs)
CHANNELS = (
    (
        "pool->worker",
        (("repro.serve.remote", "SharedRemotePool"),),
        (("repro.serve.remote", "_WorkerSession"),),
    ),
    (
        "worker->pool",
        (
            ("repro.serve.remote", "_WorkerSession"),
            ("repro.serve.remote", "WorkerServer"),
        ),
        (("repro.serve.remote", "SharedRemotePool"),),
    ),
    (
        "client->daemon",
        (("repro.serve.server", "SearchClient"),),
        (
            ("repro.serve.server", "_ServerSession"),
            ("repro.serve.server", "SearchServer"),
        ),
    ),
    (
        "daemon->client",
        (
            ("repro.serve.server", "_ServerSession"),
            ("repro.serve.server", "SearchServer"),
        ),
        (("repro.serve.server", "SearchClient"),),
    ),
)

#: names conventionally bound to ``message.get("type")`` in dispatchers
_KIND_NAMES = {"kind"}


def _wire_constructors(wire: ModuleSource) -> dict[str, str]:
    """``<name>_message`` function -> the ``"type"`` literal it emits."""
    table: dict[str, str] = {}
    for node in wire.tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if not node.name.endswith("_message") or node.name == "frame_message":
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Dict):
                continue
            for key, value in zip(sub.keys, sub.values):
                if key is not None and str_const(key) == "type":
                    lit = str_const(value)
                    if lit is not None:
                        table[node.name] = lit
    return table


def _find_class(module: ModuleSource, name: str) -> ast.ClassDef | None:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _sent_types(
    cls: ast.ClassDef, constructors: dict[str, str]
) -> dict[str, int]:
    """Frame type -> a line where the class sends it."""
    sent: dict[str, int] = {}
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in constructors:
                sent.setdefault(constructors[name], node.lineno)
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if key is not None and str_const(key) == "type":
                    lit = str_const(value)
                    if lit is not None:
                        sent.setdefault(lit, node.lineno)
    return sent


def _is_type_read(node: ast.AST, names: set[str]) -> bool:
    """``X.get("type")`` or a name conventionally bound to it."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return (
            node.func.attr == "get"
            and len(node.args) >= 1
            and str_const(node.args[0]) == "type"
        )
    return isinstance(node, ast.Name) and node.id in names


def _handled_types(cls: ast.ClassDef) -> dict[str, int]:
    """Frame type -> a line where the class has a handler arm for it."""
    names = set(_KIND_NAMES)
    # names assigned from `<msg>.get("type")` anywhere in the class
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_type_read(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    handled: dict[str, int] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        if not any(_is_type_read(op, names) for op in operands):
            continue
        if not all(
            isinstance(op_, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
            for op_ in node.ops
        ):
            continue
        for op in operands:
            lit = str_const(op)
            if lit is not None:
                handled.setdefault(lit, node.lineno)
            elif isinstance(op, (ast.Tuple, ast.Set, ast.List)):
                for elt in op.elts:
                    sub = str_const(elt)
                    if sub is not None:
                        handled.setdefault(sub, node.lineno)
    return handled


class WireFrameCoverageRule(Rule):
    name = "wire-frame-coverage"
    description = (
        "every frame type sent on a wire channel has a handler arm in "
        "the receiving dispatcher, and no dispatcher keeps dead arms"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        wire = project.module("repro.spec.wire")
        if wire is None:
            return
        constructors = _wire_constructors(wire)
        for channel, sender_specs, receiver_specs in CHANNELS:
            sent: dict[str, tuple[ModuleSource, int]] = {}
            handled: dict[str, tuple[ModuleSource, int]] = {}
            missing = False
            for specs, out in (
                (sender_specs, sent), (receiver_specs, handled)
            ):
                extract = _sent_types if out is sent else None
                for mod_name, cls_name in specs:
                    module = project.module(mod_name)
                    cls = (
                        _find_class(module, cls_name)
                        if module is not None else None
                    )
                    if cls is None:
                        missing = True
                        continue
                    types = (
                        _sent_types(cls, constructors)
                        if extract else _handled_types(cls)
                    )
                    for lit, line in types.items():
                        out.setdefault(lit, (module, line))
            if missing:
                # a renamed dispatcher class is itself protocol drift
                yield Finding(
                    self.name, wire.path, 1,
                    f"channel {channel}: dispatcher class list is stale "
                    "(update CHANNELS in repro/analysis/rules/"
                    "wire_frames.py)",
                )
                continue
            for lit in sorted(set(sent) - set(handled) - _CONNECTION_FRAMES):
                module, line = sent[lit]
                yield module.finding(
                    self.name, line,
                    f"orphan op: frame type {lit!r} is sent on "
                    f"{channel} but no receiver dispatcher handles it",
                )
            for lit in sorted(set(handled) - set(sent) - _CONNECTION_FRAMES):
                module, line = handled[lit]
                yield module.finding(
                    self.name, line,
                    f"dead handler: dispatcher arm for {lit!r} on "
                    f"{channel} but nothing sends it",
                )
