"""``broad-except``: every ``except Exception`` is a deliberate choice.

A broad handler at a worker/session/telemetry boundary is often right —
an evaluation failure must become a transported error result, a
subscriber bug must not stall an emitter — but the *same syntax* also
swallows genuine engine bugs.  The rule forces every broad handler to
show its justification:

* re-raise (a ``raise`` statement anywhere in the handler body), or
* carry ``# lint: disable=broad-except -- <reason>`` on the
  ``except`` line, stating the boundary contract it implements.

Bare ``except:`` clauses and ``except BaseException`` are flagged the
same way.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule
from ._util import dotted_name

__all__ = ["BroadExceptRule"]

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> str | None:
    if handler.type is None:
        return "bare except:"
    names = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in names:
        dotted = dotted_name(node)
        if dotted is not None and dotted.rsplit(".", 1)[-1] in _BROAD:
            return f"except {dotted}"
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


class BroadExceptRule(Rule):
    name = "broad-except"
    description = (
        "broad exception handlers must re-raise or carry a justified "
        "disable comment naming the boundary contract"
    )

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _is_broad(node)
            if broad is None or _reraises(node):
                continue
            yield module.finding(
                self.name, node,
                f"{broad} neither re-raises nor justifies itself; "
                "narrow the type, re-raise, or add "
                "`# lint: disable=broad-except -- reason`",
            )
