"""``counter-namespace``: every perf metric name is declared in docs.

Perf counters are created on first use (``perf.counter("fault.x")``),
so a typo or an undocumented namespace silently becomes a new metric.
The counter-namespace table in ``docs/perf.md`` (section ``## Counter
namespaces``) is the source of truth this rule reads; it checks both
directions:

* every ``counter("...")`` / ``timer("...")`` / ``cache("...")``
  literal in the code (including the ``timer_name``/``memo_name``
  evaluator-class attributes) must appear in the table, with the
  matching kind;
* every table row must correspond to a name the code actually uses —
  stale rows are findings too.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import Finding, Project, Rule
from ._util import str_const

__all__ = ["CounterNamespaceRule", "load_declared_metrics"]

_SECTION = "## Counter namespaces"
_ROW = re.compile(r"^\|\s*`(?P<name>[^`]+)`\s*\|\s*(?P<kind>\w+)\s*\|")

#: evaluator-convention class attributes that carry metric names
_NAME_ATTRS = {
    "timer_name": "timer",
    "counter_name": "counter",
    "memo_name": "cache",
    "cache_name": "cache",
}

_FACTORIES = {"counter": "counter", "timer": "timer", "cache": "cache"}


def load_declared_metrics(perf_md_text: str) -> dict[str, tuple[str, int]]:
    """Name -> (kind, table line) from the docs/perf.md table."""
    declared: dict[str, tuple[str, int]] = {}
    in_section = False
    for lineno, line in enumerate(perf_md_text.splitlines(), start=1):
        if line.startswith("## "):
            in_section = line.strip() == _SECTION
            continue
        if not in_section:
            continue
        match = _ROW.match(line.strip())
        if match and match.group("kind") in ("counter", "timer", "cache"):
            declared[match.group("name")] = (match.group("kind"), lineno)
    return declared


class CounterNamespaceRule(Rule):
    name = "counter-namespace"
    description = (
        "perf counter/timer/cache names must appear, with matching "
        "kind, in the docs/perf.md counter-namespace table"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        perf_md = project.root / "docs" / "perf.md"
        if not perf_md.exists():
            yield Finding(self.name, "docs/perf.md", 0,
                          "docs/perf.md is missing")
            return
        declared = load_declared_metrics(perf_md.read_text())
        if not declared:
            yield Finding(
                self.name, "docs/perf.md", 0,
                f"no metric rows under the {_SECTION!r} section",
            )
            return
        namespaces = {name.split(".", 1)[0] for name in declared}
        used: dict[str, str] = {}
        for module in project.modules:
            if not module.dotted.startswith("repro."):
                continue
            for node in ast.walk(module.tree):
                name = kind = None
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _FACTORIES
                    and node.args
                ):
                    name = str_const(node.args[0])
                    kind = _FACTORIES[node.func.attr]
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id in _NAME_ATTRS
                ):
                    name = str_const(node.value)
                    kind = _NAME_ATTRS[node.targets[0].id]
                if name is None:
                    continue
                used[name] = kind
                if name not in declared:
                    ns = name.split(".", 1)[0]
                    hint = (
                        f"add a row to the {_SECTION!r} table"
                        if ns in namespaces
                        else f"namespace {ns!r} is undeclared; add it "
                        f"to the {_SECTION!r} table"
                    )
                    yield module.finding(
                        self.name, node,
                        f"perf {kind} {name!r} is not in the "
                        f"docs/perf.md table ({hint})",
                    )
                elif declared[name][0] != kind:
                    yield module.finding(
                        self.name, node,
                        f"perf {kind} {name!r} is declared as a "
                        f"{declared[name][0]} in docs/perf.md",
                    )
        for name, (kind, lineno) in sorted(declared.items()):
            if name not in used:
                yield Finding(
                    self.name, "docs/perf.md", lineno,
                    f"stale table row: {kind} {name!r} is declared but "
                    "nothing in src/ creates it",
                )
