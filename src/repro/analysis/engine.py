"""The AST lint engine behind ``scripts/run_lint.py``.

A :class:`LintEngine` walks a :class:`Project` (every ``*.py`` under
``src/``, ``scripts/`` and ``benchmarks/``), parses each file once, and
hands the parsed modules to pluggable :class:`Rule` instances.  Rules
emit :class:`Finding` records (rule id, file, line, message, severity);
the engine then filters them through two escape hatches:

* **disable comments** — a ``# lint: disable=rule-a,rule-b -- reason``
  comment suppresses those rules' findings *on that line*.  The reason
  text after ``--`` is mandatory policy (see ``docs/analysis.md``); the
  engine flags reasonless disables with the ``lint-disable`` pseudo-rule
  so a bare escape hatch is itself a finding.
* **baseline** — a committed JSON file of grandfathered finding keys
  (:meth:`Finding.key`: rule, file, message — line numbers excluded so
  unrelated edits don't invalidate it).  ``run_lint.py --baseline``
  rewrites it; CI fails on any finding not in it.

Rules come from the ``lint_rule`` registry family
(:mod:`repro.spec.registry`), so downstream code can register extra
project rules the same way it registers objectives or executors.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..spec import registry as spec_registry

__all__ = [
    "Finding",
    "ModuleSource",
    "Project",
    "Rule",
    "LintEngine",
    "default_rules",
    "load_baseline",
    "run_lint",
    "DEFAULT_TARGETS",
    "BASELINE_FILE",
]

#: directories a default lint run walks, relative to the repo root
DEFAULT_TARGETS = ("src", "scripts", "benchmarks")

#: the committed grandfathered-findings file, relative to the repo root
BASELINE_FILE = "LINT_BASELINE.json"

#: ``lint: disable=rule-a,rule-b`` comments, optional ``-- reason`` tail
_DISABLE = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>[\w,-]+)(?P<reason>\s*--\s*\S.*)?"
)


@dataclass(frozen=True)
class Finding:
    """One structured lint finding."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    severity: str = "error"

    def key(self) -> str:
        """Baseline identity: stable across pure line-number drift."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule}] "
            f"{self.severity}: {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }


class ModuleSource:
    """One parsed python file plus its lint-disable comment map."""

    def __init__(self, root: Path, path: Path) -> None:
        self.abspath = path
        self.path = path.relative_to(root).as_posix()
        self.text = path.read_text()
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(path))
        #: line number -> set of rule names disabled on that line
        self.disabled: dict[int, set[str]] = {}
        #: lines whose disable comment is missing the ``-- reason`` tail
        self.reasonless: list[int] = []
        for lineno, line in enumerate(self.lines, start=1):
            match = _DISABLE.search(line)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            self.disabled[lineno] = {r for r in rules if r}
            if not match.group("reason"):
                self.reasonless.append(lineno)

    @property
    def dotted(self) -> str:
        """Dotted module name (``repro.serve.pool``) when under src/."""
        parts = Path(self.path).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def finding(
        self, rule: str, node_or_line, message: str, severity: str = "error"
    ) -> Finding:
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(rule, self.path, int(line), message, severity)


class Project:
    """The lint engine's view of the repo: parsed modules + the root."""

    def __init__(self, root: Path, targets: Iterable[str] = DEFAULT_TARGETS):
        self.root = Path(root)
        self.modules: list[ModuleSource] = []
        self.parse_errors: list[Finding] = []
        for target in targets:
            base = self.root / target
            if not base.exists():
                continue
            for path in sorted(base.rglob("*.py")):
                try:
                    self.modules.append(ModuleSource(self.root, path))
                except SyntaxError as exc:
                    rel = path.relative_to(self.root).as_posix()
                    self.parse_errors.append(Finding(
                        "parse-error", rel, exc.lineno or 0, str(exc.msg)
                    ))

    def module(self, dotted: str) -> ModuleSource | None:
        """Look up a parsed module by dotted name (``repro.spec.wire``)."""
        for mod in self.modules:
            if mod.dotted == dotted:
                return mod
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` (the id used in findings, disable
    comments and the registry) and override :meth:`check_module` (called
    once per file) and/or :meth:`check_project` (called once with the
    whole project, for cross-file rules).
    """

    name = "abstract-rule"
    description = ""

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


def default_rules() -> list[Rule]:
    """Instantiate every rule registered in the ``lint_rule`` family."""
    family = spec_registry.registry("lint_rule")
    return [family.resolve(name)() for name in family.names()]


def load_baseline(path: Path) -> set[str]:
    """Read the committed baseline; missing file means empty baseline."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    return set(data.get("findings", []))


def save_baseline(path: Path, findings: Iterable[Finding]) -> int:
    keys = sorted({f.key() for f in findings})
    path.write_text(json.dumps(
        {
            "comment": (
                "Grandfathered lint findings (see docs/analysis.md). "
                "Regenerate with: python scripts/run_lint.py --baseline"
            ),
            "findings": keys,
        },
        indent=2,
    ) + "\n")
    return len(keys)


@dataclass
class LintReport:
    """Everything one engine run produced."""

    findings: list[Finding]  # actionable (not disabled, not baselined)
    baselined: list[Finding]
    disabled: list[Finding]
    files: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "baselined": len(self.baselined),
            "disabled": len(self.disabled),
            "files": self.files,
            "rules": self.rules,
        }


class LintEngine:
    """Run a rule set over a :class:`Project` and filter the findings."""

    def __init__(self, rules: Iterable[Rule] | None = None) -> None:
        self.rules = list(rules) if rules is not None else default_rules()

    def run(self, project: Project, baseline: set[str] | None = None):
        baseline = baseline or set()
        raw: list[Finding] = list(project.parse_errors)
        for rule in self.rules:
            for module in project.modules:
                raw.extend(rule.check_module(module))
            raw.extend(rule.check_project(project))
        # a disable comment without a reason is itself a finding
        for module in project.modules:
            for lineno in module.reasonless:
                raw.append(module.finding(
                    "lint-disable", lineno,
                    "disable comment needs a '-- reason' tail",
                ))
        by_path = {m.path: m for m in project.modules}
        report = LintReport(
            findings=[], baselined=[], disabled=[],
            files=len(project.modules),
            rules=[rule.name for rule in self.rules],
        )
        for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
            module = by_path.get(finding.path)
            disabled_here = (
                module is not None
                and finding.rule in module.disabled.get(finding.line, ())
            )
            if disabled_here:
                report.disabled.append(finding)
            elif finding.key() in baseline:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        return report


def run_lint(
    root: Path,
    targets: Iterable[str] = DEFAULT_TARGETS,
    rules: Iterable[Rule] | None = None,
    baseline_path: Path | None = None,
) -> LintReport:
    """One-call front end: build the project, run the rules, filter."""
    root = Path(root)
    if baseline_path is None:
        baseline_path = root / BASELINE_FILE
    project = Project(root, targets)
    engine = LintEngine(rules)
    return engine.run(project, load_baseline(baseline_path))
