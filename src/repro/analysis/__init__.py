"""Project-invariant static analysis (`repro.analysis`).

The serve stack's correctness rests on conventions — a hand-rolled
framed wire protocol, lock-guarded shared state, a repo-wide
bitwise-determinism bar, namespaced perf counters, registry
indirection — that tests can only probe after the fact.  This package
enforces them *mechanically*:

* :mod:`repro.analysis.engine` — an AST lint engine that walks
  ``src/``, ``scripts/`` and ``benchmarks/`` and runs pluggable
  :class:`Rule` classes (registered in the ``lint_rule`` family of
  :mod:`repro.spec.registry`), with a ``lint: disable=<rule>`` escape
  hatch and a committed baseline for grandfathered findings.
* :mod:`repro.analysis.rules` — the project rules: wire-frame
  dispatcher coverage, lock-guarded attribute discipline, engine-path
  determinism, perf-counter namespacing, broad-except triage, and
  registry-bypass detection.
* :mod:`repro.analysis.races` — a runtime lock-order analyzer (an
  instrumented ``threading.Lock`` + acquisition-order graph with cycle
  detection) the serve/obs test suites run under.

Front end: ``scripts/run_lint.py`` (human or ``--json`` output,
``--baseline`` update mode, ``--bench-drift`` record check); the CI
``lint`` leg fails on any non-baselined finding.  See
``docs/analysis.md`` for the rule catalog and policies.
"""

from .engine import (
    Finding,
    LintEngine,
    Project,
    Rule,
    default_rules,
    load_baseline,
    run_lint,
)
from .races import LockOrderMonitor, LockOrderViolation

__all__ = [
    "Finding",
    "LintEngine",
    "LockOrderMonitor",
    "LockOrderViolation",
    "Project",
    "Rule",
    "default_rules",
    "load_baseline",
    "run_lint",
]
