"""Model zoo: build, train, cache, and reload the six benchmark models.

The paper evaluates ResNet18, ResNet50, MobileNetV2, ViT-B, DeiT-S and
Swin-T pre-trained on ImageNet (from pytorchcv).  Here each analogue is
trained once on the synthetic dataset and its weights cached to
``.zoo/<name>.npz`` so every experiment starts from the same checkpoint,
mirroring the role of a pre-trained model hub.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import nn
from ..data import make_dataset
from ..spec import registry
from .mobilenet import mobilenetv2_mini
from .resnet import resnet18_mini, resnet50_mini
from .swin import swin_t_mini
from .vit import deit_s_mini, vit_b_mini

__all__ = ["MODEL_REGISTRY", "TrainRecipe", "get_model", "train_model",
           "evaluate", "zoo_dir", "fp_model_size_mb"]


@dataclass(frozen=True)
class TrainRecipe:
    """Hyper-parameters used to produce a zoo checkpoint."""

    builder: Callable[[], nn.Module]
    epochs: int
    batch_size: int
    lr: float
    optimizer: str  # "sgd" | "adam"
    train_size: int = 3072
    weight_decay: float = 1e-4
    label_smoothing: float = 0.0
    seed: int = 0


MODEL_REGISTRY: dict[str, TrainRecipe] = {
    "resnet18": TrainRecipe(resnet18_mini, epochs=6, batch_size=64, lr=0.05,
                            optimizer="sgd"),
    "resnet50": TrainRecipe(resnet50_mini, epochs=6, batch_size=64, lr=0.05,
                            optimizer="sgd"),
    "mobilenetv2": TrainRecipe(mobilenetv2_mini, epochs=5, batch_size=64,
                               lr=0.05, optimizer="sgd"),
    "vit_b": TrainRecipe(vit_b_mini, epochs=4, batch_size=64, lr=1e-3,
                         optimizer="adam", label_smoothing=0.1),
    "deit_s": TrainRecipe(deit_s_mini, epochs=6, batch_size=64, lr=1e-3,
                          optimizer="adam", label_smoothing=0.1),
    "swin_t": TrainRecipe(swin_t_mini, epochs=8, batch_size=64, lr=1e-3,
                          optimizer="adam", label_smoothing=0.1),
}

CNN_MODELS = ("resnet18", "resnet50", "mobilenetv2")
VIT_MODELS = ("vit_b", "deit_s", "swin_t")


def zoo_dir() -> Path:
    """Checkpoint directory (override with REPRO_ZOO_DIR)."""
    root = os.environ.get("REPRO_ZOO_DIR")
    if root is None:
        root = Path(__file__).resolve().parents[3] / ".zoo"
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def evaluate(model: nn.Module, images: np.ndarray, labels: np.ndarray,
             batch_size: int = 128) -> float:
    """Top-1 accuracy (%) of a model in eval mode."""
    model.eval()
    hits = 0
    for start in range(0, len(labels), batch_size):
        logits = model(images[start : start + batch_size])
        hits += int((logits.argmax(axis=-1) == labels[start : start + batch_size]).sum())
    return 100.0 * hits / len(labels)


def train_model(name: str, verbose: bool = False) -> tuple[nn.Module, dict]:
    """Train a registry model from scratch; returns (model, metadata)."""
    recipe = MODEL_REGISTRY[name]
    nn.seed(recipe.seed + 0x5EED)  # deterministic parameter init
    rng = np.random.default_rng(recipe.seed)
    train = make_dataset("train", recipe.train_size, seed=recipe.seed)
    val = make_dataset("val", 512, seed=recipe.seed)
    model = recipe.builder()
    if recipe.optimizer == "sgd":
        opt = nn.SGD(model.parameters(), lr=recipe.lr, momentum=0.9,
                     weight_decay=recipe.weight_decay)
    else:
        opt = nn.Adam(model.parameters(), lr=recipe.lr,
                      weight_decay=recipe.weight_decay)
    t0 = time.time()
    for epoch in range(recipe.epochs):
        model.train()
        losses = []
        # simple cosine decay
        scale = 0.5 * (1 + np.cos(np.pi * epoch / recipe.epochs))
        opt.lr = recipe.lr * max(scale, 0.05)
        for xb, yb in train.batches(recipe.batch_size, rng):
            opt.zero_grad()
            logits = model(xb)
            loss, grad = nn.cross_entropy(logits, yb,
                                          label_smoothing=recipe.label_smoothing)
            model.backward(grad)
            opt.step()
            losses.append(loss)
        if verbose:
            acc = evaluate(model, val.images, val.labels)
            print(f"[{name}] epoch {epoch + 1}/{recipe.epochs} "
                  f"loss={np.mean(losses):.3f} val={acc:.1f}%")
    meta = {
        "name": name,
        "val_top1": evaluate(model, val.images, val.labels),
        "train_seconds": round(time.time() - t0, 1),
        "params": model.num_parameters(),
        "epochs": recipe.epochs,
    }
    return model, meta


def get_model(name: str, retrain: bool = False, verbose: bool = False) -> nn.Module:
    """Load a cached checkpoint, training and caching it on first use.

    Returned models carry a ``wire_builder`` tag — the ``(module,
    qualname)`` of their zero-arg architecture builder — so
    :mod:`repro.spec.wire` can name them on the serve pool's JSON wire
    (architecture by builder reference, weights as the live state dict).
    """
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; choose from {sorted(MODEL_REGISTRY)}")
    builder = MODEL_REGISTRY[name].builder
    ckpt = zoo_dir() / f"{name}.npz"
    meta_path = zoo_dir() / f"{name}.json"
    if ckpt.exists() and not retrain:
        model = builder()
        with np.load(ckpt) as data:
            model.load_state_dict({k: data[k] for k in data.files})
    else:
        model, meta = train_model(name, verbose=verbose)
        np.savez_compressed(ckpt, **model.state_dict())
        meta_path.write_text(json.dumps(meta, indent=2))
    model.eval()
    model.wire_builder = (builder.__module__, builder.__qualname__)
    return model


def fp_model_size_mb(model: nn.Module) -> float:
    """FP32 model size in MB (4 bytes/param), the Table 1 'Model Size'."""
    return model.num_parameters() * 4 / 1e6


def _zoo_loader(name: str):
    """Spec-registry loader for a trained checkpoint (trains + caches on
    first use, so resolving ``zoo:<name>`` is deterministic)."""

    def load() -> nn.Module:
        return get_model(name)

    load.__name__ = f"load_zoo_{name}"
    return load


for _name in MODEL_REGISTRY:
    registry.register("model", f"zoo:{_name}", _zoo_loader(_name))
