"""ResNet-18/50 analogues (He et al.) scaled to 32×32 synthetic images.

Architecturally faithful: BasicBlock for ResNet-18, Bottleneck (4×
expansion) for ResNet-50, stage layouts [2,2,2,2] and [3,4,6,3], stride-2
downsampling at stage boundaries with 1×1 projection shortcuts.  Channel
widths are scaled down so the models train in seconds on CPU while still
exhibiting the layer-wise weight-distribution variance of Fig. 1(a).
"""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = ["BasicBlock", "Bottleneck", "ResNet", "resnet18_mini", "resnet50_mini"]


def _conv_bn(cin: int, cout: int, k: int, stride: int = 1) -> nn.Sequential:
    return nn.Sequential(
        nn.Conv2d(cin, cout, k, stride=stride, padding=k // 2, bias=False),
        nn.BatchNorm2d(cout),
    )


class BasicBlock(nn.Module):
    """conv3-bn-relu-conv3-bn + identity/projection shortcut, then relu."""

    expansion = 1

    def __init__(self, cin: int, cout: int, stride: int = 1) -> None:
        super().__init__()
        self.body = nn.Sequential(
            nn.Conv2d(cin, cout, 3, stride=stride, padding=1, bias=False),
            nn.BatchNorm2d(cout),
            nn.ReLU(),
            nn.Conv2d(cout, cout, 3, padding=1, bias=False),
            nn.BatchNorm2d(cout),
        )
        self.shortcut = (
            _conv_bn(cin, cout, 1, stride) if stride != 1 or cin != cout else None
        )
        self.relu = nn.ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.body(x)
        skip = x if self.shortcut is None else self.shortcut(x)
        return self.relu(main + skip)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.relu.backward(grad)
        g_skip = g if self.shortcut is None else self.shortcut.backward(g)
        return self.body.backward(g) + g_skip


class Bottleneck(nn.Module):
    """1×1 reduce — 3×3 — 1×1 expand (×4) with shortcut (ResNet-50)."""

    expansion = 4

    def __init__(self, cin: int, width: int, stride: int = 1) -> None:
        super().__init__()
        cout = width * self.expansion
        self.body = nn.Sequential(
            nn.Conv2d(cin, width, 1, bias=False),
            nn.BatchNorm2d(width),
            nn.ReLU(),
            nn.Conv2d(width, width, 3, stride=stride, padding=1, bias=False),
            nn.BatchNorm2d(width),
            nn.ReLU(),
            nn.Conv2d(width, cout, 1, bias=False),
            nn.BatchNorm2d(cout),
        )
        self.shortcut = (
            _conv_bn(cin, cout, 1, stride) if stride != 1 or cin != cout else None
        )
        self.relu = nn.ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.body(x)
        skip = x if self.shortcut is None else self.shortcut(x)
        return self.relu(main + skip)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.relu.backward(grad)
        g_skip = g if self.shortcut is None else self.shortcut.backward(g)
        return self.body.backward(g) + g_skip


class ResNet(nn.Module):
    def __init__(
        self,
        block: type,
        layers: list[int],
        widths: list[int],
        num_classes: int,
        in_channels: int = 3,
    ) -> None:
        super().__init__()
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, widths[0], 3, padding=1, bias=False),
            nn.BatchNorm2d(widths[0]),
            nn.ReLU(),
        )
        stages = []
        cin = widths[0]
        for i, (count, width) in enumerate(zip(layers, widths)):
            for j in range(count):
                stride = 2 if (i > 0 and j == 0) else 1
                stages.append(block(cin, width, stride))
                cin = width * block.expansion
        self.stages = nn.Sequential(*stages)
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(cin, num_classes)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.stages(x)
        x = self.pool(x)
        return self.head(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.head.backward(grad)
        g = self.pool.backward(g)
        g = self.stages.backward(g)
        return self.stem.backward(g)


def resnet18_mini(num_classes: int = 16) -> ResNet:
    """ResNet-18 analogue: BasicBlock ×[2,2,2,2], widths 16→128."""
    return ResNet(BasicBlock, [2, 2, 2, 2], [16, 32, 64, 128], num_classes)


def resnet50_mini(num_classes: int = 16) -> ResNet:
    """ResNet-50 analogue: Bottleneck ×[3,4,6,3], widths 8→64 (×4 expand)."""
    return ResNet(Bottleneck, [3, 4, 6, 3], [8, 16, 32, 64], num_classes)
