"""Vision Transformer analogues: ViT-B and DeiT-S (scaled down).

Faithful structure: conv patch embedding, learned class token and position
embeddings, pre-norm encoder blocks (LN → MHSA → residual, LN → MLP →
residual), final LN, classification head on the class token.  The DeiT
variant adds the distillation token and averages the two heads at
inference, as in Touvron et al.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Parameter

__all__ = ["EncoderBlock", "VisionTransformer", "vit_b_mini", "deit_s_mini"]


class Mlp(nn.Module):
    def __init__(self, dim: int, hidden: int) -> None:
        super().__init__()
        self.fc1 = nn.Linear(dim, hidden)
        self.act = nn.GELU()
        self.fc2 = nn.Linear(hidden, dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad)))


class EncoderBlock(nn.Module):
    """Pre-norm transformer block: two residual sub-layers."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 4.0) -> None:
        super().__init__()
        self.norm1 = nn.LayerNorm(dim)
        self.attn = nn.MultiHeadSelfAttention(dim, num_heads)
        self.norm2 = nn.LayerNorm(dim)
        self.mlp = Mlp(dim, int(dim * mlp_ratio))

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = grad + self.norm2.backward(self.mlp.backward(grad))
        return g + self.norm1.backward(self.attn.backward(g))


class VisionTransformer(nn.Module):
    def __init__(
        self,
        num_classes: int,
        image_size: int = 32,
        patch_size: int = 4,
        dim: int = 96,
        depth: int = 6,
        num_heads: int = 4,
        mlp_ratio: float = 4.0,
        distilled: bool = False,
    ) -> None:
        super().__init__()
        if image_size % patch_size:
            raise ValueError("image size must be divisible by patch size")
        self.dim = dim
        self.distilled = distilled
        self.num_prefix = 2 if distilled else 1
        n_patches = (image_size // patch_size) ** 2
        self.patch_embed = nn.Conv2d(3, dim, patch_size, stride=patch_size)
        rng = np.random.default_rng(0)
        self.cls_token = Parameter(rng.normal(0, 0.02, (1, 1, dim)))
        if distilled:
            self.dist_token = Parameter(rng.normal(0, 0.02, (1, 1, dim)))
        self.pos_embed = Parameter(
            rng.normal(0, 0.02, (1, n_patches + self.num_prefix, dim))
        )
        self.blocks = nn.Sequential(
            *[EncoderBlock(dim, num_heads, mlp_ratio) for _ in range(depth)]
        )
        self.norm = nn.LayerNorm(dim)
        self.head = nn.Linear(dim, num_classes)
        if distilled:
            self.head_dist = nn.Linear(dim, num_classes)
        self._cache_b: int | None = None
        self._grid: tuple[int, int] | None = None

    def _tokens(self, x: np.ndarray) -> np.ndarray:
        fm = self.patch_embed(x)  # (B, D, H', W')
        b, d, h, w = fm.shape
        self._grid = (h, w)
        return fm.reshape(b, d, h * w).transpose(0, 2, 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        tokens = self._tokens(x)  # (B, N, D)
        b = tokens.shape[0]
        self._cache_b = b
        prefix = [np.broadcast_to(self.cls_token.data, (b, 1, self.dim))]
        if self.distilled:
            prefix.append(np.broadcast_to(self.dist_token.data, (b, 1, self.dim)))
        seq = np.concatenate(prefix + [tokens], axis=1) + self.pos_embed.data
        seq = self.blocks(seq)
        seq = self.norm(seq)
        logits = self.head(seq[:, 0])
        if self.distilled:
            logits = (logits + self.head_dist(seq[:, 1])) / 2.0
        return logits

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache_b is not None and self._grid is not None
        b = self._cache_b
        n_total = self.pos_embed.data.shape[1]
        g_seq = np.zeros((b, n_total, self.dim))
        if self.distilled:
            g_seq[:, 0] = self.head.backward(grad / 2.0)
            g_seq[:, 1] = self.head_dist.backward(grad / 2.0)
        else:
            g_seq[:, 0] = self.head.backward(grad)
        g_seq = self.norm.backward(g_seq)
        g_seq = self.blocks.backward(g_seq)
        self.pos_embed.accumulate(g_seq.sum(axis=0, keepdims=True))
        self.cls_token.accumulate(g_seq[:, :1].sum(axis=0, keepdims=True))
        start = 1
        if self.distilled:
            self.dist_token.accumulate(g_seq[:, 1:2].sum(axis=0, keepdims=True))
            start = 2
        g_tokens = g_seq[:, start:]  # (B, N, D)
        h, w = self._grid
        g_fm = g_tokens.transpose(0, 2, 1).reshape(b, self.dim, h, w)
        return self.patch_embed.backward(g_fm)


def vit_b_mini(num_classes: int = 16) -> VisionTransformer:
    """ViT-B analogue: dim 96, depth 6, 4 heads, patch 4 on 32×32."""
    return VisionTransformer(num_classes, dim=96, depth=6, num_heads=4)


def deit_s_mini(num_classes: int = 16) -> VisionTransformer:
    """DeiT-S analogue: dim 64, depth 5, 4 heads, distillation token."""
    return VisionTransformer(
        num_classes, dim=64, depth=5, num_heads=4, distilled=True
    )
