"""MobileNetV2 analogue (Sandler et al.) with inverted residual blocks.

Faithful block structure: 1×1 expansion → depthwise 3×3 → 1×1 linear
projection, with residual connection when stride is 1 and channel counts
match.  Depthwise convolutions exercise the grouped-conv path of the
framework and give MobileNet its characteristically *wide* per-layer
weight-distribution spread (visible in the fig1 experiment).
"""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = ["InvertedResidual", "MobileNetV2", "mobilenetv2_mini"]


class InvertedResidual(nn.Module):
    def __init__(self, cin: int, cout: int, stride: int, expand: int) -> None:
        super().__init__()
        hidden = cin * expand
        layers: list[nn.Module] = []
        if expand != 1:
            layers += [
                nn.Conv2d(cin, hidden, 1, bias=False),
                nn.BatchNorm2d(hidden),
                nn.ReLU(),
            ]
        layers += [
            nn.Conv2d(hidden, hidden, 3, stride=stride, padding=1,
                      groups=hidden, bias=False),
            nn.BatchNorm2d(hidden),
            nn.ReLU(),
            nn.Conv2d(hidden, cout, 1, bias=False),
            nn.BatchNorm2d(cout),
        ]
        self.body = nn.Sequential(*layers)
        self.use_residual = stride == 1 and cin == cout

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.body(x)
        return out + x if self.use_residual else out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.body.backward(grad)
        return g + grad if self.use_residual else g


class MobileNetV2(nn.Module):
    def __init__(
        self,
        num_classes: int,
        settings: list[tuple[int, int, int, int]],  # (expand, cout, count, stride)
        stem_channels: int = 16,
        last_channels: int = 128,
    ) -> None:
        super().__init__()
        self.stem = nn.Sequential(
            nn.Conv2d(3, stem_channels, 3, padding=1, bias=False),
            nn.BatchNorm2d(stem_channels),
            nn.ReLU(),
        )
        blocks: list[nn.Module] = []
        cin = stem_channels
        for expand, cout, count, stride in settings:
            for j in range(count):
                blocks.append(InvertedResidual(cin, cout, stride if j == 0 else 1, expand))
                cin = cout
        self.blocks = nn.Sequential(*blocks)
        self.tail = nn.Sequential(
            nn.Conv2d(cin, last_channels, 1, bias=False),
            nn.BatchNorm2d(last_channels),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(last_channels, num_classes)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.blocks(x)
        x = self.tail(x)
        x = self.pool(x)
        return self.head(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.head.backward(grad)
        g = self.pool.backward(g)
        g = self.tail.backward(g)
        g = self.blocks.backward(g)
        return self.stem.backward(g)


def mobilenetv2_mini(num_classes: int = 16) -> MobileNetV2:
    """MobileNetV2 analogue: 6 inverted-residual stages on 32×32 inputs."""
    settings = [
        # expand, cout, count, stride
        (1, 16, 1, 1),
        (4, 24, 2, 2),
        (4, 32, 2, 1),
        (4, 48, 2, 2),
        (4, 64, 1, 1),
        (4, 96, 1, 2),
    ]
    return MobileNetV2(num_classes, settings)
