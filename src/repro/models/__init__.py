"""Model zoo: ResNet/MobileNet/ViT/DeiT/Swin analogues of the paper's
benchmark suite, trained on the synthetic dataset and cached on disk.
"""

from .mobilenet import InvertedResidual, MobileNetV2, mobilenetv2_mini
from .resnet import BasicBlock, Bottleneck, ResNet, resnet18_mini, resnet50_mini
from .swin import PatchMerging, SwinBlock, SwinTransformer, swin_t_mini
from .tiny import tiny_mlp, tiny_resnet
from .vit import EncoderBlock, VisionTransformer, deit_s_mini, vit_b_mini
from .zoo import (
    CNN_MODELS,
    MODEL_REGISTRY,
    TrainRecipe,
    VIT_MODELS,
    evaluate,
    fp_model_size_mb,
    get_model,
    train_model,
    zoo_dir,
)

__all__ = [
    "BasicBlock",
    "Bottleneck",
    "CNN_MODELS",
    "EncoderBlock",
    "InvertedResidual",
    "MODEL_REGISTRY",
    "MobileNetV2",
    "PatchMerging",
    "ResNet",
    "SwinBlock",
    "SwinTransformer",
    "TrainRecipe",
    "VIT_MODELS",
    "VisionTransformer",
    "deit_s_mini",
    "evaluate",
    "fp_model_size_mb",
    "get_model",
    "mobilenetv2_mini",
    "resnet18_mini",
    "resnet50_mini",
    "swin_t_mini",
    "tiny_mlp",
    "tiny_resnet",
    "train_model",
    "vit_b_mini",
    "zoo_dir",
]
