"""Swin Transformer analogue (Liu et al.): windowed attention + merging.

Faithful signature pieces: alternating W-MSA / shifted SW-MSA blocks with
the boundary attention mask, patch merging (2×2 concat + linear reduce)
between stages, pre-norm residual MLPs, mean-pooled head.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .vit import Mlp

__all__ = ["SwinBlock", "PatchMerging", "SwinTransformer", "swin_t_mini"]


class SwinBlock(nn.Module):
    """LN → (S)W-MSA → residual, LN → MLP → residual on (B,H,W,D) maps."""

    def __init__(
        self, dim: int, num_heads: int, window: int, shift: int,
        mlp_ratio: float = 4.0,
    ) -> None:
        super().__init__()
        self.norm1 = nn.LayerNorm(dim)
        self.attn = nn.WindowAttention(dim, num_heads, window, shift)
        self.norm2 = nn.LayerNorm(dim)
        self.mlp = Mlp(dim, int(dim * mlp_ratio))

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = grad + self.norm2.backward(self.mlp.backward(grad))
        return g + self.norm1.backward(self.attn.backward(g))


class PatchMerging(nn.Module):
    """2×2 neighbourhood concat (4D) + linear reduction to 2D channels."""

    def __init__(self, dim: int) -> None:
        super().__init__()
        self.dim = dim
        self.norm = nn.LayerNorm(4 * dim)
        self.reduce = nn.Linear(4 * dim, 2 * dim, bias=False)
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, h, w, d = x.shape
        if h % 2 or w % 2:
            raise ValueError("feature map must have even spatial dims")
        self._shape = x.shape
        quads = np.concatenate(
            [x[:, 0::2, 0::2], x[:, 1::2, 0::2], x[:, 0::2, 1::2], x[:, 1::2, 1::2]],
            axis=-1,
        )  # (B, H/2, W/2, 4D)
        return self.reduce(self.norm(quads))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        b, h, w, d = self._shape
        g = self.norm.backward(self.reduce.backward(grad))  # (B,H/2,W/2,4D)
        out = np.zeros((b, h, w, d))
        out[:, 0::2, 0::2] = g[..., 0 * d : 1 * d]
        out[:, 1::2, 0::2] = g[..., 1 * d : 2 * d]
        out[:, 0::2, 1::2] = g[..., 2 * d : 3 * d]
        out[:, 1::2, 1::2] = g[..., 3 * d : 4 * d]
        return out


class SwinTransformer(nn.Module):
    def __init__(
        self,
        num_classes: int,
        image_size: int = 32,
        patch_size: int = 4,
        dim: int = 48,
        depths: tuple[int, ...] = (2, 2),
        num_heads: tuple[int, ...] = (3, 6),
        window: int = 4,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.patch_embed = nn.Conv2d(3, dim, patch_size, stride=patch_size)
        stages: list[nn.Module] = []
        d = dim
        for s, (depth, heads) in enumerate(zip(depths, num_heads)):
            if s > 0:
                stages.append(PatchMerging(d))
                d *= 2
            for i in range(depth):
                shift = 0 if i % 2 == 0 else window // 2
                stages.append(SwinBlock(d, heads, window, shift))
        self.stages = nn.Sequential(*stages)
        self.norm = nn.LayerNorm(d)
        self.head = nn.Linear(d, num_classes)
        self._map_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        fm = self.patch_embed(x)  # (B, D, H', W')
        fm = fm.transpose(0, 2, 3, 1)  # (B, H', W', D)
        fm = self.stages(fm)
        fm = self.norm(fm)
        self._map_shape = fm.shape
        pooled = fm.mean(axis=(1, 2))
        return self.head(pooled)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._map_shape is not None
        b, h, w, d = self._map_shape
        g_pool = self.head.backward(grad)  # (B, D)
        g_fm = np.broadcast_to(g_pool[:, None, None, :], (b, h, w, d)) / (h * w)
        g_fm = self.norm.backward(np.ascontiguousarray(g_fm))
        g_fm = self.stages.backward(g_fm)
        g = g_fm.transpose(0, 3, 1, 2)
        return self.patch_embed.backward(np.ascontiguousarray(g))


def swin_t_mini(num_classes: int = 16) -> SwinTransformer:
    """Swin-T analogue: 2 stages (dims 48→96), shifted 4×4 windows."""
    return SwinTransformer(num_classes)
