"""Tiny deterministic models for spec files, CI smoke runs, and docs.

These are the smallest models that still exercise the full LPQ
pipeline (BatchNorm recalibration, multi-layer block search, activation
derivation).  Each registry entry is a *loader*: it seeds the parameter
RNG itself, so resolving ``"tiny:resnet"`` from a JSON spec yields the
same weights in every process — the property the spec layer's
bitwise-reproducibility contract rests on.
"""

from __future__ import annotations

from .. import nn
from ..spec import registry

__all__ = ["tiny_resnet", "tiny_mlp", "TINY_SEED"]

#: parameter-init seed used by every tiny loader
TINY_SEED = 0


class TinyResNet(nn.Module):
    """Four quantizable layers: Conv-BN-ReLU ×2 (strided), pool, head."""

    def __init__(self, channels: int = 6, num_classes: int = 8) -> None:
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(3, channels, 3, padding=1, bias=False),
            nn.BatchNorm2d(channels),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(channels, channels, 3, padding=1, bias=False),
            nn.BatchNorm2d(channels),
            nn.ReLU(),
            nn.Conv2d(channels, channels, 3, padding=1, bias=False),
            nn.BatchNorm2d(channels),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool()
        self.head = nn.Linear(channels, num_classes)

    def forward(self, x):
        return self.head(self.pool(self.features(x)))


class TinyMLP(nn.Module):
    """BN-free pooled MLP: the cheapest end-to-end search there is."""

    def __init__(self, hidden: int = 12, num_classes: int = 8) -> None:
        super().__init__()
        self.pool = nn.GlobalAvgPool()
        self.fc1 = nn.Linear(3, hidden)
        self.act = nn.ReLU()
        self.fc2 = nn.Linear(hidden, num_classes)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(self.pool(x))))


def tiny_resnet() -> nn.Module:
    """Deterministic TinyResNet instance (seeded, eval mode)."""
    nn.seed(TINY_SEED)
    model = TinyResNet()
    model.eval()
    return model


def tiny_mlp() -> nn.Module:
    """Deterministic TinyMLP instance (seeded, eval mode)."""
    nn.seed(TINY_SEED)
    model = TinyMLP()
    model.eval()
    return model


registry.register("model", "tiny:resnet", tiny_resnet)
registry.register("model", "tiny:mlp", tiny_mlp)
