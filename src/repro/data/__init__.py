"""Synthetic data substrate standing in for ImageNet (see
docs/design.md for why a procedural dataset preserves what the
reproduction needs)."""

from ..spec import registry
from .synthetic import (
    NUM_CLASSES,
    SyntheticImageDataset,
    calibration_batch,
    make_dataset,
)

# the built-in calibration source of CalibSpec descriptors:
# (batch, seed) -> images
registry.register("calib", "synthetic", calibration_batch)

__all__ = [
    "NUM_CLASSES",
    "SyntheticImageDataset",
    "calibration_batch",
    "make_dataset",
]
