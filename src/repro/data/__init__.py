"""Synthetic data substrate standing in for ImageNet (see DESIGN.md)."""

from .synthetic import (
    NUM_CLASSES,
    SyntheticImageDataset,
    calibration_batch,
    make_dataset,
)

__all__ = [
    "NUM_CLASSES",
    "SyntheticImageDataset",
    "calibration_batch",
    "make_dataset",
]
