"""Synthetic image classification dataset (ImageNet stand-in).

The paper evaluates on ImageNet with pytorchcv pre-trained models; this
offline environment has neither, so we substitute a deterministic,
procedurally generated 16-class dataset of 3×32×32 images.  What matters
for the reproduction is preserved:

* models *trained* on it develop layer-wise weight distributions with the
  heterogeneity of Fig. 1(a) (verified in the fig1 experiment), and
* top-1 accuracy responds smoothly to quantization error, so quantization
  methods can be ranked exactly as the paper ranks them.

Classes are parametric texture/shape families (gratings, checkerboards,
Gaussian blobs, stripes) with per-class parameter ranges plus per-sample
jitter, color cast, and additive noise — hard enough that a linear model
cannot solve it, easy enough that the mini CNNs/ViTs reach high accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticImageDataset", "make_dataset", "calibration_batch", "NUM_CLASSES"]

NUM_CLASSES = 16
_IMAGE_SIZE = 32


@dataclass(frozen=True)
class SyntheticImageDataset:
    """Immutable bundle of images (N, 3, S, S) float64 and labels (N,)."""

    images: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield (images, labels) minibatches, optionally shuffled."""
        idx = np.arange(len(self))
        if rng is not None:
            rng.shuffle(idx)
        for start in range(0, len(self), batch_size):
            sel = idx[start : start + batch_size]
            yield self.images[sel], self.labels[sel]


def _grating(rng: np.random.Generator, size: int, freq: float, angle: float):
    """Oriented sinusoidal grating with random phase."""
    yy, xx = np.mgrid[0:size, 0:size] / size
    theta = angle + rng.uniform(-0.15, 0.15)
    phase = rng.uniform(0, 2 * np.pi)
    proj = xx * np.cos(theta) + yy * np.sin(theta)
    return np.sin(2 * np.pi * freq * proj + phase)


def _checker(rng: np.random.Generator, size: int, cells: int):
    """Checkerboard with `cells` squares per side and random offset."""
    off = rng.integers(0, size)
    yy, xx = np.mgrid[0:size, 0:size]
    return (((xx + off) * cells // size + (yy + off) * cells // size) % 2) * 2.0 - 1.0


def _blobs(rng: np.random.Generator, size: int, count: int, sigma: float):
    """Sum of Gaussian bumps at random positions."""
    yy, xx = np.mgrid[0:size, 0:size]
    img = np.zeros((size, size))
    for _ in range(count):
        cy, cx = rng.uniform(4, size - 4, 2)
        img += np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))
    return img / max(count, 1) * 2.0 - 0.5

def _rings(rng: np.random.Generator, size: int, freq: float):
    """Concentric rings around a random centre."""
    cy, cx = rng.uniform(size * 0.3, size * 0.7, 2)
    yy, xx = np.mgrid[0:size, 0:size]
    r = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2) / size
    return np.sin(2 * np.pi * freq * r + rng.uniform(0, 2 * np.pi))


#: class id -> (generator, kwargs). 4 families × 4 variants = 16 classes.
_CLASS_SPECS = (
    [("grating", {"freq": f, "angle": a}) for f, a in
     [(2.0, 0.0), (2.0, np.pi / 4), (5.0, 0.0), (5.0, np.pi / 4)]]
    + [("checker", {"cells": c}) for c in (2, 4, 8, 16)]
    + [("blobs", {"count": c, "sigma": s}) for c, s in
       [(1, 3.0), (3, 2.0), (6, 1.5), (10, 1.0)]]
    + [("rings", {"freq": f}) for f in (1.5, 3.0, 5.0, 8.0)]
)


def _render(rng: np.random.Generator, label: int, size: int) -> np.ndarray:
    kind, kwargs = _CLASS_SPECS[label]
    if kind == "grating":
        base = _grating(rng, size, **kwargs)
    elif kind == "checker":
        base = _checker(rng, size, **kwargs)
    elif kind == "blobs":
        base = _blobs(rng, size, **kwargs)
    else:
        base = _rings(rng, size, **kwargs)
    # random per-channel gain/offset gives a colour cast; noise on top
    img = np.empty((3, size, size))
    for c in range(3):
        gain = rng.uniform(0.6, 1.4)
        offset = rng.uniform(-0.2, 0.2)
        img[c] = base * gain + offset
    img += rng.normal(0.0, 0.25, img.shape)
    return img


def make_dataset(
    split: str,
    n: int,
    seed: int = 0,
    num_classes: int = NUM_CLASSES,
    image_size: int = _IMAGE_SIZE,
) -> SyntheticImageDataset:
    """Deterministic dataset; ``split`` decorrelates train/val/test streams."""
    if num_classes > NUM_CLASSES:
        raise ValueError(f"at most {NUM_CLASSES} classes available")
    split_salt = {"train": 0, "val": 1, "test": 2}.get(split)
    if split_salt is None:
        raise ValueError(f"unknown split {split!r}")
    rng = np.random.default_rng([seed, split_salt])
    labels = rng.integers(0, num_classes, n)
    images = np.stack([_render(rng, int(y), image_size) for y in labels])
    return SyntheticImageDataset(
        images=images.astype(np.float32), labels=labels
    )


def calibration_batch(n: int = 128, seed: int = 0) -> np.ndarray:
    """Unlabelled calibration images — the paper uses 128 training images."""
    return make_dataset("train", n, seed=seed ^ 0x5EED).images
