"""Sweep files: one base spec × a parameter grid → a named spec fleet.

A sweep file is a JSON document describing the classic experiment
pattern the ROADMAP called for — "one spec × a parameter grid":

.. code-block:: json

    {
      "version": 1,
      "name": "width-study",
      "base": { ... a serialized SearchSpec ... },
      "grid": {
        "seed": [3, 4],
        "config.population": [4, 8]
      }
    }

``grid`` maps dotted field paths *into the base spec's dict form* to
value lists; :func:`expand_sweep` takes the Cartesian product (keys in
file order, values in list order — fully deterministic) and returns one
named :class:`~repro.spec.SearchSpec` per combination.  Each job's name
is the sweep name plus its coordinate (``width-study-seed3-population4``
…), so results stay attributable, and every expanded spec is validated
by the usual :meth:`~repro.spec.SearchSpec.from_dict` — a typo'd path
or value fails the whole sweep up front, before any search runs.

``scripts/run_search.py --sweep grid.json`` is the CLI front end: it
expands the file and runs the fleet through one shared pool via
:func:`repro.serve.lpq_quantize_many` (the committed example lives at
``examples/specs/tiny_sweep.json``).

>>> from repro.spec.sweep import expand_sweep
>>> specs = expand_sweep({
...     "version": 1,
...     "name": "demo",
...     "base": {"model": "tiny:mlp", "calib": {"batch": 4}},
...     "grid": {"seed": [1, 2], "config.population": [3]},
... })
>>> sorted(specs)
['demo-seed1-population3', 'demo-seed2-population3']
>>> specs["demo-seed2-population3"].seed
2
>>> specs["demo-seed1-population3"].config.population
3
"""

from __future__ import annotations

import copy
import itertools
import json
from pathlib import Path

from .spec import SearchSpec

__all__ = ["SWEEP_VERSION", "expand_sweep", "load_sweep"]

#: wire-format version stamped into every sweep file
SWEEP_VERSION = 1


def _set_path(data: dict, path: str, value) -> None:
    """Set ``data[a][b][c] = value`` for path ``"a.b.c"``, creating
    intermediate dicts where the base spec left a field ``None`` or
    absent (e.g. sweeping ``fitness.fast`` over a spec with no explicit
    fitness section)."""
    parts = path.split(".")
    node = data
    for part in parts[:-1]:
        child = node.get(part)
        if not isinstance(child, dict):
            child = {}
            node[part] = child
        node = child
    node[parts[-1]] = value


def _coordinate(path: str, value) -> str:
    """One name component per grid axis: final path segment + value."""
    leaf = path.split(".")[-1]
    if isinstance(value, (list, tuple)):
        text = "x".join(str(v) for v in value)
    else:
        text = str(value)
    return f"{leaf}{text.replace(' ', '')}"


def expand_sweep(payload: dict) -> dict[str, SearchSpec]:
    """Expand a sweep document into ``{job name: SearchSpec}``.

    Deterministic: grid keys in document order, values in list order,
    Cartesian product in :func:`itertools.product` order.  Raises
    ``ValueError`` on a malformed document, an unknown spec field (via
    :meth:`SearchSpec.from_dict`), or colliding job names.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"sweep payload must be a dict, got {type(payload).__name__}"
        )
    version = payload.get("version", SWEEP_VERSION)
    if version != SWEEP_VERSION:
        raise ValueError(
            f"unsupported sweep version {version!r} "
            f"(supported: {SWEEP_VERSION})"
        )
    unknown = sorted(set(payload) - {"version", "name", "base", "grid"})
    if unknown:
        raise ValueError(
            f"unknown sweep field(s) {unknown}; known fields: "
            "['base', 'grid', 'name', 'version']"
        )
    base = payload.get("base")
    if not isinstance(base, dict):
        raise ValueError("sweep 'base' must be a serialized SearchSpec dict")
    grid = payload.get("grid")
    if not isinstance(grid, dict) or not grid:
        raise ValueError(
            "sweep 'grid' must map dotted spec paths to non-empty "
            "value lists"
        )
    for path, values in grid.items():
        if not isinstance(values, list) or not values:
            raise ValueError(
                f"sweep grid axis {path!r} must be a non-empty list"
            )
    prefix = payload.get("name") or base.get("name") or "sweep"
    paths = list(grid)
    specs: dict[str, SearchSpec] = {}
    for combo in itertools.product(*(grid[path] for path in paths)):
        data = copy.deepcopy(base)
        for path, value in zip(paths, combo):
            _set_path(data, path, value)
        name = "-".join(
            [prefix] + [_coordinate(p, v) for p, v in zip(paths, combo)]
        )
        data["name"] = name
        if name in specs:
            raise ValueError(
                f"sweep produces duplicate job name {name!r}; vary the "
                "grid axes or the sweep name"
            )
        try:
            specs[name] = SearchSpec.from_dict(data)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"sweep point {name!r} is invalid: {exc}") from exc
    return specs


def load_sweep(path) -> dict[str, SearchSpec]:
    """Read and expand a sweep file written as the module docstring
    describes; returns ``{job name: SearchSpec}``."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"sweep file {path} is not valid JSON: {exc}") from exc
    return expand_sweep(payload)
