"""The unified component registry behind declarative search specs.

Every pluggable component family the public API used to select through
an ad-hoc lookup table — objectives (``repro.quant.objectives``), format
families and spec-string parsers (``repro.numerics.registry``), executor
backends (``repro.parallel.executor``), models (``repro.models.zoo``,
``repro.perf.bench``) and calibration sources (``repro.data``) — now
registers itself into one :class:`Registry` per family.  A registry maps
*names* (plain JSON strings) to live components, which is what lets a
:class:`~repro.spec.SearchSpec` serialize to JSON and be reconstructed
anywhere: only names cross the serialization boundary, and any process
that imports the registering module can resolve them.

Registries are ordinary mappings (iteration, ``in``, ``[]`` all work),
so the legacy tables (``OBJECTIVES``, ``FORMAT_FAMILIES``) *are* their
registries — old call sites keep working unchanged.  Lookups that miss
first import the family's ``bootstrap`` modules (the modules that
register the built-in components), so resolution works regardless of
import order:

>>> from repro.spec import registry
>>> registry.names("executor")
('serial', 'thread', 'process', 'remote')
>>> registry.resolve("objective", "mse")
'MSE'
>>> _ = registry.register("model", "my-model", lambda: None, replace=True)
>>> "my-model" in registry.registry("model")
True
>>> registry.resolve("model", "no-such-model")  # doctest: +ELLIPSIS
Traceback (most recent call last):
    ...
KeyError: "unknown model 'no-such-model'; registered models: ..."
"""

from __future__ import annotations

import importlib
from collections.abc import Iterator, Mapping

__all__ = [
    "Registry",
    "register",
    "resolve",
    "names",
    "registry",
    "REGISTRIES",
]


class Registry(Mapping):
    """One named component family: ``name -> component``.

    Components are registered with :meth:`register` (directly or as a
    decorator) and looked up with :meth:`resolve`.  The registry is a
    read-only :class:`~collections.abc.Mapping`, so legacy dict-style
    call sites (``name in TABLE``, ``sorted(TABLE)``, ``TABLE[name]``)
    work against it unchanged.

    ``bootstrap`` lists modules that register this family's built-in
    components; they are imported lazily on the first lookup so the
    registry module itself stays dependency-free (no import cycles, no
    cost until a family is actually used).
    """

    def __init__(self, kind: str, bootstrap: tuple[str, ...] = ()) -> None:
        self.kind = kind
        self._bootstrap = tuple(bootstrap)
        self._booted = not bootstrap
        self._entries: dict[str, object] = {}

    # -- registration ----------------------------------------------------
    def register(self, name: str, component=None, *, replace: bool = False):
        """Register ``component`` under ``name``.

        With ``component`` omitted, acts as a decorator.  Re-registering
        a name raises unless ``replace=True`` (guards against two
        components silently fighting over one name).
        """
        if component is None:
            return lambda obj: self.register(name, obj, replace=replace)
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if name in self._entries and not replace:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; pass "
                "replace=True to override"
            )
        self._entries[name] = component
        return component

    # -- lookup ----------------------------------------------------------
    def _boot(self) -> None:
        if self._booted:
            return
        self._booted = True  # set first: bootstrap modules look us up
        try:
            for module in self._bootstrap:
                importlib.import_module(module)
        except BaseException:
            # a failed bootstrap must stay retryable — otherwise every
            # later lookup reports "registered <kind>s: <none>" and
            # hides the import error that actually caused it
            self._booted = False
            raise

    def resolve(self, name: str):
        """Return the component registered under ``name``.

        Raises ``KeyError`` naming the family and the registered names,
        so a typo in a JSON spec produces an actionable message.
        """
        self._boot()
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered "
                f"{self.kind}s: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, in registration order."""
        self._boot()
        return tuple(self._entries)

    # -- Mapping interface (legacy dict-style call sites) ----------------
    def __getitem__(self, name: str):
        return self.resolve(name)

    def __iter__(self) -> Iterator[str]:
        self._boot()
        return iter(self._entries)

    def __len__(self) -> int:
        self._boot()
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        self._boot()
        return name in self._entries

    def __repr__(self) -> str:
        booted = "" if self._booted else ", unbooted"
        return f"Registry({self.kind!r}, {len(self._entries)} entries{booted})"


#: the component families of the public API; bootstrap modules are the
#: ones whose import registers the built-in members of each family
REGISTRIES: dict[str, Registry] = {
    "objective": Registry("objective", bootstrap=("repro.quant.objectives",)),
    "format_family": Registry(
        "format_family", bootstrap=("repro.numerics.registry",)
    ),
    "format_parser": Registry(
        "format_parser", bootstrap=("repro.numerics.registry",)
    ),
    "executor": Registry("executor", bootstrap=("repro.parallel.executor",)),
    "shared_pool": Registry(
        "shared_pool",
        bootstrap=("repro.serve.pool", "repro.serve.remote"),
    ),
    "model": Registry(
        "model",
        bootstrap=(
            "repro.models.tiny",
            "repro.models.zoo",
            "repro.perf.bench",
        ),
    ),
    "calib": Registry("calib", bootstrap=("repro.data",)),
    "lint_rule": Registry(
        "lint_rule", bootstrap=("repro.analysis.rules",)
    ),
}


def registry(kind: str) -> Registry:
    """The :class:`Registry` for component family ``kind``."""
    try:
        return REGISTRIES[kind]
    except KeyError:
        raise KeyError(
            f"unknown registry {kind!r}; choose from {sorted(REGISTRIES)}"
        ) from None


def register(kind: str, name: str, component=None, *, replace: bool = False):
    """Register ``component`` as ``name`` in the ``kind`` registry."""
    return registry(kind).register(name, component, replace=replace)


def resolve(kind: str, name: str):
    """Resolve ``name`` in the ``kind`` registry."""
    return registry(kind).resolve(name)


def names(kind: str) -> tuple[str, ...]:
    """Registered names of the ``kind`` registry."""
    return registry(kind).names()
