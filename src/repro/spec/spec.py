"""`SearchSpec`: the declarative, JSON-round-trippable search request.

One :class:`SearchSpec` fully describes an LPQ search — which model
(by :mod:`repro.spec.registry` name), which calibration batch (a
:class:`CalibSpec` descriptor, not an array), the search and fitness
configs, objective, executor, and seed.  Because every field is either
a plain value or a registered component *name*, a spec serializes to
plain JSON and back bitwise-faithfully: ``spec → to_dict → json.dumps →
json.loads → from_dict → spec`` is the identity, and running the
reconstructed spec reproduces the identical search trajectory.

The legacy keyword entry points (:func:`repro.quant.lpq_quantize`,
:func:`repro.serve.lpq_quantize_many`) construct one of these
internally, so the spec path and the kwarg path are the same code.

>>> import json
>>> from repro.spec import CalibSpec, SearchSpec
>>> from repro.quant import LPQConfig
>>> spec = SearchSpec(
...     model="tiny:resnet", calib=CalibSpec(batch=8, seed=1),
...     config=LPQConfig(population=3, passes=1, cycles=1,
...                      diversity_parents=2, hw_widths=(4, 8)),
...     objective="mse", seed=11)
>>> wire = json.loads(json.dumps(spec.to_dict()))
>>> SearchSpec.from_dict(wire) == spec
True
>>> spec.search_config().seed  # spec-level seed overrides the config's
11
>>> SearchSpec.from_dict({"version": 99, "model": "tiny:resnet"})
Traceback (most recent call last):
    ...
ValueError: unsupported SearchSpec version 99 (supported: 1)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..parallel.executor import ExecutorConfig
from ..quant.engine import FitnessConfig
from ..quant.genetic import LPQConfig
from . import registry
from .serde import config_from_dict, config_to_dict

__all__ = [
    "SPEC_VERSION",
    "CalibSpec",
    "SearchSpec",
    "reject_spec_conflicts",
    "resolve_calib",
    "resolve_model",
    "run_search",
]

#: wire-format version stamped into every serialized spec
SPEC_VERSION = 1

#: sentinel objective name meaning "the paper's FitnessEvaluator"
_DEFAULT_OBJECTIVE = "global_local_contrastive"


@dataclass(frozen=True)
class CalibSpec:
    """Calibration-batch descriptor: *how to build* the batch, not the
    batch itself.  ``source`` names a registered calibration source (a
    callable ``(batch, seed) -> ndarray``); the built-in ``synthetic``
    source is :func:`repro.data.calibration_batch`."""

    batch: int = 64
    seed: int = 0
    source: str = "synthetic"

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError("calib batch must be positive")

    def to_dict(self) -> dict:
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CalibSpec":
        return config_from_dict(cls, data)

    def build(self):
        """Materialize the calibration batch."""
        return registry.resolve("calib", self.source)(self.batch, self.seed)


def reject_spec_conflicts(
    api: str,
    pairs: tuple,
    objective: str = _DEFAULT_OBJECTIVE,
    act_sf_mode: str = "calibrated",
) -> None:
    """Raise if a spec-taking entry point also received search kwargs.

    Shared by every API with a ``spec=`` alternative
    (:func:`repro.quant.lpq_quantize`,
    :func:`repro.serve.lpq_quantize_many`,
    :meth:`repro.serve.SearchScheduler.submit`): ``pairs`` is the
    ``(name, value)`` list of that API's other search arguments, and
    the objective/act-mode sentinels are checked against their
    defaults here so no caller can forget one.
    """
    overlap = [name for name, value in pairs if value is not None]
    if objective != _DEFAULT_OBJECTIVE:
        overlap.append("objective")
    if act_sf_mode != "calibrated":
        overlap.append("act_sf_mode")
    if overlap:
        raise ValueError(
            f"{api} received conflicting argument(s) {overlap}; put "
            "search parameters inside the spec"
        )


def resolve_model(ref: str):
    """Build the registered model ``ref`` (deterministic, eval mode)."""
    model = registry.resolve("model", ref)()
    model.eval()
    return model


def resolve_calib(calib: CalibSpec | dict):
    """Materialize a calibration batch from its descriptor."""
    if isinstance(calib, dict):
        calib = CalibSpec.from_dict(calib)
    return calib.build()


@dataclass(frozen=True)
class SearchSpec:
    """Declarative LPQ search request (the single source of truth).

    ``model`` is a model-registry name (``"zoo:resnet18"``,
    ``"bench:vit"``, ``"tiny:resnet"``, or anything registered via
    :func:`repro.spec.registry.register`); ``calib`` a
    :class:`CalibSpec`.  Both may be ``None`` only for *inline* specs —
    the ones the legacy kwarg shims build around a live model and a
    calibration array — which run fine but refuse to serialize.

    ``seed``, when set, overrides ``config.seed`` (one obvious knob to
    vary across a sweep of otherwise-identical spec files).  ``name``
    is the job name used by :func:`repro.serve.lpq_quantize_many`.
    """

    model: str | None = None
    calib: CalibSpec | None = None
    config: LPQConfig = field(default_factory=LPQConfig)
    fitness: FitnessConfig | None = None
    objective: str = _DEFAULT_OBJECTIVE
    act_sf_mode: str = "calibrated"
    executor: ExecutorConfig | None = None
    seed: int | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if self.model is not None and not isinstance(self.model, str):
            raise ValueError(
                "SearchSpec.model must be a registered model name; pass "
                "live model instances through lpq_quantize(model, images)"
            )
        if isinstance(self.calib, dict):
            # accept the JSON form directly (frozen dataclass, hence
            # object.__setattr__); anything else is a usage error now,
            # not an AttributeError later
            object.__setattr__(self, "calib", CalibSpec.from_dict(self.calib))
        elif self.calib is not None and not isinstance(self.calib, CalibSpec):
            raise ValueError(
                "SearchSpec.calib must be a CalibSpec (or its dict "
                f"form), got {type(self.calib).__name__}; pass live "
                "calibration arrays through lpq_quantize(model, images)"
            )
        if self.objective != _DEFAULT_OBJECTIVE:
            # bootstraps the objective registry; unknown names raise here
            try:
                registry.resolve("objective", self.objective)
            except KeyError as exc:
                raise ValueError(str(exc).strip('"')) from None
        if self.act_sf_mode not in ("calibrated", "recurrence"):
            raise ValueError(
                f"unknown activation sf mode {self.act_sf_mode!r}"
            )

    # -- derived views ---------------------------------------------------
    @property
    def serializable(self) -> bool:
        """True when the spec references everything by name/descriptor."""
        return self.model is not None and self.calib is not None

    def search_config(self) -> LPQConfig:
        """The effective :class:`LPQConfig` (spec seed applied)."""
        if self.seed is None:
            return self.config
        return dataclasses.replace(self.config, seed=self.seed)

    def job_name(self, default: str) -> str:
        return self.name if self.name is not None else default

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON dict form (raises on inline specs)."""
        if not self.serializable:
            raise ValueError(
                "inline SearchSpec (live model/calibration objects) cannot "
                "be serialized; reference a registered model and a "
                "CalibSpec instead"
            )
        return {
            "version": SPEC_VERSION,
            "model": self.model,
            "calib": self.calib.to_dict(),
            "config": config_to_dict(self.config),
            "fitness": (
                None if self.fitness is None else config_to_dict(self.fitness)
            ),
            "objective": self.objective,
            "act_sf_mode": self.act_sf_mode,
            "executor": (
                None
                if self.executor is None
                else self.executor.to_dict()
            ),
            "seed": self.seed,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpec":
        """Inverse of :meth:`to_dict`; unknown keys/versions raise."""
        if not isinstance(data, dict):
            raise ValueError(
                f"SearchSpec payload must be a dict, got {type(data).__name__}"
            )
        data = dict(data)
        version = data.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"unsupported SearchSpec version {version} "
                f"(supported: {SPEC_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SearchSpec field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        if data.get("calib") is not None:
            data["calib"] = CalibSpec.from_dict(data["calib"])
        if data.get("config") is not None:
            data["config"] = config_from_dict(LPQConfig, data["config"])
        else:
            data.pop("config", None)
        if data.get("fitness") is not None:
            data["fitness"] = config_from_dict(FitnessConfig, data["fitness"])
        if data.get("executor") is not None:
            data["executor"] = ExecutorConfig.from_dict(data["executor"])
        return cls(**data)

    def digest(self) -> str:
        """Stable content hash of the search this spec describes.

        SHA-256 over the canonical JSON of :meth:`to_dict`, minus the
        two fields that cannot move a bit: ``executor`` (every backend
        produces the identical trajectory — the stack-wide invariant)
        and ``name`` (a job label).  Two specs with equal digests
        therefore produce bitwise-identical results, which is what lets
        ``scripts/run_search.py --cache-dir`` replay a stored result
        instead of re-running the search.

        >>> from repro.spec import CalibSpec, SearchSpec
        >>> from repro.parallel import ExecutorConfig
        >>> a = SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4))
        >>> b = SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4),
        ...                name="other-label",
        ...                executor=ExecutorConfig("thread", workers=2))
        >>> a.digest() == b.digest()  # same search, same digest
        True
        >>> a.digest() == SearchSpec(model="tiny:mlp",
        ...                          calib=CalibSpec(batch=8)).digest()
        False
        >>> len(a.digest())
        64
        """
        payload = self.to_dict()
        del payload["executor"]
        del payload["name"]
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SearchSpec":
        return cls.from_dict(json.loads(text))

    def dump(self, path) -> Path:
        """Write the spec to ``path`` as JSON; returns the path."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "SearchSpec":
        """Read a spec back from a JSON file written by :meth:`dump`."""
        return cls.from_json(Path(path).read_text())

    # -- resolution ------------------------------------------------------
    def build_model(self):
        if self.model is None:
            raise ValueError("inline SearchSpec carries no model reference")
        return resolve_model(self.model)

    def build_calib(self):
        if self.calib is None:
            raise ValueError(
                "inline SearchSpec carries no calibration descriptor"
            )
        return self.calib.build()


def run_search(spec: SearchSpec):
    """Resolve ``spec`` and run the full LPQ pipeline on it.

    Returns the :class:`~repro.quant.LPQResult`.  A convenience alias
    for ``lpq_quantize(spec=spec)`` — the functional entry point for
    callers holding only a spec (the engine itself is
    :func:`repro.quant.ptq._run_spec`).
    """
    from ..quant.ptq import lpq_quantize

    return lpq_quantize(spec=spec)
