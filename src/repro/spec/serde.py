"""JSON serialization helpers shared by the spec layer.

Two families of helpers:

* :func:`config_to_dict` / :func:`config_from_dict` — flat-dataclass
  serde used by every registered config (``LPQConfig``,
  ``FitnessConfig``, ``ExecutorConfig``, ``CalibSpec``).  Tuples become
  lists on the way out and back again on the way in (JSON has no
  tuples); unknown keys raise so a typo in a spec file cannot silently
  fall back to a default.
* :func:`encode_array` / :func:`decode_array` — bitwise-exact ndarray
  transport (dtype + shape + base64 of the raw little-endian bytes).
  This is what lets the :mod:`repro.serve` pool ship calibration
  batches and model state dicts across the worker boundary as plain
  JSON instead of pickles.

JSON round trips are *faithful*: ints, strings, and bools are exact by
construction, floats survive because JSON serializes binary64 shortest
repr (which parses back to the identical bits), and arrays go through
raw bytes.  The property tests in ``tests/spec/`` pin this down.
"""

from __future__ import annotations

import base64
import dataclasses

import numpy as np

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "encode_array",
    "decode_array",
    "encode_state",
    "decode_state",
    "inline_nbytes",
]


def config_to_dict(config) -> dict:
    """Flat dataclass → JSON-ready dict (tuples become lists)."""
    out = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if isinstance(value, tuple):
            value = list(value)
        out[field.name] = value
    return out


def config_from_dict(cls, data: dict):
    """JSON dict → dataclass ``cls``; unknown keys raise ``ValueError``.

    Lists are converted back to tuples for fields whose type annotation
    is a tuple (the only containers the specs use).
    """
    if not isinstance(data, dict):
        raise ValueError(f"{cls.__name__} payload must be a dict, got "
                         f"{type(data).__name__}")
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - set(fields))
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s) {unknown}; known fields: "
            f"{sorted(fields)}"
        )
    kwargs = {}
    for name, value in data.items():
        annotation = str(fields[name].type)
        if isinstance(value, list) and "tuple" in annotation:
            value = tuple(value)
        kwargs[name] = value
    return cls(**kwargs)


def encode_array(array: np.ndarray, blobs=None) -> dict:
    """ndarray → JSON dict, bitwise-exact (little-endian raw bytes).

    With a :class:`repro.spec.blob.BlobStore` as ``blobs``, the bytes
    stay in the store and the payload carries only a content-addressed
    ``{"blob": "<digest>"}`` reference (plus dtype/shape, so receivers
    can account for what the ref stands for without holding the blob).
    Without a store the full base64 body is inlined — the default, and
    the fallback transports use when no blob channel exists.
    """
    array = np.asarray(array)
    if not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array)  # 0-d stays 0-d
    dtype = array.dtype.newbyteorder("<")
    if blobs is not None:
        return {
            "__ndarray__": True,
            "dtype": dtype.str,
            "shape": list(array.shape),
            "blob": blobs.put(array),
        }
    return {
        "__ndarray__": True,
        "dtype": dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.astype(dtype, copy=False).tobytes())
        .decode("ascii"),
    }


def inline_nbytes(payload: dict) -> int:
    """Base64 characters an encoded-array payload ships (or would ship,
    for a blob reference) as its ``data`` field — the unit in which the
    ``transport.bytes_saved`` counter measures dedupe wins."""
    if not isinstance(payload, dict) or not payload.get("__ndarray__"):
        raise ValueError("not an encoded ndarray payload")
    if "data" in payload:
        return len(payload["data"])
    itemsize = np.dtype(payload["dtype"]).itemsize
    raw = int(np.prod(payload["shape"], dtype=np.int64)) * itemsize
    return 4 * ((raw + 2) // 3)  # base64 expansion of the raw bytes


def decode_array(payload: dict, blobs=None, fetch=None) -> np.ndarray:
    """Inverse of :func:`encode_array`.

    Inline payloads decode to a fresh *writable* array (``np.frombuffer``
    alone would return a read-only view of the base64 buffer; downstream
    in-place ops like BN-statistics updates must not blow up on it).

    Blob references resolve through ``blobs`` (a
    :class:`repro.spec.blob.BlobStore`); a digest the store cannot serve
    is handed to ``fetch(digest) -> np.ndarray`` — the transport's
    fetch-on-miss hook — and raises ``ValueError`` when no channel can
    produce it.  Resolved blobs are returned as the store's read-only
    view: zero-copy, because every consumer on this path copies on
    write (``load_state_dict``) or only reads (calibration batches).
    """
    if not isinstance(payload, dict) or not payload.get("__ndarray__"):
        raise ValueError("not an encoded ndarray payload")
    if "blob" in payload:
        digest = payload["blob"]
        if blobs is not None:
            try:
                return blobs.get(digest).reshape(payload["shape"])
            except KeyError:
                pass
        if fetch is not None:
            array = fetch(digest)
            if blobs is not None:
                blobs.put(array)
            return np.asarray(array).reshape(payload["shape"])
        raise ValueError(
            f"payload references blob {digest!r} but no blob store or "
            "fetch channel can resolve it"
        )
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(payload["shape"]).copy()


def encode_state(state: dict, blobs=None) -> dict:
    """Model state dict (name → ndarray) → JSON dict."""
    return {
        name: encode_array(value, blobs=blobs)
        for name, value in state.items()
    }


def decode_state(payload: dict, blobs=None, fetch=None) -> dict:
    """Inverse of :func:`encode_state`."""
    return {
        name: decode_array(value, blobs=blobs, fetch=fetch)
        for name, value in payload.items()
    }
