"""JSON serialization helpers shared by the spec layer.

Two families of helpers:

* :func:`config_to_dict` / :func:`config_from_dict` — flat-dataclass
  serde used by every registered config (``LPQConfig``,
  ``FitnessConfig``, ``ExecutorConfig``, ``CalibSpec``).  Tuples become
  lists on the way out and back again on the way in (JSON has no
  tuples); unknown keys raise so a typo in a spec file cannot silently
  fall back to a default.
* :func:`encode_array` / :func:`decode_array` — bitwise-exact ndarray
  transport (dtype + shape + base64 of the raw little-endian bytes).
  This is what lets the :mod:`repro.serve` pool ship calibration
  batches and model state dicts across the worker boundary as plain
  JSON instead of pickles.

JSON round trips are *faithful*: ints, strings, and bools are exact by
construction, floats survive because JSON serializes binary64 shortest
repr (which parses back to the identical bits), and arrays go through
raw bytes.  The property tests in ``tests/spec/`` pin this down.
"""

from __future__ import annotations

import base64
import dataclasses

import numpy as np

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "encode_array",
    "decode_array",
    "encode_state",
    "decode_state",
]


def config_to_dict(config) -> dict:
    """Flat dataclass → JSON-ready dict (tuples become lists)."""
    out = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if isinstance(value, tuple):
            value = list(value)
        out[field.name] = value
    return out


def config_from_dict(cls, data: dict):
    """JSON dict → dataclass ``cls``; unknown keys raise ``ValueError``.

    Lists are converted back to tuples for fields whose type annotation
    is a tuple (the only containers the specs use).
    """
    if not isinstance(data, dict):
        raise ValueError(f"{cls.__name__} payload must be a dict, got "
                         f"{type(data).__name__}")
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - set(fields))
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s) {unknown}; known fields: "
            f"{sorted(fields)}"
        )
    kwargs = {}
    for name, value in data.items():
        annotation = str(fields[name].type)
        if isinstance(value, list) and "tuple" in annotation:
            value = tuple(value)
        kwargs[name] = value
    return cls(**kwargs)


def encode_array(array: np.ndarray) -> dict:
    """ndarray → JSON dict, bitwise-exact (little-endian raw bytes)."""
    array = np.ascontiguousarray(array)
    dtype = array.dtype.newbyteorder("<")
    return {
        "__ndarray__": True,
        "dtype": dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.astype(dtype, copy=False).tobytes())
        .decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    if not isinstance(payload, dict) or not payload.get("__ndarray__"):
        raise ValueError("not an encoded ndarray payload")
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(payload["shape"]).copy()


def encode_state(state: dict) -> dict:
    """Model state dict (name → ndarray) → JSON dict."""
    return {name: encode_array(value) for name, value in state.items()}


def decode_state(payload: dict) -> dict:
    """Inverse of :func:`encode_state`."""
    return {name: decode_array(value) for name, value in payload.items()}
