"""Content-addressed blob store: zero-copy ndarray transport.

Model state dicts and calibration batches dominate every wire payload,
and they never change over the life of a search — yet the inline codec
(:func:`repro.spec.serde.encode_array`) re-base64s them into every
payload and every worker re-decodes them per session.  A
:class:`BlobStore` replaces that with *content addressing*: each array
is keyed by :func:`blob_digest` (sha256 over dtype + shape + raw
little-endian bytes), stored once, and referenced from wire payloads as
``{"blob": "<digest>"}``.  Transports then move each distinct tensor at
most once:

* **Local process pools** export the store as
  :mod:`multiprocessing.shared_memory` segments
  (:meth:`BlobStore.export_shm`); workers attach the same physical
  pages (:meth:`BlobStore.attach_shm`) — the state dict crosses the
  pool boundary zero-copy instead of as per-worker base64.
* **Remote workers** keep a server-level store (optionally backed by a
  memory-mapped on-disk cache via ``cache_dir``) that persists across
  client sessions; a warm fleet answers ``{"blob": digest}`` refs from
  its cache and only fetches genuinely new tensors through the
  ``blob_get``/``blob_put`` frames of :mod:`repro.serve.remote`.

Dedup accounting goes to the ``blob`` cache of the ambient perf
registry (:func:`repro.perf.get_perf`): a :meth:`~BlobStore.put` of an
already-known digest is a *hit* — that array will never be shipped
inline again — and a first-seen digest is a *miss*.

>>> import numpy as np
>>> from repro.spec.blob import BlobStore, blob_digest
>>> store = BlobStore()
>>> a = np.arange(6, dtype=np.float32).reshape(2, 3)
>>> digest = store.put(a)
>>> digest == blob_digest(a)
True
>>> store.put(a.copy()) == digest  # content-addressed: equal bytes dedupe
True
>>> np.array_equal(store.get(digest), a)
True
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "BlobStore",
    "account_transport",
    "attach_transport_table",
    "blob_digest",
    "blob_transport_table",
    "get_blob_store",
    "reset_blob_store",
]


def _canonical(array: np.ndarray) -> np.ndarray:
    """C-contiguous little-endian view/copy of ``array`` — the exact
    bytes :func:`repro.spec.serde.encode_array` would ship.  0-d arrays
    keep their shape (``ascontiguousarray`` would promote them to
    ``(1,)``, colliding a scalar with a 1-element vector)."""
    array = np.asarray(array)
    if not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array)
    return array.astype(array.dtype.newbyteorder("<"), copy=False)


def blob_digest(array: np.ndarray) -> str:
    """Content hash of an ndarray: sha256 over dtype + shape + raw bytes.

    The digest covers the little-endian canonical form, so two arrays
    hash equal exactly when :func:`repro.spec.serde.encode_array` would
    emit identical payloads for them — equal content, equal dtype, equal
    shape — regardless of byte order or memory layout on this host.

    >>> import numpy as np
    >>> a = np.arange(4, dtype=np.float64)
    >>> blob_digest(a) == blob_digest(a.copy())
    True
    >>> blob_digest(a) == blob_digest(a.astype(np.float32))
    False
    """
    arr = _canonical(array)
    h = hashlib.sha256()
    h.update(arr.dtype.str.encode("ascii"))
    h.update(repr(tuple(arr.shape)).encode("ascii"))
    h.update(arr.data if arr.flags["C_CONTIGUOUS"] else arr.tobytes())
    return h.hexdigest()


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


def _quiet_shm(seg):
    """Make ``seg.close()`` tolerate live buffer exports.

    ``SharedMemory.__del__`` calls ``close()``, which raises
    ``BufferError`` while numpy views of the mapping are still alive —
    typically a worker's calibration batch at interpreter shutdown,
    printed as an "Exception ignored" traceback.  The mapping is
    reclaimed by the OS at process exit and the exporter owns the
    unlink, so the failure is harmless; swallow it.
    """
    real_close = seg.close

    def close():
        try:
            real_close()
        except BufferError:
            pass

    seg.close = close
    return seg


class BlobStore:
    """Digest-keyed ndarray store with shared-memory and disk backends.

    In-memory entries are read-only views — a blob's bytes must never
    change under its digest, so consumers that need a mutable tensor
    copy on their side (``load_state_dict`` already copies).  ``perf``
    optionally pins a private :class:`repro.perf.PerfRegistry`; by
    default stats go to the ambient process registry under ``blob``.

    ``cache_dir`` adds a content-addressed on-disk cache: every stored
    blob is written once as ``<digest>.bin`` (+ a dtype/shape sidecar),
    and lookups of unknown digests memory-map those files read-only —
    a restarted remote worker rehydrates its blobs without any network
    traffic.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 perf=None) -> None:
        self._entries: dict[str, np.ndarray] = {}
        #: shm segments owned (exported) by this store: digest → handle
        self._exported: dict = {}
        #: shm segments attached (worker side): digest → handle
        self._attached: dict = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._perf = perf

    def _registry(self):
        if self._perf is not None:
            return self._perf
        from ..perf import get_perf

        return get_perf()

    def _stats(self):
        return self._registry().cache("blob")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries or self._on_disk(digest)

    def digests(self) -> list[str]:
        """Digests resident in memory (sorted, for deterministic wire
        messages)."""
        return sorted(self._entries)

    # -- core map ---------------------------------------------------------
    def put(self, array: np.ndarray) -> str:
        """Store ``array`` under its content digest; returns the digest.

        A known digest is a dedupe *hit* (the bytes will never ship
        inline again); a new one is a *miss* and takes a reference to
        the canonical form of ``array`` — callers must not mutate it
        afterwards (search weights and calibration batches are frozen,
        which is what makes content addressing sound here).
        """
        arr = _canonical(array)
        digest = blob_digest(arr)
        if digest in self._entries:
            self._stats().hit()
            return digest
        self._stats().miss()
        self._entries[digest] = _readonly(arr)
        self._write_disk(digest, arr)
        return digest

    def get(self, digest: str) -> np.ndarray:
        """Read-only array for ``digest``; falls back to the on-disk
        cache (memory-mapped) and raises ``KeyError`` when the blob is
        known nowhere — remote workers catch that and fetch-on-miss."""
        entry = self._entries.get(digest)
        if entry is not None:
            return entry
        entry = self._read_disk(digest)
        if entry is not None:
            self._stats().hit()  # warm disk cache: the fetch was saved
            self._entries[digest] = entry
            return entry
        raise KeyError(
            f"blob {digest!r} is in neither the in-memory store nor the "
            f"disk cache ({self.cache_dir}); fetch it from the peer that "
            "published the reference"
        )

    def clear(self) -> None:
        """Forget every in-memory entry (shared-memory handles and the
        on-disk cache are untouched).  To the fetch-on-miss path this is
        what an evicted or freshly restarted cache looks like: the next
        :meth:`get` of a cleared digest raises ``KeyError`` unless the
        disk cache can rehydrate it."""
        self._entries.clear()

    def missing(self, digests) -> list[str]:
        """The subset of ``digests`` this store cannot serve (order
        preserved, duplicates dropped)."""
        out, seen = [], set()
        for digest in digests:
            if digest not in seen and digest not in self:
                seen.add(digest)
                out.append(digest)
        return out

    # -- on-disk cache ----------------------------------------------------
    def _disk_paths(self, digest: str) -> tuple[Path, Path]:
        return (
            self.cache_dir / f"{digest}.bin",
            self.cache_dir / f"{digest}.json",
        )

    def _on_disk(self, digest: str) -> bool:
        if self.cache_dir is None:
            return False
        bin_path, meta_path = self._disk_paths(digest)
        return bin_path.exists() and meta_path.exists()

    def _write_disk(self, digest: str, arr: np.ndarray) -> None:
        if self.cache_dir is None or self._on_disk(digest):
            return
        bin_path, meta_path = self._disk_paths(digest)
        # write-then-rename: a concurrent reader never sees a torn blob
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            fh.write(arr.data if arr.flags["C_CONTIGUOUS"] else arr.tobytes())
        os.replace(tmp, bin_path)
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        with os.fdopen(fd, "w") as fh:
            json.dump({"dtype": arr.dtype.str, "shape": list(arr.shape)}, fh)
        os.replace(tmp, meta_path)

    def _read_disk(self, digest: str) -> np.ndarray | None:
        if not self._on_disk(digest):
            return None
        bin_path, meta_path = self._disk_paths(digest)
        meta = json.loads(meta_path.read_text())
        shape = tuple(meta["shape"])
        dtype = np.dtype(meta["dtype"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if count == 0:
            return _readonly(np.empty(shape, dtype=dtype))
        mapped = np.memmap(bin_path, dtype=dtype, mode="r", shape=shape)
        return _readonly(np.asarray(mapped))

    # -- shared-memory transport ------------------------------------------
    def export_shm(self) -> dict[str, dict]:
        """Publish every in-memory blob as a shared-memory segment.

        Returns the plain-JSON attach table ``{digest: {"shm": name,
        "dtype": str, "shape": [...]}}`` a worker process feeds to
        :meth:`attach_shm`.  Segments stay owned by this store — call
        :meth:`close` (parent side, after the pool is done) to unlink
        them.  Raises ``OSError`` where POSIX shared memory is
        unavailable; callers fall back to inline payloads.

        Bytes copied into *newly created* segments are charged to the
        ``transport.bytes_sent`` counter — the one-time physical cost of
        publishing each blob.  A warm store re-exports for free (the
        segments already exist), which is exactly the drop a warm-fleet
        re-run must show.
        """
        from multiprocessing import shared_memory

        table: dict[str, dict] = {}
        created = 0
        for digest in self.digests():
            arr = self._entries[digest]
            seg = self._exported.get(digest)
            if seg is None:
                seg = _quiet_shm(shared_memory.SharedMemory(
                    create=True, size=max(1, arr.nbytes)
                ))
                if arr.nbytes:
                    np.frombuffer(
                        seg.buf, dtype=arr.dtype, count=arr.size
                    ).reshape(arr.shape)[...] = arr
                self._exported[digest] = seg
                created += arr.nbytes
            table[digest] = {
                "shm": seg.name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
            }
        if created:
            self._registry().counter("transport.bytes_sent").inc(created)
        return table

    def attach_shm(self, table: dict[str, dict]) -> "BlobStore":
        """Attach the segments of an :meth:`export_shm` table (worker
        side).  The mapped arrays are registered read-only and
        zero-copy: every worker shares the exporter's physical pages."""
        from multiprocessing import shared_memory

        for digest, meta in table.items():
            if digest in self._entries:
                continue
            seg = _quiet_shm(shared_memory.SharedMemory(name=meta["shm"]))
            shape = tuple(meta["shape"])
            dtype = np.dtype(meta["dtype"])
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            if count == 0:
                self._entries[digest] = _readonly(
                    np.empty(shape, dtype=dtype)
                )
                seg.close()
                continue
            arr = np.frombuffer(seg.buf, dtype=dtype, count=count)
            self._entries[digest] = _readonly(arr.reshape(shape))
            self._attached[digest] = seg
        return self

    def close(self) -> None:
        """Release shared-memory segments: attached ones are closed,
        exported ones closed *and* unlinked (the exporting process owns
        the segment lifetime).  In-memory and on-disk entries remain."""
        # drop numpy views over shm buffers first: SharedMemory.close()
        # refuses while exported pointers exist
        for digest in list(self._attached) + list(self._exported):
            self._entries.pop(digest, None)
        attached, self._attached = self._attached, {}
        for seg in attached.values():
            try:
                seg.close()
            except (OSError, BufferError):
                pass
        exported, self._exported = self._exported, {}
        for seg in exported.values():
            try:
                seg.close()
            except (OSError, BufferError):
                pass
            try:
                seg.unlink()  # even if close failed: the name must go
            except (OSError, FileNotFoundError):
                pass

    def __enter__(self) -> "BlobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- transport tables ------------------------------------------------------
def blob_transport_table(store: BlobStore) -> dict:
    """Publish ``store`` for process-pool workers.

    Preferred form is ``{"shm": <attach table>}`` — zero-copy shared
    memory.  Where POSIX shared memory is unavailable the fallback is
    ``{"inline": {digest: encoded array}}``: each distinct tensor ships
    once per worker instead of once per payload, so content addressing
    still dedupes, just not zero-copy.
    """
    try:
        return {"shm": store.export_shm()}
    except OSError:
        from .serde import encode_array

        return {
            "inline": {d: encode_array(store.get(d)) for d in store.digests()}
        }


def attach_transport_table(table: dict, perf=None) -> BlobStore:
    """Worker-side inverse of :func:`blob_transport_table`: a store
    serving every digest the table carries."""
    store = BlobStore(perf=perf)
    if "shm" in table:
        store.attach_shm(table["shm"])
    inline = table.get("inline")
    if inline:
        from .serde import decode_array

        for payload in inline.values():
            store.put(decode_array(payload))
    return store


def account_transport(perf, payload, table, workers: int) -> None:
    """Record ``transport.bytes_sent`` / ``transport.bytes_saved`` for
    shipping ``payload`` (a wire dict) plus a blob transport table to
    ``workers`` pool workers.

    *sent* is the JSON actually serialized per worker; *saved* is the
    base64 volume the blob refs displaced (every ref occurrence that
    would have been inlined), minus whatever the inline-fallback table
    still had to carry.
    """
    sent = len(json.dumps(payload, separators=(",", ":")))
    if table:
        sent += len(json.dumps(table, separators=(",", ":")))
    perf.counter("transport.bytes_sent").inc(sent * workers)
    saved = _ref_occurrence_bytes(payload) * workers
    if table and "inline" in table:
        saved -= sum(
            len(p.get("data", "")) for p in table["inline"].values()
        ) * workers
    perf.counter("transport.bytes_saved").inc(max(0, saved))


def _ref_occurrence_bytes(node) -> int:
    """Total inline base64 bytes every blob-ref *occurrence* in a wire
    payload stands for (unlike ``collect_blob_refs``, duplicates count
    every time — that duplication is exactly the dedupe win)."""
    from .serde import inline_nbytes

    if isinstance(node, dict):
        if node.get("__ndarray__") and "blob" in node:
            return inline_nbytes(node)
        return sum(_ref_occurrence_bytes(v) for v in node.values())
    if isinstance(node, list):
        return sum(_ref_occurrence_bytes(v) for v in node)
    return 0


#: process-global store used by transports that do not pin their own
_GLOBAL: BlobStore | None = None
_ATEXIT_REGISTERED = False


def _close_global() -> None:
    if _GLOBAL is not None:
        _GLOBAL.close()


def _fresh_global() -> BlobStore:
    # unlink any exported shm segments at interpreter exit so the
    # multiprocessing resource tracker has nothing to complain about
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_close_global)
        _ATEXIT_REGISTERED = True
    return BlobStore()


def get_blob_store() -> BlobStore:
    """The process-global :class:`BlobStore` (created on first use)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = _fresh_global()
    return _GLOBAL


def reset_blob_store() -> BlobStore:
    """Drop the process-global store (start of a measurement window);
    any shared-memory segments it exported are released."""
    global _GLOBAL
    if _GLOBAL is not None:
        _GLOBAL.close()
    _GLOBAL = _fresh_global()
    return _GLOBAL
