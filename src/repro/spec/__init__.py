"""Declarative search specs: every experiment a named, serializable object.

The public surface has three pieces:

* :mod:`repro.spec.registry` — one :class:`~repro.spec.registry.Registry`
  per pluggable component family (objectives, format families/parsers,
  executor backends, models, calibration sources).  Components are
  referenced *by name*, which is what makes specs JSON-safe.
* :class:`SearchSpec` (+ :class:`CalibSpec`) — the single source of
  truth for launching an LPQ search: model ref, calibration descriptor,
  search/fitness configs, objective, executor, seed.  Round-trips
  through plain JSON bitwise-faithfully (``to_dict``/``from_dict``,
  ``dump``/``load``).
* :func:`run_search` — convenience alias: resolve a spec and run it
  through :func:`repro.quant.lpq_quantize`, which both call styles and
  ``scripts/run_search.py`` share.

The legacy keyword APIs (:func:`repro.quant.lpq_quantize` and friends)
are thin shims that *construct* a spec, so both paths share one
implementation and produce bitwise-identical results.

This module lazy-loads :class:`SearchSpec` (PEP 562): importing
``repro.spec.registry`` from a component module never drags the quant
stack in, which keeps registration import-cycle-free.
"""

from . import registry  # dependency-free; safe to import eagerly

_LAZY = {
    "BlobStore": "blob",
    "CalibSpec": "spec",
    "SearchSpec": "spec",
    "SPEC_VERSION": "spec",
    "SWEEP_VERSION": "sweep",
    "blob_digest": "blob",
    "expand_sweep": "sweep",
    "get_blob_store": "blob",
    "load_sweep": "sweep",
    "reject_spec_conflicts": "spec",
    "reset_blob_store": "blob",
    "resolve_calib": "spec",
    "resolve_model": "spec",
    "run_search": "spec",
}

__all__ = ["registry", *sorted(_LAZY)]


def __getattr__(name: str):
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
