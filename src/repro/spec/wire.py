"""JSON wire codec for the :mod:`repro.serve` pool boundary.

The shared process pool used to ship pickled
:class:`~repro.parallel.EvaluatorSpec` objects to its workers.  This
module replaces that with a *wire payload*: a plain-JSON dict (only
dicts, lists, strings, numbers, bools, ``None``) from which any worker
— in this process, another process, or, eventually, another host — can
reconstruct a byte-identical evaluator.  ``json.dumps(payload)`` always
succeeds, which is the property that lets the payload cross a socket
where a pickle should not (``tests/serve/test_wire.py`` asserts the
round trip).

Two payload kinds:

* ``"search"`` — the job was submitted as a declarative
  :class:`~repro.spec.SearchSpec`; the payload carries the spec's dict
  form plus the calibration statistics, and the worker resolves the
  model and calibration batch through the component registries.
* ``"evaluator"`` — a legacy job around live objects; the calibration
  batch and model state travel as bitwise-exact encoded arrays
  (:func:`repro.spec.serde.encode_array`), and the model architecture
  travels *by name*: an importable builder callable or the model's
  importable class, resolved with :func:`decode_callable` worker-side.

A live model instance is named on the wire by, in order of preference:
its ``wire_builder`` tag — a ``(module, qualname)`` pair naming the
importable zero-arg builder that produced it, stamped by
:func:`repro.models.zoo.get_model` and the registry loaders — or its
class, when that class is importable and zero-arg constructible.
Instances that satisfy neither (a closure-defined class, a class whose
constructor needs arguments) are rejected at encode time, in the
submitting process, with a message pointing at the registry/builder
alternatives.
"""

from __future__ import annotations

import importlib
import inspect

import numpy as np

from ..parallel.evaluator import EvaluatorSpec
from ..quant.engine import FitnessConfig
from ..quant.quantizer import LayerStats
from .serde import (
    config_from_dict,
    decode_array,
    decode_state,
    encode_array,
    encode_state,
)
from .spec import _DEFAULT_OBJECTIVE, SearchSpec

__all__ = [
    "WIRE_VERSION",
    "encode_callable",
    "decode_callable",
    "encode_stats",
    "decode_stats",
    "encode_job",
    "decode_job",
]

#: wire-format version stamped into every job payload
WIRE_VERSION = 1


# -- callables by name ---------------------------------------------------
def encode_callable(fn) -> dict:
    """Name an importable callable (``{"module", "qualname"}``).

    Round-trip verified: the encoded reference must resolve back to the
    exact same object, so a stale or shadowed name fails at encode time
    (in the submitting process, with context) rather than in a worker.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(
            f"{fn!r} cannot be named on the wire (module={module!r}, "
            f"qualname={qualname!r}); use a module-level builder "
            "callable or register the model in the spec registry "
            "(repro.spec.registry.register('model', name, loader))"
        )
    if decode_callable({"module": module, "qualname": qualname}) is not fn:
        raise ValueError(
            f"{module}.{qualname} does not resolve back to {fn!r}; "
            "wire references must be importable by name"
        )
    return {"module": module, "qualname": qualname}


def decode_callable(payload: dict):
    """Inverse of :func:`encode_callable` (plain getattr walk)."""
    obj = importlib.import_module(payload["module"])
    for part in payload["qualname"].split("."):
        obj = getattr(obj, part)
    return obj


def _encode_model_instance(model, probe_input=None) -> dict:
    """Name a live model instance on the wire.

    Prefers the instance's ``wire_builder`` tag (the importable zero-arg
    builder that produced it — trained zoo checkpoints and the registry
    loaders stamp it); otherwise the instance's class, which must then
    be zero-arg constructible so the worker can rebuild the
    architecture before loading the state dict.

    The class path is *verified*, not assumed: a probe instance is
    rebuilt here exactly as the worker will rebuild it, the state dict
    is loaded, and (given ``probe_input``) one forward pass must match
    the original bit for bit.  This catches the silent failure mode
    where a behavior-affecting but shape-preserving constructor
    argument (one ``load_state_dict`` cannot restore) would make
    workers score a functionally different model.
    """
    tag = getattr(model, "wire_builder", None)
    if tag is not None:
        module, qualname = tag
        payload = {"module": str(module), "qualname": str(qualname)}
        decode_callable(payload)  # stale tags fail here, with context
        return {"builder": payload}
    cls = type(model)
    try:
        required = [
            p.name
            for p in inspect.signature(cls).parameters.values()
            if p.default is inspect.Parameter.empty
            and p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
    except (TypeError, ValueError):
        required = []
    if required:
        raise ValueError(
            f"{cls.__module__}.{cls.__qualname__} requires constructor "
            f"argument(s) {required}, so a worker cannot rebuild this "
            "model from its class name; submit a registered model name "
            "(repro.spec.SearchSpec), a module-level builder callable, "
            "or a model carrying a wire_builder tag"
        )
    probe = cls()
    probe.load_state_dict(model.state_dict())  # key/shape drift fails here
    if probe_input is not None:
        probe.eval()
        # compare in eval mode (a train-mode BN forward would mutate the
        # submitted model's running statistics); restore the caller's
        # mode afterwards
        was_training = bool(getattr(model, "training", False))
        if was_training:
            model.eval()
        try:
            reference = model(probe_input)
        finally:
            if was_training:
                model.train()
        if not np.array_equal(probe(probe_input), reference):
            raise ValueError(
                f"{cls.__module__}.{cls.__qualname__}() + load_state_dict "
                "does not reproduce this instance (a constructor argument "
                "the state dict cannot restore?); submit a registered "
                "model name, a module-level builder callable, or a model "
                "carrying a wire_builder tag"
            )
    return {"model_class": encode_callable(cls)}


# -- calibration statistics ----------------------------------------------
def encode_stats(stats: LayerStats) -> dict:
    """:class:`~repro.quant.LayerStats` → plain JSON (names, counts,
    log-centres — floats survive JSON exactly via shortest-repr)."""
    return {
        "names": list(stats.names),
        "param_counts": [int(n) for n in stats.param_counts],
        "weight_log_centers": [float(c) for c in stats.weight_log_centers],
        "act_log_centers": [float(c) for c in stats.act_log_centers],
    }


def decode_stats(payload: dict) -> LayerStats:
    """Inverse of :func:`encode_stats`."""
    return LayerStats(
        names=list(payload["names"]),
        param_counts=[int(n) for n in payload["param_counts"]],
        weight_log_centers=[float(c) for c in payload["weight_log_centers"]],
        act_log_centers=[float(c) for c in payload["act_log_centers"]],
    )


# -- whole jobs ----------------------------------------------------------
def encode_job(spec: EvaluatorSpec, search: SearchSpec | None = None) -> dict:
    """One pool job → plain-JSON wire payload.

    ``search`` (when the job was submitted declaratively and is
    serializable) selects the compact ``"search"`` payload; otherwise
    the live objects in ``spec`` are encoded field by field.
    """
    stats = None if spec.stats is None else encode_stats(spec.stats)
    if search is not None and search.serializable:
        return {
            "version": WIRE_VERSION,
            "kind": "search",
            "search": search.to_dict(),
            "stats": stats,
        }
    if spec.builder is not None:
        model = {"builder": encode_callable(spec.builder)}
        state = spec.state
    else:
        model = _encode_model_instance(spec.model, spec.images[:1])
        # the builder/class rebuilds the architecture; the state dict
        # restores every parameter and buffer bit for bit
        # (load_state_dict demands an exact key/shape match, so an
        # architecture the rebuild cannot reproduce fails loudly in
        # the worker)
        state = spec.model.state_dict()
    return {
        "version": WIRE_VERSION,
        "kind": "evaluator",
        "images": encode_array(spec.images),
        "model": model,
        "state": None if state is None else encode_state(state),
        "config": None if spec.config is None else spec.config.to_dict(),
        "objective": spec.objective,
        "act_mode": spec.act_mode,
        "stats": stats,
    }


def decode_job(payload: dict) -> EvaluatorSpec:
    """Wire payload → a fresh :class:`~repro.parallel.EvaluatorSpec`.

    The worker-side inverse of :func:`encode_job`; everything is
    reconstructed from names and encoded arrays, no pickles involved.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"wire payload must be a dict, got {type(payload).__name__}"
        )
    version = payload.get("version")
    if version != WIRE_VERSION:
        raise ValueError(
            f"unsupported wire payload version {version!r} "
            f"(supported: {WIRE_VERSION})"
        )
    kind = payload.get("kind")
    stats = (
        None if payload.get("stats") is None
        else decode_stats(payload["stats"])
    )
    if kind == "search":
        search = SearchSpec.from_dict(payload["search"])
        return EvaluatorSpec(
            images=search.build_calib(),
            model=search.build_model(),
            config=search.fitness,
            objective=(
                None
                if search.objective == _DEFAULT_OBJECTIVE
                else search.objective
            ),
            act_mode=search.act_sf_mode,
            stats=stats,
        )
    if kind == "evaluator":
        model = payload["model"]
        if "builder" in model:
            builder = decode_callable(model["builder"])
        else:
            builder = decode_callable(model["model_class"])
        return EvaluatorSpec(
            images=decode_array(payload["images"]),
            builder=builder,
            state=(
                None
                if payload.get("state") is None
                else decode_state(payload["state"])
            ),
            config=(
                None
                if payload.get("config") is None
                else config_from_dict(FitnessConfig, payload["config"])
            ),
            objective=payload.get("objective"),
            act_mode=payload.get("act_mode"),
            stats=stats,
        )
    raise ValueError(f"unknown wire payload kind {kind!r}")
