"""JSON wire codec for the :mod:`repro.serve` pool boundary.

The shared process pool used to ship pickled
:class:`~repro.parallel.EvaluatorSpec` objects to its workers.  This
module replaces that with a *wire payload*: a plain-JSON dict (only
dicts, lists, strings, numbers, bools, ``None``) from which any worker
— in this process, another process, or, eventually, another host — can
reconstruct a byte-identical evaluator.  ``json.dumps(payload)`` always
succeeds, which is the property that lets the payload cross a socket
where a pickle should not (``tests/serve/test_wire.py`` asserts the
round trip).

Two payload kinds:

* ``"search"`` — the job was submitted as a declarative
  :class:`~repro.spec.SearchSpec`; the payload carries the spec's dict
  form plus the calibration statistics, and the worker resolves the
  model and calibration batch through the component registries.
* ``"evaluator"`` — a legacy job around live objects; the calibration
  batch and model state travel as bitwise-exact encoded arrays
  (:func:`repro.spec.serde.encode_array`), and the model architecture
  travels *by name*: an importable builder callable or the model's
  importable class, resolved with :func:`decode_callable` worker-side.

A live model instance is named on the wire by, in order of preference:
its ``wire_builder`` tag — a ``(module, qualname)`` pair naming the
importable zero-arg builder that produced it, stamped by
:func:`repro.models.zoo.get_model` and the registry loaders — or its
class, when that class is importable and zero-arg constructible.
Instances that satisfy neither (a closure-defined class, a class whose
constructor needs arguments) are rejected at encode time, in the
submitting process, with a message pointing at the registry/builder
alternatives.

**Framing.**  The remote transport (:mod:`repro.serve.remote`) carries
these payloads over TCP as *frames*: a 4-byte big-endian length prefix,
a 4-byte CRC32 of the body, then that many bytes of UTF-8 JSON.  The
checksum turns silent corruption into a loud, connection-scoped
:class:`FrameCorruptionError` — the pool demotes the offending worker
and requeues its chunks instead of feeding a flipped bit into a search.
:func:`frame_message` and :class:`FrameDecoder` are the pure
encode/decode pair (the decoder is incremental, so arbitrary TCP
segmentation cannot split a message), and :func:`read_frame` /
:func:`write_frame` apply them to a stream.  The handshake and task
messages themselves are built by the ``*_message`` constructors below,
so both ends of the socket agree on one schema:

>>> decoder = FrameDecoder()
>>> decoder.feed(frame_message({"type": "ping", "t": 1}))
[{'type': 'ping', 't': 1}]
>>> payload = frame_message({"type": "pong", "t": 2})
>>> [msg for b in payload for msg in decoder.feed(bytes([b]))]
[{'type': 'pong', 't': 2}]
"""

from __future__ import annotations

import importlib
import inspect
import json
import struct
import zlib

import numpy as np

from ..numerics import LPParams
from ..parallel.evaluator import EvaluatorSpec
from ..quant.engine import FitnessConfig
from ..quant.params import QuantSolution
from ..quant.quantizer import LayerStats
from .serde import (
    config_from_dict,
    decode_array,
    decode_state,
    encode_array,
    encode_state,
)
from .spec import _DEFAULT_OBJECTIVE, SearchSpec

__all__ = [
    "WIRE_VERSION",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FrameCorruptionError",
    "FrameTooLargeError",
    "FrameDecoder",
    "frame_message",
    "read_frame",
    "write_frame",
    "encode_callable",
    "decode_callable",
    "encode_stats",
    "decode_stats",
    "encode_solution",
    "decode_solution",
    "encode_job",
    "decode_job",
    "collect_blob_refs",
    "hello_message",
    "welcome_message",
    "error_message",
    "job_message",
    "task_message",
    "result_message",
    "blob_get_message",
    "blob_put_message",
    "draining_message",
    "SERVER_OPS",
    "submit_message",
    "status_message",
    "result_get_message",
    "cancel_message",
    "list_jobs_message",
    "subscribe_message",
    "reply_message",
    "event_message",
    "metrics_message",
    "fleet_status_message",
    "subscribe_metrics_message",
]

#: wire-format version stamped into every job payload and handshake
WIRE_VERSION = 1

#: remote-transport protocol version: the frame layout plus the message
#: schema both ends must share.  Bumped whenever either changes (v2
#: added CRC32 frame checksums and the draining frame); a client and a
#: worker built at different versions refuse each other at handshake
#: time with a message naming both numbers, instead of failing
#: mid-search on an undecodable frame.
PROTOCOL_VERSION = 2

#: refuse frames larger than this (a corrupt length prefix must not
#: make a worker allocate gigabytes); large models override per call
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: 4-byte big-endian body length + 4-byte CRC32 of the body
_FRAME_HEADER = struct.Struct(">II")


class FrameCorruptionError(ValueError):
    """A frame's body failed its CRC32 checksum.

    A subclass of ``ValueError`` so every existing drop-the-connection
    handler still fires; the remote pool additionally catches it
    specifically to count ``fault.checksum_rejects`` and demote the
    worker cleanly.
    """


class FrameTooLargeError(FrameCorruptionError):
    """A frame's length prefix exceeds the receiver's ``max_bytes``.

    A subclass of :class:`FrameCorruptionError` (and therefore
    ``ValueError``): every drop-the-connection handler still fires, but
    callers that care — e.g. a server deciding whether to advise a
    bigger ``max_frame`` instead of suspecting stream corruption — can
    distinguish an oversized frame from a failed checksum.
    """


def _check_length(length: int, max_bytes: int) -> None:
    if length > max_bytes:
        raise FrameTooLargeError(
            f"frame length {length} exceeds the {max_bytes}-byte limit"
        )


def _check_crc(body: bytes, expected: int) -> None:
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != expected:
        raise FrameCorruptionError(
            f"frame checksum mismatch (got {actual:#010x}, frame "
            f"declared {expected:#010x}): corrupt stream"
        )


# -- framing -------------------------------------------------------------
def frame_message(message: dict, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One JSON message → one length-prefixed, CRC32-protected frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > max_bytes:
        raise ValueError(
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte limit"
        )
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


class FrameDecoder:
    """Incremental inverse of :func:`frame_message`.

    Feed it byte chunks in any segmentation (TCP guarantees order, not
    boundaries); it returns every completely received message, keeping
    partial frames buffered.  A length prefix above ``max_bytes``
    raises :class:`FrameTooLargeError`, a body that is not a JSON
    object ``ValueError``, a checksum mismatch
    :class:`FrameCorruptionError` — the caller drops the connection
    rather than resynchronize a corrupt stream.
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_bytes = max_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        messages = []
        while True:
            if len(self._buffer) < _FRAME_HEADER.size:
                return messages
            length, crc = _FRAME_HEADER.unpack_from(self._buffer)
            _check_length(length, self.max_bytes)
            end = _FRAME_HEADER.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[_FRAME_HEADER.size:end])
            del self._buffer[:end]
            _check_crc(body, crc)
            message = json.loads(body.decode("utf-8"))
            if not isinstance(message, dict):
                raise ValueError(
                    f"frame body must be a JSON object, got "
                    f"{type(message).__name__}"
                )
            messages.append(message)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)


def write_frame(stream, message: dict,
                max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Frame ``message`` onto a binary stream (socket ``makefile``)."""
    stream.write(frame_message(message, max_bytes))
    stream.flush()


def read_frame(stream, max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read exactly one frame from a binary stream.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    ``ValueError`` on a truncated frame or a non-object body,
    :class:`FrameTooLargeError` on an oversized length prefix, and
    :class:`FrameCorruptionError` on a checksum mismatch (the stream is
    unrecoverable in every case).
    """
    header = stream.read(_FRAME_HEADER.size)
    if not header:
        return None
    if len(header) < _FRAME_HEADER.size:
        raise ValueError("truncated frame header")
    length, crc = _FRAME_HEADER.unpack(header)
    _check_length(length, max_bytes)
    body = stream.read(length)
    if len(body) < length:
        raise ValueError("truncated frame body")
    _check_crc(body, crc)
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


# -- protocol messages ---------------------------------------------------
def hello_message(token: str | None = None) -> dict:
    """Client → worker handshake opener (protocol/payload versions +
    auth token).  Both versions ride the frame so a mismatched build is
    refused here, with a message naming the two versions, instead of
    failing later on an unknown frame."""
    return {
        "type": "hello",
        "protocol": PROTOCOL_VERSION,
        "version": WIRE_VERSION,
        "token": token,
    }


def welcome_message(capacity: int = 1) -> dict:
    """Worker → client handshake acceptance (advertised capacity)."""
    return {
        "type": "welcome",
        "protocol": PROTOCOL_VERSION,
        "version": WIRE_VERSION,
        "capacity": int(capacity),
    }


def draining_message() -> dict:
    """Worker → client: this worker is draining (SIGTERM) — it will
    finish the chunks already accepted, then close; send it nothing
    new."""
    return {"type": "draining"}


def error_message(error: str) -> dict:
    """Either direction: a fatal, connection-scoped error."""
    return {"type": "error", "error": str(error)}


def job_message(job: str, payload: dict) -> dict:
    """Client → worker job registration (an :func:`encode_job` payload)."""
    return {"type": "job", "job": job, "payload": payload}


def task_message(task: int, job: str, seq: int, chunk: int,
                 solutions) -> dict:
    """Client → worker chunk submission (solutions wire-encoded)."""
    return {
        "type": "task",
        "task": int(task),
        "job": job,
        "seq": int(seq),
        "chunk": int(chunk),
        "solutions": [encode_solution(sol) for sol in solutions],
    }


def result_message(task: int, job: str, seq: int, chunk: int, fits,
                   perf_delta, elapsed: float,
                   error: str | None = None) -> dict:
    """Worker → client chunk outcome (mirrors
    :class:`repro.serve.ChunkResult` field for field)."""
    return {
        "type": "result",
        "task": int(task),
        "job": job,
        "seq": int(seq),
        "chunk": int(chunk),
        "fits": fits,
        "perf_delta": perf_delta,
        "elapsed": float(elapsed),
        "error": error,
    }


def blob_get_message(digests, cached=()) -> dict:
    """Worker → client blob reconciliation (the ``BLOB_GET`` frame).

    Sent once per registered job whose payload carries blob references:
    ``digests`` lists the blobs the worker is missing and needs pushed,
    ``cached`` the ones its store already holds — the acknowledgement
    the client's ``transport.bytes_saved`` counter keys off.
    """
    return {
        "type": "blob_get",
        "digests": sorted(digests),
        "cached": sorted(cached),
    }


def blob_put_message(digest: str, payload: dict) -> dict:
    """Client → worker blob delivery (the ``BLOB_PUT`` frame): one
    content digest plus the inline encoded array it names
    (:func:`repro.spec.serde.encode_array`)."""
    return {"type": "blob_put", "digest": str(digest), "payload": payload}


# -- search-service frames (SearchServer <-> SearchClient) ----------------
#: the request operations a search daemon answers; anything else gets
#: an ``ok=false`` reply (the session survives — see
#: :mod:`repro.serve.server`)
SERVER_OPS = (
    "submit", "status", "result", "cancel", "list_jobs", "subscribe",
    "fleet_status", "subscribe_metrics",
)


def submit_message(spec: dict, priority: int = 0,
                   job: str | None = None, req: int = 0) -> dict:
    """Client → server: queue one search (``spec`` is a
    :meth:`repro.spec.SearchSpec.to_dict` payload).  Higher ``priority``
    runs earlier; ``job`` proposes a job name (the server's reply names
    the job authoritatively — an identical spec dedupes onto the
    existing job)."""
    return {
        "type": "submit",
        "spec": spec,
        "priority": int(priority),
        "job": job,
        "req": int(req),
    }


def status_message(job: str, req: int = 0) -> dict:
    """Client → server: one job's current lifecycle state."""
    return {"type": "status", "job": str(job), "req": int(req)}


def result_get_message(job: str, req: int = 0) -> dict:
    """Client → server: fetch a finished job's result record (the
    ``result`` op; named ``result_get_message`` because
    :func:`result_message` is the worker transport's chunk-result
    frame)."""
    return {"type": "result", "job": str(job), "req": int(req)}


def cancel_message(job: str, req: int = 0) -> dict:
    """Client → server: cancel a queued job now, or a running job at
    its next batch boundary."""
    return {"type": "cancel", "job": str(job), "req": int(req)}


def list_jobs_message(req: int = 0) -> dict:
    """Client → server: summarize every job the daemon knows."""
    return {"type": "list_jobs", "req": int(req)}


def subscribe_message(job: str, req: int = 0) -> dict:
    """Client → server: stream one job's progress/state events until it
    reaches a terminal state (the reply snapshots the current state; a
    job already terminal streams nothing)."""
    return {"type": "subscribe", "job": str(job), "req": int(req)}


def reply_message(req, payload: dict | None = None,
                  error: str | None = None) -> dict:
    """Server → client: the answer to one request, correlated by the
    request's ``req`` id.  ``ok`` is true iff ``error`` is ``None``;
    ``payload`` fields ride at the top level."""
    message = {"type": "reply", "req": req, "ok": error is None}
    if error is not None:
        message["error"] = str(error)
    if payload:
        message.update(payload)
    return message


def event_message(job: str, kind: str, data: dict,
                  final: bool = False) -> dict:
    """Server → client: one subscription event — ``kind`` is
    ``progress`` (a completed candidate batch: generation, evaluation
    counts, best fitness, perf-counter deltas) or ``state`` (a
    lifecycle transition).  ``final`` marks the job's terminal event;
    the stream ends after it."""
    return {
        "type": "event",
        "job": str(job),
        "event": str(kind),
        "final": bool(final),
        "data": data,
    }


# -- live-telemetry frames (repro.obs) ------------------------------------
def metrics_message(source: str, seq: int, t: float,
                    delta: dict | None = None,
                    gauges: dict | None = None,
                    workers: list | None = None,
                    status: dict | None = None) -> dict:
    """One telemetry sample: a :func:`repro.perf.diff_snapshots`
    perf-counter delta since the previous sample, plus point-in-time
    gauges (queue depth, session count, heartbeat latency...).

    Workers push these upstream to the pool; the daemon broadcasts a
    merged fleet-wide sample (``workers`` lists the per-worker samples
    folded in, ``status`` carries scheduler/job state) to every
    ``subscribe_metrics`` session.  Never a request — like
    :func:`event_message` it carries no ``req`` — and strictly passive:
    dropping every metrics frame changes no search result.
    """
    message = {
        "type": "metrics",
        "source": str(source),
        "seq": int(seq),
        "t": float(t),
        "delta": delta if delta is not None else {},
        "gauges": gauges if gauges is not None else {},
    }
    if workers is not None:
        message["workers"] = workers
    if status is not None:
        message["status"] = status
    return message


def fleet_status_message(req: int = 0) -> dict:
    """Client → server: one-shot fleet snapshot — membership, per-job
    scheduler state, queue depths, and the latest telemetry sample per
    source (the ``fleet_status`` op; ``status`` is the per-job op)."""
    return {"type": "fleet_status", "req": int(req)}


def subscribe_metrics_message(req: int = 0) -> dict:
    """Client → server: stream merged fleet telemetry samples
    (:func:`metrics_message` frames) until the session closes.  The
    reply says whether emission is enabled and at what interval."""
    return {"type": "subscribe_metrics", "req": int(req)}


# -- candidate solutions -------------------------------------------------
def encode_solution(solution: QuantSolution) -> list:
    """:class:`~repro.quant.QuantSolution` → ``[[n, es, rs, sf], ...]``.

    Ints are JSON-exact and the float scale factor survives via
    shortest-repr, so the round trip is bitwise-faithful — remote
    workers score exactly the candidate the engine generated.
    """
    return [
        [int(p.n), int(p.es), int(p.rs), float(p.sf)]
        for p in solution.layer_params
    ]


def decode_solution(rows) -> QuantSolution:
    """Inverse of :func:`encode_solution` (no clamping: the rows are an
    already-valid solution, not a mutated Δ vector)."""
    return QuantSolution(
        tuple(
            LPParams(n=int(n), es=int(es), rs=int(rs), sf=float(sf))
            for n, es, rs, sf in rows
        )
    )


# -- callables by name ---------------------------------------------------
def encode_callable(fn) -> dict:
    """Name an importable callable (``{"module", "qualname"}``).

    Round-trip verified: the encoded reference must resolve back to the
    exact same object, so a stale or shadowed name fails at encode time
    (in the submitting process, with context) rather than in a worker.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(
            f"{fn!r} cannot be named on the wire (module={module!r}, "
            f"qualname={qualname!r}); use a module-level builder "
            "callable or register the model in the spec registry "
            "(repro.spec.registry.register('model', name, loader))"
        )
    if decode_callable({"module": module, "qualname": qualname}) is not fn:
        raise ValueError(
            f"{module}.{qualname} does not resolve back to {fn!r}; "
            "wire references must be importable by name"
        )
    return {"module": module, "qualname": qualname}


def decode_callable(payload: dict):
    """Inverse of :func:`encode_callable` (plain getattr walk)."""
    obj = importlib.import_module(payload["module"])
    for part in payload["qualname"].split("."):
        obj = getattr(obj, part)
    return obj


def _encode_model_instance(model, probe_input=None) -> dict:
    """Name a live model instance on the wire.

    Prefers the instance's ``wire_builder`` tag (the importable zero-arg
    builder that produced it — trained zoo checkpoints and the registry
    loaders stamp it); otherwise the instance's class, which must then
    be zero-arg constructible so the worker can rebuild the
    architecture before loading the state dict.

    The class path is *verified*, not assumed: a probe instance is
    rebuilt here exactly as the worker will rebuild it, the state dict
    is loaded, and (given ``probe_input``) one forward pass must match
    the original bit for bit.  This catches the silent failure mode
    where a behavior-affecting but shape-preserving constructor
    argument (one ``load_state_dict`` cannot restore) would make
    workers score a functionally different model.
    """
    tag = getattr(model, "wire_builder", None)
    if tag is not None:
        module, qualname = tag
        payload = {"module": str(module), "qualname": str(qualname)}
        decode_callable(payload)  # stale tags fail here, with context
        return {"builder": payload}
    cls = type(model)
    try:
        required = [
            p.name
            for p in inspect.signature(cls).parameters.values()
            if p.default is inspect.Parameter.empty
            and p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
    except (TypeError, ValueError):
        required = []
    if required:
        raise ValueError(
            f"{cls.__module__}.{cls.__qualname__} requires constructor "
            f"argument(s) {required}, so a worker cannot rebuild this "
            "model from its class name; submit a registered model name "
            "(repro.spec.SearchSpec), a module-level builder callable, "
            "or a model carrying a wire_builder tag"
        )
    probe = cls()
    probe.load_state_dict(model.state_dict())  # key/shape drift fails here
    if probe_input is not None:
        probe.eval()
        # compare in eval mode (a train-mode BN forward would mutate the
        # submitted model's running statistics); restore the caller's
        # mode afterwards
        was_training = bool(getattr(model, "training", False))
        if was_training:
            model.eval()
        try:
            reference = model(probe_input)
        finally:
            if was_training:
                model.train()
        if not np.array_equal(probe(probe_input), reference):
            raise ValueError(
                f"{cls.__module__}.{cls.__qualname__}() + load_state_dict "
                "does not reproduce this instance (a constructor argument "
                "the state dict cannot restore?); submit a registered "
                "model name, a module-level builder callable, or a model "
                "carrying a wire_builder tag"
            )
    return {"model_class": encode_callable(cls)}


# -- calibration statistics ----------------------------------------------
def encode_stats(stats: LayerStats) -> dict:
    """:class:`~repro.quant.LayerStats` → plain JSON (names, counts,
    log-centres — floats survive JSON exactly via shortest-repr)."""
    return {
        "names": list(stats.names),
        "param_counts": [int(n) for n in stats.param_counts],
        "weight_log_centers": [float(c) for c in stats.weight_log_centers],
        "act_log_centers": [float(c) for c in stats.act_log_centers],
    }


def decode_stats(payload: dict) -> LayerStats:
    """Inverse of :func:`encode_stats`."""
    return LayerStats(
        names=list(payload["names"]),
        param_counts=[int(n) for n in payload["param_counts"]],
        weight_log_centers=[float(c) for c in payload["weight_log_centers"]],
        act_log_centers=[float(c) for c in payload["act_log_centers"]],
    )


# -- whole jobs ----------------------------------------------------------
def encode_job(spec: EvaluatorSpec, search: SearchSpec | None = None,
               blobs=None) -> dict:
    """One pool job → plain-JSON wire payload.

    ``search`` (when the job was submitted declaratively and is
    serializable) selects the compact ``"search"`` payload; otherwise
    the live objects in ``spec`` are encoded field by field.

    ``blobs`` (a :class:`repro.spec.blob.BlobStore`) switches the
    calibration batch and state-dict arrays from inline base64 to
    content-addressed ``{"blob": "<digest>"}`` references — transports
    with a blob channel (shared-memory process pools, the remote
    ``blob_get``/``blob_put`` frames) ship each distinct tensor once
    per fleet instead of once per payload.  Without a store the payload
    is fully self-contained, as before.
    """
    stats = None if spec.stats is None else encode_stats(spec.stats)
    if search is not None and search.serializable:
        return {
            "version": WIRE_VERSION,
            "kind": "search",
            "search": search.to_dict(),
            "stats": stats,
        }
    if spec.builder is not None:
        model = {"builder": encode_callable(spec.builder)}
        state = spec.state
    else:
        model = _encode_model_instance(spec.model, spec.images[:1])
        # the builder/class rebuilds the architecture; the state dict
        # restores every parameter and buffer bit for bit
        # (load_state_dict demands an exact key/shape match, so an
        # architecture the rebuild cannot reproduce fails loudly in
        # the worker)
        state = spec.model.state_dict()
    return {
        "version": WIRE_VERSION,
        "kind": "evaluator",
        "images": encode_array(spec.images, blobs=blobs),
        "model": model,
        "state": None if state is None else encode_state(state, blobs=blobs),
        "config": None if spec.config is None else spec.config.to_dict(),
        "objective": spec.objective,
        "act_mode": spec.act_mode,
        "stats": stats,
    }


def collect_blob_refs(payload) -> dict[str, dict]:
    """Every ``{"blob": digest}`` array reference reachable in a wire
    payload, as ``digest → encoded-array payload`` (first occurrence
    wins; the dtype/shape metadata is identical for equal digests).

    Transports use this to reconcile stores before the first task: the
    worker diffs the refs against its cache and answers with one
    ``blob_get`` frame, the client sizes its ``transport.bytes_saved``
    win off the refs a warm worker already held.
    """
    refs: dict[str, dict] = {}

    def walk(node) -> None:
        if isinstance(node, dict):
            if node.get("__ndarray__") and "blob" in node:
                refs.setdefault(node["blob"], node)
                return
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for value in node:
                walk(value)

    walk(payload)
    return refs


def decode_job(payload: dict, blobs=None, fetch=None) -> EvaluatorSpec:
    """Wire payload → a fresh :class:`~repro.parallel.EvaluatorSpec`.

    The worker-side inverse of :func:`encode_job`; everything is
    reconstructed from names and encoded arrays, no pickles involved.
    ``blobs``/``fetch`` resolve content-addressed array references the
    same way :func:`repro.spec.serde.decode_array` does; a payload with
    no blob refs never needs either.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"wire payload must be a dict, got {type(payload).__name__}"
        )
    version = payload.get("version")
    if version != WIRE_VERSION:
        raise ValueError(
            f"unsupported wire payload version {version!r} "
            f"(supported: {WIRE_VERSION})"
        )
    kind = payload.get("kind")
    stats = (
        None if payload.get("stats") is None
        else decode_stats(payload["stats"])
    )
    if kind == "search":
        search = SearchSpec.from_dict(payload["search"])
        return EvaluatorSpec(
            images=search.build_calib(),
            model=search.build_model(),
            config=search.fitness,
            objective=(
                None
                if search.objective == _DEFAULT_OBJECTIVE
                else search.objective
            ),
            act_mode=search.act_sf_mode,
            stats=stats,
        )
    if kind == "evaluator":
        model = payload["model"]
        if "builder" in model:
            builder = decode_callable(model["builder"])
        else:
            builder = decode_callable(model["model_class"])
        return EvaluatorSpec(
            images=decode_array(payload["images"], blobs=blobs, fetch=fetch),
            builder=builder,
            state=(
                None
                if payload.get("state") is None
                else decode_state(payload["state"], blobs=blobs, fetch=fetch)
            ),
            config=(
                None
                if payload.get("config") is None
                else config_from_dict(FitnessConfig, payload["config"])
            ),
            objective=payload.get("objective"),
            act_mode=payload.get("act_mode"),
            stats=stats,
        )
    raise ValueError(f"unknown wire payload kind {kind!r}")
