"""Always-on search daemon: specs over the socket, durable on disk.

:class:`SearchServer` is the service front door the rest of the stack
builds toward (CLI: ``scripts/run_server.py``).  Clients speak the same
length-prefixed, CRC-checked JSON frame protocol as the worker
transport (:mod:`repro.spec.wire`): after the hello/welcome handshake
they issue ``submit`` / ``status`` / ``result`` / ``cancel`` /
``list_jobs`` / ``subscribe`` requests, and the daemon multiplexes
accepted jobs onto one :class:`~repro.serve.SearchScheduler` over any
worker-pool backend (serial / thread / process / remote).  Unlike the
worker transport, a malformed or unknown request gets an ``ok=false``
reply and the session *survives* — a service front door cannot let one
bad client frame kill the conversation.

Durability is two files under ``data_dir``
(:mod:`repro.serve.store`): an append-only journal of job lifecycle
records, and a result store keyed by
:meth:`repro.spec.SearchSpec.digest`.  A restarted daemon replays the
journal: ``done`` jobs serve their records straight from the store
(zero re-evaluation), ``failed`` / ``cancelled`` jobs stay terminal,
and ``submitted`` / ``running`` jobs — the ones a crash interrupted —
re-queue and re-run bitwise-identically (evaluation is deterministic,
so a re-run cannot move a bit).  Because the digest ignores the
executor, a result computed serially satisfies a later remote
submission of the same spec.

:class:`SearchClient` is the library client (``run_search.py
--server HOST:PORT`` uses it): submit specs with a priority, stream
progress events (generation / fitness / perf-counter deltas), cancel,
and ``wait()`` — which transparently reconnects if the daemon restarts
mid-job, because the job is durable on the server side.
"""

from __future__ import annotations

import contextlib
import itertools
import queue
import socket
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from ..obs import MetricsEmitter, TimeSeriesStore, get_hub, merge_samples
from ..parallel import ExecutorConfig
from ..parallel.executor import parse_address
from ..perf import get_perf
from ..spec.spec import SearchSpec
from ..spec.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SERVER_OPS,
    WIRE_VERSION,
    error_message,
    event_message,
    fleet_status_message,
    frame_message,
    hello_message,
    metrics_message,
    read_frame,
    reply_message,
    subscribe_message,
    subscribe_metrics_message,
    welcome_message,
)
from .scheduler import SearchScheduler
from .store import Journal, ResultStore, result_record

__all__ = ["SearchServer", "SearchClient", "ServerError"]

HANDSHAKE_TIMEOUT_S = 10.0

#: job lifecycle: queued → running → done | failed | cancelled
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_TERMINAL = ("done", "failed", "cancelled")


class ServerError(RuntimeError):
    """A search-daemon request was answered with ``ok=false``."""


class _SimulatedCrash(BaseException):
    """Raised by the ``crash_hook`` test knob: models a SIGKILL at a
    deterministic batch boundary — the runner stops dead and journals
    nothing further.  A ``BaseException`` so the scheduler's job-scoped
    ``except Exception`` recovery cannot swallow it."""


@dataclass
class _ServerJob:
    """Daemon-side bookkeeping for one submitted search."""

    name: str
    spec: SearchSpec
    digest: str
    priority: int
    order: int
    state: str = "queued"
    error: str | None = None
    cached: bool = False
    cancel_requested: bool = False
    handle: object | None = None
    record: dict | None = field(default=None, repr=False)


def _describe(job: _ServerJob) -> dict:
    return {
        "job": job.name,
        "state": job.state,
        "digest": job.digest,
        "priority": job.priority,
        "cached": job.cached,
        "error": job.error,
    }


class _ServerSession(threading.Thread):
    """One accepted client connection on a :class:`SearchServer`.

    The reader thread (this thread) parses requests; a dedicated writer
    thread drains an outbound queue, so a stalled subscriber can never
    block the daemon's runner.  Request-level problems — unknown ops,
    missing fields, invalid specs — get an ``ok=false`` reply and the
    session keeps going; only stream-level corruption (bad CRC, torn
    frame) or EOF ends it.
    """

    def __init__(self, server: "SearchServer", sock: socket.socket,
                 peer) -> None:
        super().__init__(daemon=True, name=f"repro-serve-{peer}")
        self.server = server
        self.sock = sock
        self.peer = peer
        self._out: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False

    # -- plumbing --------------------------------------------------------
    def enqueue(self, message: dict) -> None:
        """Queue one frame for the writer thread (never blocks)."""
        self._out.put(message)

    def close(self) -> None:
        self._closed = True
        self._out.put(None)
        with contextlib.suppress(OSError):
            self.sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self.sock.close()

    def _write_loop(self) -> None:
        while True:
            message = self._out.get()
            if message is None or self._closed:
                return
            try:
                self.sock.sendall(frame_message(message))
            except (OSError, ValueError):
                self.close()
                return

    # -- session ---------------------------------------------------------
    def run(self) -> None:
        writer = None
        try:
            self.sock.settimeout(HANDSHAKE_TIMEOUT_S)
            rfile = self.sock.makefile("rb")
            if not self._handshake(rfile):
                return
            self.sock.settimeout(None)
            writer = threading.Thread(
                target=self._write_loop, daemon=True,
                name=f"{self.name}-write",
            )
            writer.start()
            self._read_loop(rfile)
        except (OSError, ValueError):
            pass  # connection died or stream corrupt: session over
        finally:
            self.close()
            self.server._session_done(self)

    def _handshake(self, rfile) -> bool:
        message = read_frame(rfile, self.server.max_frame)
        if message is None or message.get("type") != "hello":
            self._send_now(error_message("expected hello frame"))
            return False
        if message.get("protocol") != PROTOCOL_VERSION:
            self._send_now(error_message(
                f"protocol version mismatch: client speaks "
                f"{message.get('protocol')!r}, server speaks "
                f"{PROTOCOL_VERSION}; upgrade the older build"
            ))
            return False
        if message.get("version") != WIRE_VERSION:
            self._send_now(error_message(
                f"unsupported wire version {message.get('version')!r} "
                f"(server speaks {WIRE_VERSION})"
            ))
            return False
        if not self.server._token_ok(message.get("token")):
            self._send_now(error_message("bad auth token"))
            self.server._log(f"refused {self.peer}: bad auth token")
            return False
        self._send_now(welcome_message(capacity=1))
        self.server._log(f"accepted {self.peer}")
        return True

    def _send_now(self, message: dict) -> None:
        with contextlib.suppress(OSError):
            self.sock.sendall(frame_message(message))

    def _read_loop(self, rfile) -> None:
        while not self._closed:
            message = read_frame(rfile, self.server.max_frame)
            if message is None:
                return  # clean EOF: client went away
            kind = message.get("type")
            if kind == "ping":
                self.enqueue({"type": "pong", "t": message.get("t")})
                continue
            if kind == "bye":
                return
            req = message.get("req")
            try:
                payload = self._handle(kind, message)
            except ServerError as exc:
                self.enqueue(reply_message(req, error=str(exc)))
                continue
            except Exception as exc:  # lint: disable=broad-except -- session survival: a malformed request is answered, not fatal
                # a malformed request must not kill the session: reply
                # with the problem and keep listening
                self.enqueue(reply_message(
                    req, error=f"bad request: {exc!r}"
                ))
                continue
            self.enqueue(reply_message(req, payload))

    # -- request dispatch ------------------------------------------------
    def _handle(self, kind, message: dict) -> dict:
        server = self.server
        if kind == "submit":
            spec_payload = message.get("spec")
            if not isinstance(spec_payload, dict):
                raise ServerError("submit needs a spec object")
            try:
                spec = SearchSpec.from_dict(spec_payload)
            except (TypeError, ValueError) as exc:
                raise ServerError(f"invalid spec: {exc}") from exc
            job, existing = server.submit_job(
                spec,
                priority=message.get("priority", 0),
                name=message.get("job"),
            )
            return dict(_describe(job), existing=existing)
        if kind == "status":
            return _describe(server._get_job(message.get("job")))
        if kind == "result":
            job = server._get_job(message.get("job"))
            if job.state != "done":
                detail = f": {job.error}" if job.error else ""
                raise ServerError(
                    f"job {job.name!r} is {job.state}{detail}"
                )
            return {"job": job.name, "record": server.job_record(job.name)}
        if kind == "cancel":
            return _describe(server.cancel_job(message.get("job")))
        if kind == "list_jobs":
            return {"jobs": server.list_jobs()}
        if kind == "subscribe":
            return server._subscribe(self, message.get("job"))
        if kind == "fleet_status":
            return server.fleet_status()
        if kind == "subscribe_metrics":
            return server._subscribe_metrics(self)
        raise ServerError(
            f"unknown request type {kind!r}; expected one of {SERVER_OPS}"
        )


class SearchServer:
    """The always-on LPQ search daemon.

    Accepts framed-JSON client connections, queues submitted
    :class:`~repro.spec.SearchSpec` jobs durably (journal + digest-keyed
    result store under ``data_dir``), and runs them on one shared
    :class:`~repro.serve.SearchScheduler` over ``executor`` — the same
    :class:`~repro.parallel.ExecutorConfig` knob as everywhere else, so
    the daemon fronts a serial process or a remote worker fleet with
    one argument.  Jobs of equal priority run in submission order;
    higher ``priority`` runs earlier.  Results are bitwise-identical to
    standalone :func:`repro.quant.lpq_quantize` runs: restarts,
    backends, and crash-recovery re-runs cannot move a bit.

    >>> from repro.quant import LPQConfig
    >>> from repro.spec import CalibSpec, SearchSpec
    >>> from repro.serve.server import SearchClient, SearchServer
    >>> spec = SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4, seed=3),
    ...                   config=LPQConfig(population=3, passes=1, cycles=1,
    ...                                    diversity_parents=2,
    ...                                    hw_widths=(4, 8), seed=7))
    >>> server = SearchServer().start()     # ephemeral port, temp data dir
    >>> client = SearchClient(server.address)
    >>> job = client.submit(spec)["job"]
    >>> record = client.wait(job)           # streams progress, returns record
    >>> len(record["solution"]) == len(client.wait(job)["solution"])
    True
    >>> client.status(job)["state"]         # second wait hit the store
    'done'
    >>> client.close(); server.stop()
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        data_dir=None,
        executor: ExecutorConfig | None = None,
        target_chunk_s: float = 0.25,
        max_jobs_per_round: int = 0,
        verbose: bool = False,
        max_frame: int = MAX_FRAME_BYTES,
        perf=None,
        crash_hook=None,
        compact_at: int = 50_000,
        metrics_interval: float = 0.0,
        timeseries=None,
    ) -> None:
        self.host = host
        self.port = port
        self.token = token
        if data_dir is None:
            # convenience for tests/doctests: durable only for this
            # server's lifetime — pass a real directory in production
            data_dir = tempfile.mkdtemp(prefix="repro-server-")
        self.data_dir = Path(data_dir)
        self.executor_config = executor or ExecutorConfig()
        self.target_chunk_s = target_chunk_s
        self.max_jobs_per_round = max_jobs_per_round
        self.verbose = verbose
        self.max_frame = max_frame
        self.perf = perf if perf is not None else get_perf()
        #: test knob: ``crash_hook(server, job, info)`` runs at every
        #: batch boundary; returning true simulates a SIGKILL there —
        #: the runner halts instantly and journals nothing further
        self.crash_hook = crash_hook
        self.compact_at = compact_at
        #: lifetime counters: jobs actually evaluated here, jobs served
        #: from the digest store, interrupted jobs re-queued at startup
        self.stats = {"executed": 0, "replayed": 0, "recovered": 0}
        #: live-telemetry knobs (repro.obs): sampling interval for the
        #: merged fleet stream (0 = off) and the directory the sampled
        #: trajectory persists into (None = not persisted)
        self.metrics_interval = float(metrics_interval)
        self.timeseries_dir = timeseries
        self.timeseries: TimeSeriesStore | None = None
        self._emitter: MetricsEmitter | None = None
        self._hub_unsubscribe = None
        #: worker samples accumulated off the hub since the last tick
        self._worker_samples: dict[str, list] = {}
        self._metric_subs: set[_ServerSession] = set()
        self._scheduler: SearchScheduler | None = None
        self.journal: Journal | None = None
        self.store: ResultStore | None = None
        self._jobs: dict[str, _ServerJob] = {}
        self._by_digest: dict[str, str] = {}
        self._subs: dict[str, set[_ServerSession]] = {}
        self._sessions: set[_ServerSession] = set()
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._order = itertools.count()
        self._autoname = itertools.count(1)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._runner: threading.Thread | None = None
        self._closed = False
        self._suppress = False  # kill(): journal nothing further
        self._started = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "SearchServer":
        """Recover state from ``data_dir``, bind, and begin serving."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self.journal = Journal(self.data_dir / "journal.jsonl",
                               perf=self.perf)
        self.store = ResultStore(self.data_dir / "results", perf=self.perf)
        self._recover()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(32)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name="repro-serve-accept",
        )
        self._accept_thread.start()
        self._runner = threading.Thread(
            target=self._run_loop, daemon=True, name="repro-serve-runner",
        )
        self._runner.start()
        if self.timeseries_dir is not None:
            self.timeseries = TimeSeriesStore(
                Path(self.timeseries_dir) / "timeseries.jsonl",
                perf=self.perf,
            )
        if self.metrics_interval > 0:
            self._hub_unsubscribe = get_hub().subscribe(
                self._on_worker_sample
            )
            self._emitter = MetricsEmitter(
                self.perf, self._emit_fleet_sample, self.metrics_interval,
                source=f"server:{self.address}",
                gauges=self._metrics_gauges,
            )
            self._emitter.start()
        return self

    @property
    def address(self) -> str:
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    def stop(self) -> None:
        """Graceful shutdown: interrupt the running round at the next
        batch boundary *without* journaling terminal records for the
        interrupted jobs — they stay ``running`` in the journal, so a
        restart re-queues and re-runs them."""
        self._shutdown(suppress=False)

    def kill(self) -> None:
        """Abrupt shutdown (tests): as close to SIGKILL as an
        in-process server can get — everything stops now and nothing
        more reaches the journal or the store."""
        self._shutdown(suppress=True)

    def _shutdown(self, suppress: bool) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._suppress = self._suppress or suppress
            for job in self._jobs.values():
                if job.state == "running" and job.handle is not None:
                    job.handle.cancel()
            self._wake.notify_all()
            sessions = list(self._sessions)
        if self._hub_unsubscribe is not None:
            self._hub_unsubscribe()
            self._hub_unsubscribe = None
        if self._emitter is not None:
            # flush one final fleet sample (to subscribers still
            # connected and into the time series) before tearing down
            self._emitter.stop()
            self._emitter = None
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        for session in sessions:
            session.close()
        if self._runner is not None:
            self._runner.join(timeout=30.0)
        if self.journal is not None:
            self.journal.close()
        if self.timeseries is not None:
            self.timeseries.close()
        self._log("server stopped")

    def serve_forever(self) -> None:
        """Block until the server is stopped (CLI main loop)."""
        while not self._closed:
            time.sleep(0.2)

    def __enter__(self) -> "SearchServer":
        return self if self._started else self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- recovery --------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the job table from the journal: done jobs point at
        the store, terminal jobs stay terminal, and submitted/running
        jobs — the ones a crash interrupted — re-queue (unless the
        store already holds their digest, in which case they complete
        for free)."""
        records = self.journal.replay()
        states: dict[str, dict] = {}
        for record in records:
            op, name = record.get("op"), record.get("job")
            if op == "submitted":
                states[name] = {
                    "spec": record.get("spec"),
                    "priority": record.get("priority", 0),
                    "state": "queued",
                    "error": None,
                }
            elif name in states:
                if op in ("running", "done", "failed", "cancelled"):
                    states[name]["state"] = (
                        "running" if op == "running" else op
                    )
                if op == "failed":
                    states[name]["error"] = record.get("error")
        for name, info in states.items():
            try:
                spec = SearchSpec.from_dict(info["spec"])
            except (TypeError, ValueError) as exc:
                self._log(f"cannot rebuild job {name!r}: {exc}")
                continue
            job = _ServerJob(
                name=name, spec=spec, digest=spec.digest(),
                priority=int(info["priority"]), order=next(self._order),
            )
            if info["state"] == "done":
                job.state, job.cached = "done", True
                self.stats["replayed"] += 1
            elif info["state"] in ("failed", "cancelled"):
                job.state, job.error = info["state"], info["error"]
            else:
                record = self.store.load(job.digest)
                if record is not None:
                    # the result landed in the store before the crash
                    # could journal it (or an identical spec already
                    # ran): done, zero re-evaluation
                    job.state, job.cached, job.record = "done", True, record
                    self.journal.append("done", name, digest=job.digest,
                                        cached=True)
                    self.stats["replayed"] += 1
                else:
                    job.state = "queued"
                    if info["state"] == "running":
                        self.stats["recovered"] += 1
            self._jobs[name] = job
            if job.state not in ("failed", "cancelled"):
                self._by_digest[job.digest] = name
        if len(records) >= self.compact_at:
            dropped = self.journal.compact()
            self._log(f"compacted journal: dropped {dropped} records")
        if self._jobs:
            self._log(
                f"recovered {len(self._jobs)} job(s): "
                f"{self.stats['replayed']} from store, "
                f"{self.stats['recovered']} interrupted re-queued"
            )

    # -- submission / queries (called from sessions) ---------------------
    def submit_job(self, spec: SearchSpec, priority: int = 0,
                   name: str | None = None) -> tuple[_ServerJob, bool]:
        """Queue one spec; returns ``(job, existing)`` where ``existing``
        is true when an equal-digest job already covered it."""
        if not spec.serializable:
            raise ServerError(
                "spec must name a registered model and a calib descriptor"
            )
        digest = spec.digest()
        with self._lock:
            if self._closed:
                raise ServerError("server is stopping")
            current = self._by_digest.get(digest)
            if current is not None:
                return self._jobs[current], True
            requested = name or spec.name
            job_name = requested or f"job-{next(self._autoname)}"
            while job_name in self._jobs:
                if requested:
                    raise ServerError(
                        f"job name {job_name!r} is taken by a different "
                        "spec"
                    )
                job_name = f"job-{next(self._autoname)}"
            job = _ServerJob(
                name=job_name, spec=spec, digest=digest,
                priority=int(priority), order=next(self._order),
            )
            self._journal("submitted", job, spec=self._spec_payload(spec),
                          priority=job.priority, digest=digest)
            self._jobs[job_name] = job
            self._by_digest[digest] = job_name
            record = self.store.load(digest)
            if record is not None:
                job.record = record
                job.cached = True
                self.stats["replayed"] += 1
                self._finish(job, "done")
            else:
                self._wake.notify_all()
        return job, False

    @staticmethod
    def _spec_payload(spec: SearchSpec) -> dict:
        payload = spec.to_dict()
        if payload.get("executor") and payload["executor"].get("token"):
            # the worker auth token is a shared secret; the journal is
            # a plain file on disk
            payload["executor"]["token"] = None
        return payload

    def _get_job(self, name) -> _ServerJob:
        with self._lock:
            job = self._jobs.get(name)
        if job is None:
            raise ServerError(f"unknown job {name!r}")
        return job

    def job_record(self, name) -> dict:
        """A done job's result record (loaded from the store on first
        access after a restart)."""
        job = self._get_job(name)
        if job.record is None:
            job.record = self.store.load(job.digest)
        if job.record is None:
            raise ServerError(
                f"job {job.name!r} finished but its record is missing "
                "from the result store"
            )
        return job.record

    def job_state(self, name) -> str:
        return self._get_job(name).state

    def list_jobs(self) -> list[dict]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.order)
            return [_describe(job) for job in jobs]

    def cancel_job(self, name) -> _ServerJob:
        """Cancel: immediate for queued jobs, next batch boundary for
        running ones; a no-op for terminal jobs."""
        job = self._get_job(name)
        with self._lock:
            if job.state in _TERMINAL:
                return job
            job.cancel_requested = True
            if job.state == "running":
                if job.handle is not None:
                    job.handle.cancel()
                return job  # the scheduler journals the terminal state
            self._finish(job, "cancelled")
        return job

    def _subscribe(self, session: _ServerSession, name) -> dict:
        job = self._get_job(name)
        with self._lock:
            # a terminal job streams nothing — the reply snapshot is
            # already the final state (checked under the lock, so a
            # finishing job cannot slip between check and registration)
            if job.state not in _TERMINAL:
                self._subs.setdefault(job.name, set()).add(session)
        return _describe(job)

    # -- the runner ------------------------------------------------------
    def _pending(self) -> list[_ServerJob]:
        jobs = [j for j in self._jobs.values() if j.state == "queued"]
        jobs.sort(key=lambda j: (-j.priority, j.order))
        return jobs

    def _run_loop(self) -> None:
        while True:
            with self._wake:
                while not self._closed and not self._pending():
                    self._wake.wait(0.2)
                if self._closed:
                    return
                batch = self._pending()
                if self.max_jobs_per_round > 0:
                    batch = batch[: self.max_jobs_per_round]
                for job in batch:
                    job.state = "running"
                    self._journal("running", job, digest=job.digest)
            for job in batch:
                self._emit_state(job, final=False)
            try:
                self._run_round(batch)
            except _SimulatedCrash:
                with self._lock:
                    self._suppress = True
                    self._closed = True
                self._log("simulated crash: runner halting")
                return

    def _run_round(self, batch: list[_ServerJob]) -> None:
        scheduler = SearchScheduler(
            executor=self.executor_config,
            target_chunk_s=self.target_chunk_s,
            perf=self.perf,
            on_batch=self._on_batch,
            on_finished=self._on_finished,
        )
        # advisory pointer for fleet_status / the metrics sampler; kept
        # after the round so the last round's stats stay queryable
        self._scheduler = scheduler
        started = []
        for job in batch:
            try:
                job.handle = scheduler.submit(job.name, spec=job.spec)
            except Exception:  # lint: disable=broad-except -- job isolation: a submit failure fails that job record only
                self._finish(job, "failed", error=traceback.format_exc())
                continue
            if job.cancel_requested or self._closed:
                job.handle.cancel()
            started.append(job)
        if not started:
            return
        try:
            scheduler.run()
        except _SimulatedCrash:
            raise
        except Exception:  # lint: disable=broad-except -- daemon survival: a scheduler crash fails the running jobs, not the server
            error = traceback.format_exc()
            for job in started:
                if job.state == "running":
                    self._finish(job, "failed", error=error)

    def _on_batch(self, name: str, info: dict) -> None:
        with self._lock:
            job = self._jobs.get(name)
        if job is not None:
            self._emit_event(job, "progress", info, final=False)
        if self.crash_hook is not None and self.crash_hook(self, name,
                                                          info):
            raise _SimulatedCrash()

    def _on_finished(self, name: str, handle) -> None:
        with self._lock:
            job = self._jobs.get(name)
            if job is None or self._suppress or job.state in _TERMINAL:
                return
            if handle.done:
                record = result_record(job.spec, handle.result(), None)
                self.store.store(job.digest, record)
                job.record = record
                self.stats["executed"] += 1
                self._finish(job, "done")
            elif handle.cancelled and not job.cancel_requested:
                # interrupted by a graceful stop(), not by a client:
                # journal nothing — the journal still says ``running``,
                # which is exactly what re-queues the job on restart
                job.state = "queued"
                job.handle = None
            elif handle.cancelled:
                self._finish(job, "cancelled")
            else:
                self._finish(job, "failed", error=handle.error)

    # -- terminal bookkeeping / events -----------------------------------
    def _finish(self, job: _ServerJob, state: str,
                error: str | None = None) -> None:
        with self._lock:
            job.state = state
            job.error = error
            job.handle = None
            fields = {"digest": job.digest}
            if error is not None:
                fields["error"] = error
            if state == "done" and job.cached:
                fields["cached"] = True
            self._journal(state, job, **fields)
            if state in ("failed", "cancelled"):
                # release the digest so the spec can be resubmitted
                if self._by_digest.get(job.digest) == job.name:
                    del self._by_digest[job.digest]
        self._emit_state(job, final=True)

    def _journal(self, op: str, job: _ServerJob, **fields) -> None:
        if self._suppress or self.journal is None:
            return
        self.journal.append(op, job.name, **fields)

    def _emit_state(self, job: _ServerJob, final: bool) -> None:
        self._emit_event(job, "state", {
            "state": job.state,
            "cached": job.cached,
            "error": job.error,
        }, final=final)

    def _emit_event(self, job: _ServerJob, kind: str, data: dict,
                    final: bool) -> None:
        with self._lock:
            targets = list(self._subs.get(job.name, ()))
            if final:
                self._subs.pop(job.name, None)
        if not targets:
            return
        message = event_message(job.name, kind, data, final=final)
        for session in targets:
            session.enqueue(message)

    # -- live telemetry (repro.obs) ---------------------------------------
    def fleet_status(self) -> dict:
        """One-shot fleet snapshot (the ``fleet_status`` op): every
        job's lifecycle state, the scheduler's advisory stats (queue
        depth, worker parallelism, per-worker membership on the remote
        backend), the daemon's lifetime counters, the telemetry
        configuration, and the latest sample per source off the
        process-ambient hub — so a one-shot poller (``watch_fleet.py
        --once``) needs no subscription window."""
        with self._lock:
            jobs = [
                _describe(job)
                for job in sorted(
                    self._jobs.values(), key=lambda j: j.order
                )
            ]
            stats = dict(self.stats)
            scheduler = self._scheduler
        return {
            "address": self.address,
            "jobs": jobs,
            "scheduler": (
                scheduler.stats() if scheduler is not None
                else {"jobs": {}, "queue_depth": 0, "workers": 0,
                      "fleet": []}
            ),
            "stats": stats,
            "metrics": {
                "enabled": self.metrics_interval > 0,
                "interval_s": self.metrics_interval,
                "timeseries": (
                    str(self.timeseries.path)
                    if self.timeseries is not None else None
                ),
            },
            "workers": get_hub().latest(),
        }

    def _subscribe_metrics(self, session: _ServerSession) -> dict:
        """Register ``session`` for the merged fleet metrics stream.
        The reply says whether emission is enabled; a disabled daemon
        accepts the request but will stream nothing (clients surface
        that from the flag)."""
        enabled = self.metrics_interval > 0
        if enabled:
            with self._lock:
                self._metric_subs.add(session)
        return {"enabled": enabled, "interval_s": self.metrics_interval}

    def _metrics_gauges(self) -> dict:
        with self._lock:
            gauges = {
                "sessions": len(self._sessions),
                "metric_subscribers": len(self._metric_subs),
            }
            for state in JOB_STATES:
                gauges[f"jobs_{state}"] = 0
            for job in self._jobs.values():
                gauges[f"jobs_{job.state}"] += 1
        return gauges

    def _on_worker_sample(self, sample: dict) -> None:
        """Hub subscriber: park each worker sample until the next fleet
        tick folds it in (many worker ticks may land between two server
        ticks; all of their deltas are merged, none dropped)."""
        with self._lock:
            source = str(sample.get("source", "worker:?"))
            self._worker_samples.setdefault(source, []).append(sample)

    def _emit_fleet_sample(self, sample: dict) -> None:
        """Emitter sink: fold the worker samples parked since the last
        tick into one fleet-wide ``metrics`` frame around the daemon's
        own delta, append it to the time series, and fan it out to every
        ``subscribe_metrics`` session.  Runs on the emitter thread; all
        I/O happens outside the server lock."""
        with self._lock:
            pending, self._worker_samples = self._worker_samples, {}
            subscribers = list(self._metric_subs)
            scheduler = self._scheduler
        workers = []
        for source, batch in sorted(pending.items()):
            last = batch[-1]
            workers.append({
                "source": source,
                "seq": last.get("seq"),
                "t": last.get("t"),
                "delta": merge_samples(batch),
                "gauges": last.get("gauges") or {},
                "samples": len(batch),
            })
        status = (
            scheduler.stats() if scheduler is not None
            else {"jobs": {}, "queue_depth": 0, "workers": 0, "fleet": []}
        )
        message = metrics_message(
            sample["source"], sample["seq"], sample["t"],
            delta=sample["delta"], gauges=sample["gauges"],
            workers=workers, status=status,
        )
        if self.timeseries is not None:
            record = {k: v for k, v in message.items() if k != "type"}
            with contextlib.suppress(OSError, ValueError):
                self.timeseries.append(record)
        for session in subscribers:
            session.enqueue(message)

    # -- plumbing --------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return
            session = _ServerSession(self, sock, peer)
            with self._lock:
                if self._closed:
                    session.close()
                    return
                self._sessions.add(session)
            session.start()

    def _session_done(self, session: _ServerSession) -> None:
        with self._lock:
            self._sessions.discard(session)
            self._metric_subs.discard(session)
            for subscribers in self._subs.values():
                subscribers.discard(session)

    def _token_ok(self, token) -> bool:
        if self.token is None:
            return True
        import hmac

        return isinstance(token, str) and hmac.compare_digest(
            token, self.token
        )

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[serve {self.host}:{self.port}] {message}",
                  flush=True)


class SearchClient:
    """Synchronous client for a :class:`SearchServer`.

    One socket, requests serialized by an internal lock; event frames
    that arrive while a reply is pending are buffered for the active
    subscription.  Transport loss surfaces as ``ConnectionError`` and
    the next request transparently redials — :meth:`wait` builds its
    reconnect-until-deadline loop on exactly that, because a submitted
    job is durable on the server side no matter what happens to this
    connection.  Not safe for concurrent use from multiple threads.
    """

    def __init__(self, address: str, token: str | None = None,
                 connect_timeout: float = 10.0,
                 reconnect_s: float = 60.0) -> None:
        self.address = address
        self.token = token
        self.connect_timeout = connect_timeout
        #: how long :meth:`wait` keeps redialing a vanished server
        #: before giving up (a restarting daemon is back within this)
        self.reconnect_s = reconnect_s
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None
        self._rfile = None
        self._req = itertools.count(1)
        self._events: list[dict] = []
        self._metrics: list[dict] = []

    # -- connection ------------------------------------------------------
    def _ensure(self) -> None:
        if self._sock is not None:
            return
        host, port = parse_address(self.address)
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ConnectionError(
                f"cannot reach search server {self.address}: {exc}"
            ) from exc
        rfile = sock.makefile("rb")
        try:
            sock.sendall(frame_message(hello_message(self.token)))
            reply = read_frame(rfile)
        except (OSError, ValueError) as exc:
            with contextlib.suppress(OSError):
                sock.close()
            raise ConnectionError(
                f"handshake with server {self.address} failed: {exc}"
            ) from exc
        if reply is None or reply.get("type") != "welcome":
            detail = (reply or {}).get("error", "connection closed")
            with contextlib.suppress(OSError):
                sock.close()
            raise ConnectionError(
                f"server {self.address} refused the handshake: {detail}"
            )
        sock.settimeout(None)
        self._sock, self._rfile = sock, rfile

    def _drop(self) -> None:
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
        self._sock = self._rfile = None
        self._events.clear()  # buffered events died with the socket
        self._metrics.clear()

    def close(self) -> None:
        """Politely end the session (idempotent)."""
        with self._lock:
            if self._sock is not None:
                with contextlib.suppress(OSError):
                    self._sock.sendall(frame_message({"type": "bye"}))
            self._drop()

    def __enter__(self) -> "SearchClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request/reply ---------------------------------------------------
    def _request(self, message: dict) -> dict:
        with self._lock:
            self._ensure()
            req = next(self._req)
            message = dict(message, req=req)
            try:
                self._sock.sendall(frame_message(message))
                while True:
                    frame = read_frame(self._rfile)
                    if frame is None:
                        raise ValueError("server closed the connection")
                    kind = frame.get("type")
                    if kind == "reply" and frame.get("req") == req:
                        if not frame.get("ok", False):
                            raise ServerError(
                                frame.get("error") or "request failed"
                            )
                        return frame
                    if kind == "event":
                        self._events.append(frame)
                    elif kind == "metrics":
                        self._metrics.append(frame)
                    # pongs and stray replies are skipped
            except (OSError, ValueError) as exc:
                self._drop()
                raise ConnectionError(
                    f"lost connection to {self.address}: {exc}"
                ) from exc

    # -- the service API -------------------------------------------------
    def submit(self, spec, priority: int = 0,
               job: str | None = None) -> dict:
        """Queue a :class:`~repro.spec.SearchSpec` (or its dict form);
        returns the server's job snapshot (``job``, ``state``,
        ``digest``, ``cached``, ``existing``)."""
        payload = spec.to_dict() if isinstance(spec, SearchSpec) else spec
        return self._request({
            "type": "submit", "spec": payload,
            "priority": int(priority), "job": job,
        })

    def status(self, job: str) -> dict:
        return self._request({"type": "status", "job": job})

    def result(self, job: str) -> dict:
        """A done job's result record (raises :class:`ServerError`
        otherwise)."""
        return self._request({"type": "result", "job": job})["record"]

    def cancel(self, job: str) -> dict:
        return self._request({"type": "cancel", "job": job})

    def list_jobs(self) -> list[dict]:
        return self._request({"type": "list_jobs"})["jobs"]

    def events(self, job: str):
        """Subscribe and yield this job's event frames until its
        terminal event (``final=true``).  Raises ``ConnectionError`` if
        the transport drops mid-stream (resubscribe after redialing —
        the job keeps running server-side either way)."""
        reply = self._request(subscribe_message(job))
        if reply.get("state") in _TERMINAL:
            yield event_message(job, "state", {  # lint: disable=wire-frame-coverage -- synthesized client-side for already-terminal jobs, never sent on the wire
                "state": reply["state"],
                "cached": reply.get("cached", False),
                "error": reply.get("error"),
            }, final=True)
            return
        with self._lock:
            try:
                while True:
                    while self._events:
                        frame = self._events.pop(0)
                        if frame.get("job") != job:
                            continue
                        yield frame
                        if frame.get("final"):
                            return
                    frame = read_frame(self._rfile)
                    if frame is None:
                        raise ValueError("server closed the connection")
                    if frame.get("type") == "event":
                        self._events.append(frame)
                    elif frame.get("type") == "metrics":
                        self._metrics.append(frame)
            except (OSError, ValueError) as exc:
                self._drop()
                raise ConnectionError(
                    f"lost connection to {self.address}: {exc}"
                ) from exc

    def fleet_status(self) -> dict:
        """One-shot fleet snapshot: every job's state, scheduler queue
        depths, per-worker membership, and the latest telemetry sample
        per source (see :meth:`SearchServer.fleet_status`)."""
        return self._request(fleet_status_message())

    def metrics_stream(self):
        """Subscribe to the daemon's merged fleet telemetry and yield
        ``metrics`` frames until the caller stops iterating or the
        connection drops (``ConnectionError``).  Raises
        :class:`ServerError` immediately if the daemon runs with
        telemetry disabled (``metrics_interval=0``)."""
        reply = self._request(subscribe_metrics_message())
        if not reply.get("enabled"):
            raise ServerError(
                f"server {self.address} has live telemetry disabled "
                "(start it with a metrics interval, e.g. "
                "run_server.py --metrics-interval 1.0)"
            )
        with self._lock:
            try:
                while True:
                    while self._metrics:
                        yield self._metrics.pop(0)
                    frame = read_frame(self._rfile)
                    if frame is None:
                        raise ValueError("server closed the connection")
                    if frame.get("type") == "metrics":
                        self._metrics.append(frame)
                    elif frame.get("type") == "event":
                        self._events.append(frame)
            except (OSError, ValueError) as exc:
                self._drop()
                raise ConnectionError(
                    f"lost connection to {self.address}: {exc}"
                ) from exc

    def wait(self, job: str, on_event=None, timeout: float | None = None):
        """Block until ``job`` finishes; returns its result record.

        Streams events through ``on_event`` while waiting.  Survives
        server restarts: on connection loss it redials with backoff for
        up to ``reconnect_s`` (or ``timeout``) — the job is durable on
        the server, so the resubscription lands on the recovered queue.
        Raises :class:`ServerError` for failed/cancelled jobs.
        """
        deadline = None
        limit = timeout if timeout is not None else self.reconnect_s
        backoff = 0.05
        while True:
            try:
                for frame in self.events(job):
                    if on_event is not None:
                        on_event(frame)
                status = self.status(job)
                deadline = None
            except ConnectionError:
                now = time.monotonic()
                if deadline is None:
                    deadline = now + limit
                if now >= deadline:
                    raise
                time.sleep(min(backoff, 2.0))
                backoff *= 2
                continue
            state = status["state"]
            if state == "done":
                return self.result(job)
            if state in _TERMINAL:
                detail = f": {status.get('error')}" \
                    if status.get("error") else ""
                raise ServerError(f"job {job!r} {state}{detail}")
            # the subscription ended but the job is live again — the
            # daemon restarted between our subscribe and its terminal
            # event; just resubscribe
