"""One-call multi-model quantization on a shared executor pool.

:func:`lpq_quantize_many` is to a model fleet what
:func:`repro.quant.lpq_quantize` is to one model: the paper's Table 1 /
Fig. 5 sweeps quantize ResNets, MobileNets, ViTs, and Swins with the
same recipe, and running those searches through one
:class:`~repro.serve.SearchScheduler` lets them share a single worker
pool instead of spinning one up per model.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..quant import LPQConfig, LPQResult
from .scheduler import _DEFAULT_OBJECTIVE, SearchScheduler

__all__ = ["lpq_quantize_many"]


def _per_job(value, name: str):
    """Resolve a possibly per-job parameter: a mapping keyed by job name
    selects per job (and must cover every job), anything else applies
    to every job."""
    if isinstance(value, Mapping):
        if name not in value:
            raise KeyError(
                f"per-job mapping has no entry for job {name!r} "
                f"(keys: {sorted(value)})"
            )
        return value[name]
    return value


def _as_spec_jobs(models) -> dict | None:
    """``{name: SearchSpec}`` when ``models`` is declarative, else None.

    Declarative inputs are a mapping of names to
    :class:`~repro.spec.SearchSpec` values or a plain iterable of specs
    (named by each spec's ``name`` field, falling back to ``job0``,
    ``job1``, …).
    """
    from ..spec.spec import SearchSpec

    values = list(models.values()) if isinstance(models, Mapping) else models
    spec_count = sum(isinstance(v, SearchSpec) for v in values)
    if spec_count and spec_count != len(values):
        raise ValueError(
            "lpq_quantize_many cannot mix SearchSpecs and live models "
            f"in one fleet ({spec_count} of {len(values)} jobs are "
            "specs); submit all-specs or all-models"
        )
    if not values or not spec_count:
        return None
    if isinstance(models, Mapping):
        return dict(models)
    items = models
    jobs: dict[str, SearchSpec] = {}
    for i, spec in enumerate(items):
        name = spec.job_name(f"job{i}")
        if name in jobs:
            raise ValueError(f"duplicate spec job name {name!r}")
        jobs[name] = spec
    return jobs


def lpq_quantize_many(
    models,
    calib_images=None,
    config: LPQConfig | Mapping | None = None,
    fitness_config=None,
    objective=_DEFAULT_OBJECTIVE,
    act_sf_mode: str = "calibrated",
    executor=None,
    target_chunk_s: float = 0.25,
) -> dict[str, LPQResult]:
    """Run one LPQ search per model, multiplexed on a shared pool.

    ``models`` maps job names to model instances (a plain iterable of
    models gets ``job0``, ``job1``, … names).  ``calib_images``,
    ``config``, ``fitness_config``, and ``objective`` may each be a
    single value applied to every job or a mapping keyed by job name
    (a mapping must have an entry for every job — partial maps raise
    ``KeyError`` rather than silently falling back to defaults).
    ``executor`` is the usual :class:`~repro.parallel.ExecutorConfig`;
    all jobs share the one pool it describes.  Every per-job result is
    bitwise-identical to a standalone
    :func:`repro.quant.lpq_quantize` call with the same arguments.

    Declarative alternative: pass a list of
    :class:`~repro.spec.SearchSpec` values (or a ``{name: spec}``
    mapping) as ``models`` and nothing else — each spec fully describes
    its own search, and jobs cross the process-pool boundary as the
    specs' plain-JSON payloads.  When no ``executor`` is given, the
    fleet uses the executor the specs agree on (specs that disagree
    raise ``ValueError``).

    Raises ``RuntimeError`` listing the failed jobs if any search
    failed; use a :class:`~repro.serve.SearchScheduler` directly for
    per-job failure handling.

    >>> import numpy as np
    >>> from repro import nn
    >>> from repro.quant import LPQConfig, lpq_quantize
    >>> from repro.serve import lpq_quantize_many
    >>> nn.seed(0)
    >>> def tiny():
    ...     return nn.Sequential(
    ...         nn.Conv2d(3, 4, 3, padding=1, bias=False),
    ...         nn.BatchNorm2d(4), nn.ReLU(),
    ...         nn.GlobalAvgPool(), nn.Linear(4, 4))
    >>> a, b = tiny().eval(), tiny().eval()
    >>> images = np.random.default_rng(0).normal(
    ...     size=(4, 3, 8, 8)).astype(np.float32)
    >>> config = LPQConfig(population=3, passes=1, cycles=1,
    ...                    diversity_parents=2, hw_widths=(4, 8), seed=3)
    >>> results = lpq_quantize_many({"a": a, "b": b}, images, config=config)
    >>> sorted(results)
    ['a', 'b']
    >>> results["a"].solution == lpq_quantize(a, images, config=config).solution
    True

    The declarative form of the same fleet (models by registry name):

    >>> from repro.spec import CalibSpec, SearchSpec
    >>> specs = [
    ...     SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4),
    ...                config=config, name="mlp"),
    ...     SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4),
    ...                config=config, seed=9, name="mlp-reseeded"),
    ... ]
    >>> sorted(lpq_quantize_many(specs))
    ['mlp', 'mlp-reseeded']
    """
    if not isinstance(models, Mapping):
        models = list(models)
    spec_jobs = _as_spec_jobs(models)
    if spec_jobs is not None:
        from ..spec.spec import reject_spec_conflicts

        reject_spec_conflicts(
            "lpq_quantize_many(specs)",
            (
                ("calib_images", calib_images),
                ("config", config),
                ("fitness_config", fitness_config),
            ),
            objective=objective,
            act_sf_mode=act_sf_mode,
        )
        if executor is None:
            carried = {
                name: spec.executor
                for name, spec in spec_jobs.items()
                if spec.executor is not None
            }
            if len({str(c.to_dict()) for c in carried.values()}) > 1:
                raise ValueError(
                    "specs carry conflicting executor configs "
                    f"({sorted(carried)}); pass executor= explicitly"
                )
            executor = next(iter(carried.values()), None)
        scheduler = SearchScheduler(
            executor=executor, target_chunk_s=target_chunk_s
        )
        for name, spec in spec_jobs.items():
            scheduler.submit(name, spec=spec)
        results = scheduler.run()
        return _collect(scheduler, results)
    if calib_images is None:
        raise TypeError(
            "lpq_quantize_many requires calib_images (or a fleet of "
            "SearchSpecs)"
        )
    if isinstance(models, Mapping):
        jobs = dict(models)
    else:
        jobs = {f"job{i}": model for i, model in enumerate(models)}
    scheduler = SearchScheduler(
        executor=executor, target_chunk_s=target_chunk_s
    )
    for name, model in jobs.items():
        scheduler.submit(
            name,
            model,
            _per_job(calib_images, name),
            config=_per_job(config, name),
            fitness_config=_per_job(fitness_config, name),
            objective=_per_job(objective, name),
            act_sf_mode=act_sf_mode,
        )
    results = scheduler.run()
    return _collect(scheduler, results)


def _collect(
    scheduler: SearchScheduler, results: dict[str, LPQResult]
) -> dict[str, LPQResult]:
    """Raise on any failed job; otherwise return the result map."""
    failed = [
        name for name, handle in scheduler.handles.items() if handle.failed
    ]
    if failed:
        details = "\n".join(
            f"--- {name}:\n{scheduler.handles[name].error}" for name in failed
        )
        raise RuntimeError(
            f"{len(failed)} search job(s) failed: {failed}\n{details}"
        )
    return results
