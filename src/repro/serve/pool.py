"""Shared multi-job executor pools for the search scheduler.

The :mod:`repro.parallel` executors bind one pool to one
:class:`~repro.parallel.EvaluatorSpec`: every worker builds a single
replica at startup and all tasks score candidates for that one search.
A :class:`repro.serve.SearchScheduler` instead keeps *many* searches in
flight, so its pools multiplex: every task is tagged with a job id, and
each worker lazily builds (and keeps) one replica *per job* it has seen
— the same worker scores candidates for a ResNet search and a ViT
search back to back, each against that job's own model copy, caches,
and private perf registry.

**The WorkerPool protocol.**  Every pool implements the same small,
transport-agnostic API (:class:`WorkerPool`): ``submit(job, seq, chunk,
solutions)`` hands one tagged chunk to the pool, results arrive on the
caller-supplied queue as :class:`ChunkResult` messages, and
``start``/``close``/``workers``/``healthy`` manage the pool's
lifecycle.  The scheduler codes against this protocol only, so a
backend living across a socket is interchangeable with one living in a
thread.  Backends register in the ``shared_pool`` component registry
(:mod:`repro.spec.registry`) under the same names
:class:`~repro.parallel.ExecutorConfig` validates against:

* ``serial`` — :class:`SharedSerialPool`: one in-process replica per
  job; submit evaluates synchronously.  The zero-overhead baseline.
* ``thread`` — :class:`SharedThreadPool`: N worker slots handed out
  through a queue; each slot holds a ``job → replica`` map built on
  first use (``copy_model=True``: slots mutate their models
  independently).
* ``process`` — :class:`SharedProcessPool`: a
  :class:`multiprocessing.pool.Pool` whose workers receive the full
  ``job → wire payload`` map at init and build replicas lazily per job
  on first task.  The payloads are plain JSON dicts
  (:func:`repro.spec.wire.encode_job`) — no pickled evaluator objects
  cross the pool boundary.  Only ``(job, candidates)`` and ``(fitness,
  perf-delta)`` cross per task.
* ``remote`` — :class:`repro.serve.remote.SharedRemotePool`: the same
  wire payloads framed over TCP sockets to standalone workers
  (``scripts/run_worker.py``), with token handshake, heartbeat
  liveness, and dead-worker requeue.

All pools are *asynchronous at the submit boundary*: results arrive on
a caller-supplied queue as :class:`ChunkResult` messages tagged with
``(job, seq, chunk)``, so the scheduler reassembles each batch in
submission order no matter which worker finished first — completion
order never reaches the search trajectory.  A task that raises reports
an ``error`` string instead of poisoning the pool: the worker stays
alive and keeps serving other jobs' tasks.
"""

from __future__ import annotations

import abc
import multiprocessing
import queue
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..parallel import EvaluatorSpec, ExecutorConfig
from ..perf import PerfRegistry, diff_snapshots
from ..spec import registry as spec_registry

__all__ = [
    "ChunkResult",
    "WorkerPool",
    "SharedSerialPool",
    "SharedThreadPool",
    "SharedProcessPool",
    "encode_pool_wires",
    "make_shared_pool",
]


@dataclass
class ChunkResult:
    """One evaluated chunk, delivered on the scheduler's result queue.

    ``fits`` holds the fitness values in the chunk's submission order
    (``None`` on failure, with ``error`` carrying the worker traceback).
    ``perf_delta`` is the worker replica's perf-registry delta for
    exactly this chunk (see :func:`repro.perf.diff_snapshots`) and
    ``elapsed`` its wall-clock seconds — the scheduler's adaptive
    chunking feeds on the latter.
    """

    job: str
    seq: int
    chunk: int
    fits: list[float] | None
    perf_delta: dict | None
    elapsed: float
    error: str | None = None


class WorkerPool(abc.ABC):
    """The transport-agnostic multi-job executor protocol.

    A pool is constructed around its job table and a caller-supplied
    result queue, brought up with :meth:`start`, fed tagged chunks
    through :meth:`submit`, and torn down with :meth:`close`.  Exactly
    one :class:`ChunkResult` must eventually reach the result queue per
    submitted chunk — on success, worker failure, or transport failure
    alike — which is the property that lets the scheduler count
    outstanding chunks instead of tracking workers.

    ``workers`` is the pool's current parallelism (the scheduler's
    chunker keeps at least that many chunks in flight); ``healthy()``
    reports whether the pool can still make progress (an in-process
    pool always can; a remote pool with every worker dead cannot).
    """

    #: current worker parallelism (dynamic for remote pools)
    workers: int = 1

    def start(self) -> "WorkerPool":
        """Bring the pool up (connect transports, spawn workers).

        In-process pools are live after construction, so the default is
        a no-op; :func:`make_shared_pool` always calls it, and callers
        constructing pools directly should too.
        """
        return self

    @abc.abstractmethod
    def submit(self, job: str, seq: int, chunk: int, solutions) -> None:
        """Hand one tagged candidate chunk to the pool (non-blocking for
        asynchronous backends)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear the pool down; idempotent."""

    def healthy(self) -> bool:
        """Whether the pool can still evaluate submitted chunks."""
        return True

    def membership(self) -> list[dict]:
        """Per-worker liveness/queue facts for fleet status views.

        In-process pools have no per-worker identity worth reporting, so
        the default is empty; the remote pool overrides this with one
        entry per dialed address (alive, accepting, pending chunks,
        heartbeat latency).  Advisory only — never used for scheduling.
        """
        return []

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def _evaluate_with_entry(entry, solutions):
    """Score a chunk on one job-replica entry; returns (fits, delta)."""
    replica, registry, last_snap = entry
    fits = replica.evaluate_many(solutions)
    snap = registry.snapshot()
    delta = diff_snapshots(snap, last_snap[0])
    last_snap[0] = snap
    return fits, delta


def _build_entry(spec: EvaluatorSpec, copy_model: bool):
    registry = PerfRegistry()
    replica = spec.build(perf=registry, copy_model=copy_model)
    return (replica, registry, [registry.snapshot()])


class SharedSerialPool(WorkerPool):
    """In-process multi-job pool; ``submit`` evaluates synchronously and
    enqueues the result before returning."""

    def __init__(
        self, specs: dict[str, EvaluatorSpec], results: queue.SimpleQueue
    ) -> None:
        self.workers = 1
        self._specs = dict(specs)
        self._results = results
        self._replicas: dict[str, tuple] = {}

    def submit(self, job: str, seq: int, chunk: int, solutions) -> None:
        start = time.perf_counter()
        try:
            entry = self._replicas.get(job)
            if entry is None:
                # copy_model=True: two jobs may legitimately share one
                # model instance; each replica must mutate its own copy
                entry = _build_entry(self._specs[job], copy_model=True)
                self._replicas[job] = entry
            fits, delta = _evaluate_with_entry(entry, solutions)
            result = ChunkResult(
                job, seq, chunk, fits, delta, time.perf_counter() - start
            )
        except Exception:  # lint: disable=broad-except -- worker boundary: any evaluation failure becomes an error ChunkResult
            result = ChunkResult(
                job, seq, chunk, None, None, time.perf_counter() - start,
                error=traceback.format_exc(),
            )
        self._results.put(result)

    def close(self) -> None:
        pass


class SharedThreadPool(WorkerPool):
    """Thread-pool multi-job evaluation over per-slot replica maps.

    Worker slots are handed out through a queue so each ``job →
    replica`` map is used by exactly one task at a time; replicas are
    built lazily the first time a slot sees a job.
    """

    def __init__(
        self,
        specs: dict[str, EvaluatorSpec],
        workers: int,
        results: queue.SimpleQueue,
    ) -> None:
        self.workers = workers
        self._specs = dict(specs)
        self._results = results
        self._slots: queue.SimpleQueue = queue.SimpleQueue()
        for _ in range(workers):
            self._slots.put({})
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )

    def submit(self, job: str, seq: int, chunk: int, solutions) -> None:
        self._pool.submit(self._run, job, seq, chunk, solutions)

    def _run(self, job: str, seq: int, chunk: int, solutions) -> None:
        slot = self._slots.get()
        start = time.perf_counter()
        try:
            try:
                entry = slot.get(job)
                if entry is None:
                    entry = _build_entry(self._specs[job], copy_model=True)
                    slot[job] = entry
                fits, delta = _evaluate_with_entry(entry, solutions)
                result = ChunkResult(
                    job, seq, chunk, fits, delta, time.perf_counter() - start
                )
            except Exception:  # lint: disable=broad-except -- worker boundary: any evaluation failure becomes an error ChunkResult
                result = ChunkResult(
                    job, seq, chunk, None, None, time.perf_counter() - start,
                    error=traceback.format_exc(),
                )
        finally:
            self._slots.put(slot)
        self._results.put(result)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# -- process backend ----------------------------------------------------
# Worker state lives in module globals: each worker receives the full
# job → wire-payload map (plain JSON dicts, repro.spec.wire) once at
# init and reconstructs EvaluatorSpecs + replicas lazily per job.  A
# payload whose replica fails to decode or build fails *its own job's*
# tasks (the error travels back inside the result tuple) — the worker
# survives and keeps serving other jobs.
_SHARED_WIRES: dict[str, dict] | None = None
_SHARED_STATE: dict[str, tuple] | None = None
_SHARED_BLOBS = None
_SHARED_BLOBS_ERROR: str | None = None


def _init_shared_worker(wires: dict[str, dict],
                        blob_table: dict | None = None) -> None:
    global _SHARED_WIRES, _SHARED_STATE, _SHARED_BLOBS, _SHARED_BLOBS_ERROR
    # plain assignments first: a raising initializer would respawn
    # workers forever, so payload decoding and replica construction are
    # deferred to the first task per job, and a blob-table attach
    # failure is parked for the task to report
    _SHARED_WIRES = wires
    _SHARED_STATE = {}
    _SHARED_BLOBS = None
    _SHARED_BLOBS_ERROR = None
    if blob_table:
        try:
            from ..spec.blob import attach_transport_table

            _SHARED_BLOBS = attach_transport_table(blob_table)
        except Exception:  # lint: disable=broad-except -- init failure is parked and re-raised with the first task
            _SHARED_BLOBS_ERROR = traceback.format_exc()


def _evaluate_shared_chunk(job: str, solutions):
    start = time.perf_counter()
    try:
        if _SHARED_STATE is None or _SHARED_WIRES is None:
            raise RuntimeError("shared pool worker not initialized")
        if _SHARED_BLOBS_ERROR is not None:
            raise RuntimeError(
                "shared pool worker could not attach its blob table:\n"
                f"{_SHARED_BLOBS_ERROR}"
            )
        entry = _SHARED_STATE.get(job)
        if entry is None:
            from ..spec.wire import decode_job

            # the worker owns everything it decodes from the wire
            entry = _build_entry(
                decode_job(_SHARED_WIRES[job], blobs=_SHARED_BLOBS),
                copy_model=False,
            )
            _SHARED_STATE[job] = entry
        fits, delta = _evaluate_with_entry(entry, solutions)
        return fits, delta, time.perf_counter() - start, None
    except Exception:  # lint: disable=broad-except -- worker boundary: failures travel home as error tuples
        return (
            None, None, time.perf_counter() - start, traceback.format_exc()
        )


class SharedProcessPool(WorkerPool):
    """Process-pool multi-job evaluation; results arrive via the pool's
    async callbacks, which enqueue :class:`ChunkResult` messages.

    ``wires`` maps job names to the plain-JSON payloads of
    :func:`repro.spec.wire.encode_job`; they are the *only* job state
    handed to workers (``self.wires`` is kept for inspection — the
    protocol tests round-trip it through ``json.dumps``/``loads``).

    ``blobs`` (the :class:`~repro.spec.blob.BlobStore` the wires were
    encoded against) switches on zero-copy transport: the store is
    published as a shared-memory transport table that every worker
    attaches at init, so content-addressed ``{"blob": ...}`` refs in
    the wires resolve against the exporter's physical pages instead of
    per-worker base64 copies.  ``transport.bytes_sent`` /
    ``transport.bytes_saved`` record the shipped and displaced volume.
    """

    def __init__(
        self,
        wires: dict[str, dict],
        workers: int,
        results: queue.SimpleQueue,
        start_method: str | None = None,
        blobs=None,
    ) -> None:
        self.workers = workers
        self.wires = dict(wires)
        self._results = results
        blob_table = None
        if blobs is not None:
            from ..perf import get_perf
            from ..spec.blob import account_transport, blob_transport_table

            blob_table = blob_transport_table(blobs)
            account_transport(get_perf(), self.wires, blob_table, workers)
        ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._pool = ctx.Pool(
            processes=workers,
            initializer=_init_shared_worker,
            initargs=(self.wires, blob_table),
        )

    def submit(self, job: str, seq: int, chunk: int, solutions) -> None:
        def on_done(payload, job=job, seq=seq, chunk=chunk):
            fits, delta, elapsed, error = payload
            self._results.put(
                ChunkResult(job, seq, chunk, fits, delta, elapsed, error)
            )

        def on_error(exc, job=job, seq=seq, chunk=chunk):
            # belt and braces: task exceptions are already caught inside
            # the worker; this catches pickling failures and the like
            self._results.put(
                ChunkResult(job, seq, chunk, None, None, 0.0, error=repr(exc))
            )

        self._pool.apply_async(
            _evaluate_shared_chunk,
            (job, solutions),
            callback=on_done,
            error_callback=on_error,
        )

    def close(self) -> None:
        self._pool.close()
        self._pool.join()


def encode_pool_wires(
    specs: dict[str, EvaluatorSpec],
    search_specs: dict | None = None,
    blobs=None,
) -> dict[str, dict]:
    """Encode every job for the wire (:func:`repro.spec.wire.encode_job`).

    ``search_specs`` optionally maps job names to the declarative
    :class:`~repro.spec.SearchSpec` they were submitted as, which
    selects the compact registry-reference payload.  ``blobs`` (a
    :class:`~repro.spec.blob.BlobStore`) makes array payloads
    content-addressed refs into that store.  A job that cannot be named
    on the wire raises ``ValueError`` identifying it.
    """
    from ..spec.wire import encode_job

    search_specs = search_specs or {}
    wires = {}
    for name, spec in specs.items():
        try:
            wires[name] = encode_job(spec, search_specs.get(name),
                                     blobs=blobs)
        except ValueError as exc:
            raise ValueError(
                f"job {name!r} cannot cross the process-pool wire: {exc}"
            ) from exc
    return wires


def make_shared_pool(
    specs: dict[str, EvaluatorSpec],
    config: ExecutorConfig,
    results: queue.SimpleQueue,
    search_specs: dict | None = None,
) -> WorkerPool:
    """Build and start the shared pool selected by ``config`` (same
    :class:`~repro.parallel.ExecutorConfig` as single-job executors).

    The serial and thread pools share this process's memory and use the
    live specs directly; the process and remote pools serialize — their
    jobs travel as the plain-JSON wire payloads of
    :func:`encode_pool_wires`.  Backends dispatch through the
    ``shared_pool`` registry (:mod:`repro.spec.registry`), so a
    registered extension backend — a factory ``(specs, config, results,
    search_specs) -> WorkerPool`` — slots in next to the built-in four.
    """
    factory = spec_registry.resolve("shared_pool", config.backend)
    return factory(specs, config, results, search_specs).start()


# -- the built-in in-process backends ------------------------------------
# (the remote backend registers from repro.serve.remote, the second
# bootstrap module of the shared_pool registry family)
spec_registry.register(
    "shared_pool",
    "serial",
    lambda specs, config, results, search_specs: SharedSerialPool(
        specs, results
    ),
)
spec_registry.register(
    "shared_pool",
    "thread",
    lambda specs, config, results, search_specs: SharedThreadPool(
        specs, config.resolved_workers(), results
    ),
)
def _make_shared_process_pool(specs, config, results, search_specs):
    from ..spec.blob import get_blob_store

    # encode against the process-global store: re-submitted jobs dedupe
    # their tensors (blob hits) and reuse already-exported shm segments
    blobs = get_blob_store()
    return SharedProcessPool(
        encode_pool_wires(specs, search_specs, blobs=blobs),
        config.resolved_workers(),
        results,
        start_method=config.start_method,
        blobs=blobs,
    )


spec_registry.register("shared_pool", "process", _make_shared_process_pool)
