"""Deterministic fault injection for the remote worker fleet.

The only way to trust the resilience layer (:mod:`repro.serve.remote`
+ :mod:`repro.serve.resilience`) is to make workers actually crash,
hang, disconnect, corrupt frames, and lose caches — on a committed,
reproducible schedule — and assert that search results stay bitwise
identical to the serial backend anyway.  Three pieces:

* :class:`FaultEvent` / :class:`FaultPlan` — a JSON-round-trippable
  schedule of faults, each triggered when the fleet-wide count of
  *started* tasks reaches ``at_task`` (a logical clock, not
  wall-clock, so plans replay across machines of any speed).
* :class:`ChaosController` — the hook :class:`~repro.serve.remote.
  WorkerServer` consults at every task start; it applies the due
  events (kill the server, mute the session, flip a byte in the result
  frame, …) and schedules any requested restarts.
* :class:`ChaosFleet` — a context manager running a local fleet under
  a plan: ``with ChaosFleet(plan, count=2) as addresses: ...`` behaves
  exactly like :func:`~repro.serve.remote.local_worker_fleet`, except
  the workers misbehave on schedule and killed workers come back on
  their original ports so the pool's redial machinery re-admits them.

``COMMITTED_PLANS`` is the soak suite: every plan in it must keep
remote ≡ serial bitwise while producing its expected nonzero
``fault.*`` counters (``tests/serve/test_chaos.py``; the CI
``chaos-smoke`` leg runs it on every push).

>>> plan = FaultPlan(name="demo", events=(
...     FaultEvent(at_task=2, action="kill", restart_after_s=0.2),))
>>> FaultPlan.from_dict(plan.to_dict()) == plan
True
>>> sorted(COMMITTED_PLANS)  # doctest: +NORMALIZE_WHITESPACE
['duplicate_frames', 'fleet_death_local', 'frame_corruption',
 'hang_timeout', 'kill_rejoin', 'poison_chunk']
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass

from .resilience import RetryPolicy

__all__ = [
    "FAULT_ACTIONS",
    "FaultEvent",
    "FaultPlan",
    "ChaosController",
    "ChaosFleet",
    "ChaosScenario",
    "COMMITTED_PLANS",
]

#: the fault taxonomy: what a scheduled event may do.  ``kill`` stops
#: the whole worker process (optionally restarting it), ``disconnect``
#: drops just the session socket, ``hang`` mutes the session (computes,
#: never replies — only liveness timeouts catch it), ``drop_caches``
#: empties the worker's blob/replica caches, ``fleet_kill`` stops every
#: worker at once; the ``*_result`` actions tamper with the result
#: frame of the triggering task (CRC-corrupt it, send it twice, or
#: delay it past a deadline).
FAULT_ACTIONS = (
    "kill",
    "fleet_kill",
    "disconnect",
    "hang",
    "drop_caches",
    "corrupt_result",
    "duplicate_result",
    "delay_result",
)

#: actions that consume the triggering task (its result never leaves
#: the worker; the client's requeue machinery must recover it)
_TASK_ACTIONS = frozenset({"kill", "fleet_kill", "disconnect"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire ``action`` when the fleet-wide count
    of started tasks reaches ``at_task`` (1-based), on whichever worker
    starts that task."""

    at_task: int
    action: str
    restart_after_s: float = 0.0
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.at_task < 1:
            raise ValueError("at_task is 1-based and must be >= 1")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; choose from "
                f"{FAULT_ACTIONS}"
            )
        if self.restart_after_s < 0 or self.delay_s < 0:
            raise ValueError("restart_after_s/delay_s must be >= 0")

    def to_dict(self) -> dict:
        from ..spec.serde import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        from ..spec.serde import config_from_dict

        return config_from_dict(cls, data)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded, JSON-round-trippable schedule of
    :class:`FaultEvent`\\ s.  ``seed`` salts nothing at runtime — the
    schedule is fully explicit — but is recorded so generated plans
    stay reproducible and distinguishable in bench records."""

    name: str
    events: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        events = tuple(
            e if isinstance(e, FaultEvent) else FaultEvent.from_dict(e)
            for e in self.events
        )
        object.__setattr__(self, "events", events)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {"name", "seed", "events"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultPlan field(s) {unknown}; known: "
                f"{sorted(known)}"
            )
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            events=tuple(
                FaultEvent.from_dict(e) for e in data.get("events", ())
            ),
        )


class ChaosController:
    """The hook a :class:`~repro.serve.remote.WorkerServer` consults on
    every task start (``server.chaos = controller``).

    Keeps one fleet-wide started-task counter; when it crosses an
    event's ``at_task``, the event fires exactly once, on the session
    that started that task.  Restarts are delegated to the owning
    :class:`ChaosFleet` (``restart`` callback).

    Task starts on a server that a ``kill`` event has already claimed
    do not advance the clock: ``stop()`` runs on a helper thread, so a
    dying worker can race a few more queued tasks into their start
    hooks, and whether it manages to is pure machine speed.  Counting
    those ghost starts would let a later ``kill`` event be consumed by
    a death the client only observes once — skipping them keeps the
    logical clock logical and every committed plan replayable.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.task_count = 0
        self.fired: set[int] = set()
        #: set by ChaosFleet: callbacks into the fleet's server list
        self.restart = None
        self.fleet_stop = None
        self._lock = threading.Lock()
        #: servers a kill has claimed (strong refs: identity must not
        #: be recycled onto a restarted replacement)
        self._dying: set = set()

    # -- WorkerServer hook entry points ----------------------------------
    def on_task(self, server) -> tuple:
        """Advance the logical clock; return the events due now."""
        with self._lock:
            if server in self._dying:
                return ()  # ghost start on a killed server: no tick
            self.task_count += 1
            count = self.task_count
            due = tuple(
                event
                for index, event in enumerate(self.plan.events)
                if index not in self.fired and event.at_task == count
            )
            self.fired.update(
                index
                for index, event in enumerate(self.plan.events)
                if event.at_task == count
            )
        return due

    def apply_task_events(self, server, session, events) -> bool:
        """Apply the task-consuming faults; returns True when the
        triggering task must be skipped (its result will never be
        sent — the client's requeue machinery recovers it)."""
        consumed = False
        for event in events:
            if event.action == "kill":
                self._kill(server, event)
                consumed = True
            elif event.action == "fleet_kill":
                if self.fleet_stop is not None:
                    self.fleet_stop()
                else:
                    self._kill(server, event)
                consumed = True
            elif event.action == "disconnect":
                session.close()
                consumed = True
            elif event.action == "hang":
                session.muted = True
            elif event.action == "drop_caches":
                server.drop_caches()
        return consumed

    def apply_result_events(self, session, events, result: dict) -> bool:
        """Apply the frame-tampering faults to the computed result;
        returns True when the send has been handled here."""
        from ..spec.wire import frame_message

        handled = False
        for event in events:
            if event.action == "delay_result":
                time.sleep(event.delay_s)
            elif event.action == "corrupt_result":
                data = bytearray(frame_message(result))
                data[-1] ^= 0xFF  # break the body ⇒ CRC32 mismatch
                with contextlib.suppress(OSError, ValueError):
                    session.send_raw(bytes(data))
                handled = True
            elif event.action == "duplicate_result":
                with contextlib.suppress(OSError, ValueError):
                    session._send(result)
                    session._send(result)
                handled = True
        return handled

    # -- internals -------------------------------------------------------
    def _kill(self, server, event: FaultEvent) -> None:
        # claim the server before the asynchronous stop: any task it
        # still races into a start hook is a ghost (see class docstring)
        with self._lock:
            self._dying.add(server)
        # stop from a helper thread: stop() joins session threads, and
        # the calling evaluator thread must stay free to observe its
        # own shutdown
        threading.Thread(
            target=server.stop, daemon=True, name="chaos-kill"
        ).start()
        if event.restart_after_s > 0 and self.restart is not None:
            timer = threading.Timer(
                event.restart_after_s, self.restart, args=(server,)
            )
            timer.daemon = True
            timer.start()


class ChaosFleet:
    """A local worker fleet misbehaving on a committed schedule.

    Drop-in for :func:`~repro.serve.remote.local_worker_fleet`: enters
    with the fleet's addresses; every server consults the plan's
    controller, and a killed server restarts on its original port after
    ``restart_after_s`` so the pool's redial machinery re-admits it
    mid-search.
    """

    def __init__(self, plan: FaultPlan, count: int = 2,
                 token: str | None = None, verbose: bool = False,
                 metrics_interval: float = 0.0) -> None:
        self.plan = plan
        self.count = count
        self.token = token
        self.verbose = verbose
        #: live-telemetry sampling interval for every fleet member (the
        #: soak tests run with this on to prove telemetry is passive
        #: even while workers die, drain, and rejoin)
        self.metrics_interval = float(metrics_interval)
        self.controller = ChaosController(plan)
        self.servers: list = []
        self._lock = threading.Lock()
        self._exited = False

    def __enter__(self) -> list[str]:
        from .remote import WorkerServer

        self.controller.restart = self._restart
        self.controller.fleet_stop = self._fleet_stop
        for _ in range(self.count):
            server = WorkerServer(token=self.token, verbose=self.verbose,
                                  metrics_interval=self.metrics_interval)
            server.chaos = self.controller
            server.start()
            self.servers.append(server)
        return [server.address for server in self.servers]

    def __exit__(self, *exc) -> None:
        self._exited = True
        with self._lock:
            servers = list(self.servers)
        for server in servers:
            server.stop()

    def _restart(self, dead_server) -> None:
        """Bring a killed worker back on its original host:port — the
        'operator restarted the box' half of the kill→rejoin story."""
        from .remote import WorkerServer

        with self._lock:
            if self._exited or dead_server not in self.servers:
                return
            index = self.servers.index(dead_server)
        replacement = WorkerServer(
            host=dead_server.host, port=dead_server.port,
            token=self.token, verbose=self.verbose,
            metrics_interval=self.metrics_interval,
        )
        replacement.chaos = self.controller
        deadline = time.monotonic() + 10.0
        while True:
            try:
                replacement.start()
                break
            except OSError:
                # the port stays busy until the peer finishes closing
                # the dead connection (FIN_WAIT): retry like a real
                # restart loop would
                if time.monotonic() > deadline:
                    raise
                with self._lock:
                    if self._exited:
                        return
                time.sleep(0.05)
        with self._lock:
            if self._exited:
                replacement.stop()
                return
            self.servers[index] = replacement

    def _fleet_stop(self) -> None:
        with self._lock:
            servers = list(self.servers)
        for server in servers:
            threading.Thread(
                target=server.stop, daemon=True, name="chaos-fleet-kill"
            ).start()


@dataclass(frozen=True)
class ChaosScenario:
    """One committed soak case: the plan, the fleet size, the retry
    policy and degradation mode to run it under, and the ``fault.*``
    counters that must come out nonzero."""

    plan: FaultPlan
    retry: RetryPolicy
    on_fleet_death: str = "fail"
    count: int = 2
    expect: tuple = ()


#: fast-recovery policy for local soak fleets: tight heartbeat, short
#: liveness, near-immediate redial — faults are observed and recovered
#: within tens of milliseconds so the suite stays quick
_FAST = dict(
    backoff_base_s=0.02, backoff_max_s=0.25, jitter=0.1,
    heartbeat_s=0.05, liveness_timeout_s=0.6,
)

#: the committed soak suite: every plan must keep remote ≡ serial
#: bitwise and produce its expected fault counters
COMMITTED_PLANS: dict[str, ChaosScenario] = {
    "kill_rejoin": ChaosScenario(
        plan=FaultPlan(name="kill_rejoin", events=(
            FaultEvent(at_task=2, action="kill", restart_after_s=0.15),
        )),
        retry=RetryPolicy(max_attempts=5, fleet_wait_s=30.0, **_FAST),
        # one worker: recovering its chunks *requires* the restarted
        # worker to rejoin, so every counter below moves or the search
        # cannot complete — no timing luck involved
        count=1,
        expect=("fault.requeues", "fault.retries", "fault.rejoins",
                "fault.parked"),
    ),
    "hang_timeout": ChaosScenario(
        plan=FaultPlan(name="hang_timeout", events=(
            FaultEvent(at_task=2, action="hang"),
        )),
        retry=RetryPolicy(max_attempts=5, fleet_wait_s=30.0, **_FAST),
        expect=("fault.requeues", "fault.retries"),
    ),
    "frame_corruption": ChaosScenario(
        plan=FaultPlan(name="frame_corruption", events=(
            FaultEvent(at_task=2, action="corrupt_result"),
        )),
        retry=RetryPolicy(max_attempts=5, fleet_wait_s=30.0, **_FAST),
        # one worker: the corrupt frame demotes the only connection, so
        # completing requires the client to redial the (still-running)
        # server — checksum reject, requeue, and rejoin all guaranteed
        count=1,
        expect=("fault.checksum_rejects", "fault.requeues",
                "fault.rejoins"),
    ),
    "duplicate_frames": ChaosScenario(
        plan=FaultPlan(name="duplicate_frames", events=(
            FaultEvent(at_task=1, action="duplicate_result"),
            FaultEvent(at_task=3, action="duplicate_result"),
        )),
        retry=RetryPolicy(max_attempts=5, fleet_wait_s=30.0, **_FAST),
        expect=("fault.duplicate_results",),
    ),
    "fleet_death_local": ChaosScenario(
        plan=FaultPlan(name="fleet_death_local", events=(
            FaultEvent(at_task=2, action="fleet_kill"),
        )),
        retry=RetryPolicy(max_attempts=5, **_FAST),
        on_fleet_death="local",
        expect=("fault.fallbacks",),
    ),
    "poison_chunk": ChaosScenario(
        plan=FaultPlan(name="poison_chunk", events=(
            FaultEvent(at_task=1, action="kill", restart_after_s=0.15),
            FaultEvent(at_task=2, action="kill", restart_after_s=0.15),
        )),
        retry=RetryPolicy(max_attempts=1, fleet_wait_s=30.0, **_FAST),
        count=1,
        expect=("fault.requeues", "fault.quarantines", "fault.parked"),
    ),
}
