"""Multi-search service layer: many LPQ searches, one worker pool.

:mod:`repro.parallel` made a *single* search parallel — population
slices fan out across worker replicas built from an
:class:`~repro.parallel.EvaluatorSpec`.  This package makes *fleets* of
searches share that machinery:

* :class:`SearchScheduler` — accepts many search jobs (model ×
  fitness config × budget, or a declarative
  :class:`~repro.spec.SearchSpec` via ``submit(name, spec=...)``),
  drives each job's :meth:`~repro.quant.LPQEngine.work_units`
  coroutine, and multiplexes every job's candidate chunks onto one
  shared serial/thread/process pool with cost-adaptive chunking.
  Per-job :class:`SearchHandle` futures; job-scoped failure and
  cancellation.
* :func:`lpq_quantize_many` — one-call quantization of a model fleet
  (the paper's Table 1 / Fig. 5 zoo sweeps), returning a
  ``{name: LPQResult}`` map.  Accepts live models or a fleet of
  :class:`~repro.spec.SearchSpec` values.
* :mod:`repro.serve.pool` — the shared multi-job executor backends
  behind one transport-agnostic :class:`WorkerPool` protocol
  (``submit``/``start``/``close``/``workers``/``healthy``).  The
  process pool's job payloads are plain JSON (:mod:`repro.spec.wire`),
  never pickled evaluator objects.
* :mod:`repro.serve.remote` — the same payloads across TCP sockets:
  standalone :class:`~repro.serve.remote.WorkerServer` workers
  (``scripts/run_worker.py``) and the
  :class:`~repro.serve.remote.SharedRemotePool` client with token
  handshake, heartbeat liveness, and dead-worker requeue.
* :mod:`repro.serve.resilience` — the committed recovery policy
  (:class:`~repro.serve.resilience.RetryPolicy`: deterministic
  backoff, retry budgets, deadlines, fleet-wait) that makes the fleet
  *elastic*: dead addresses are re-dialed so restarted workers rejoin
  mid-search, poison chunks are quarantined to a local fallback, and
  ``on_fleet_death="local"`` degrades to in-process evaluation.
* :mod:`repro.serve.chaos` — deterministic fault injection
  (:class:`~repro.serve.chaos.FaultPlan` schedules,
  :class:`~repro.serve.chaos.ChaosFleet` misbehaving local fleets)
  proving all of the above keeps results bitwise-identical.
* :mod:`repro.serve.server` — the always-on front door:
  :class:`~repro.serve.server.SearchServer`
  (``scripts/run_server.py``) accepts spec submissions over the wire
  protocol, multiplexes them onto one scheduler over any backend, and
  makes jobs durable via :mod:`repro.serve.store` (append-only
  journal + ``SearchSpec.digest()``-keyed result store) — a restarted
  daemon recovers its queue, replays done jobs from the store, and
  re-runs interrupted jobs bitwise-identically.
  :class:`~repro.serve.server.SearchClient` (``run_search.py
  --server``) submits, streams progress, and reconnects across
  daemon restarts.

The layer's invariant matches the rest of the stack: scheduling is
never allowed to move a bit.  Every per-job result is bitwise-identical
to a standalone :func:`repro.quant.lpq_quantize` run with the same
seed, on every backend at any worker count — one host or many.
"""

from .pool import (
    ChunkResult,
    SharedProcessPool,
    SharedSerialPool,
    SharedThreadPool,
    WorkerPool,
    make_shared_pool,
)
from .scheduler import SearchHandle, SearchScheduler
from .api import lpq_quantize_many

__all__ = [
    "ChaosFleet",
    "ChunkResult",
    "FaultPlan",
    "Journal",
    "ResultStore",
    "RetryPolicy",
    "SearchClient",
    "SearchHandle",
    "SearchScheduler",
    "SearchServer",
    "ServerError",
    "SharedProcessPool",
    "SharedRemotePool",
    "SharedSerialPool",
    "SharedThreadPool",
    "WorkerPool",
    "WorkerServer",
    "lpq_quantize_many",
    "make_shared_pool",
    "result_record",
]

#: lazily-imported name → submodule (the transport layer pulls in
#: sockets/threads only when used)
_LAZY = {
    "SharedRemotePool": "remote",
    "WorkerServer": "remote",
    "RetryPolicy": "resilience",
    "FaultPlan": "chaos",
    "ChaosFleet": "chaos",
    "SearchServer": "server",
    "SearchClient": "server",
    "ServerError": "server",
    "Journal": "store",
    "ResultStore": "store",
    "result_record": "store",
}


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is not None:
        import importlib

        module = importlib.import_module(f".{submodule}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
