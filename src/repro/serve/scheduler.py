"""Multi-search scheduler: many LPQ searches on one shared worker pool.

One :class:`SearchScheduler` holds any number of LPQ search *jobs*
(model × :class:`~repro.quant.FitnessConfig` × search budget) and
drives them concurrently over a single shared executor
(:mod:`repro.serve.pool`).  Each job is an
:class:`~repro.quant.LPQEngine` driven through its
:meth:`~repro.quant.LPQEngine.work_units` coroutine: the engine yields
candidate batches (the Step-1 population first, then one batch per GA
step), the scheduler splits every batch into cost-adaptive chunks, and
chunks from *all* jobs interleave freely on the pool — block-level
pipelining within a job, job-level pipelining across the fleet.

Determinism is inherited, not re-proven: all engine RNG is drawn at
generation time in the standalone order, chunk results are reassembled
by ``(seq, chunk)`` tags before they reach the engine, and every worker
replica is a byte-identical reconstruction of the job's
:class:`~repro.parallel.EvaluatorSpec` — rebuilt in-process for the
serial/thread pools, and from the job's plain-JSON wire payload
(:mod:`repro.spec.wire`) for the process pool.  Scheduling therefore
cannot move a bit — per-job results are bitwise-identical to a
standalone :func:`repro.quant.lpq_quantize` with the same seed, on
every backend (``tests/serve/test_scheduler.py`` asserts exactly this).

Failure is job-scoped: a replica that raises fails its own job (the
handle reports the worker traceback) while the pool and every other job
keep running.  Cancellation via :meth:`SearchHandle.cancel` takes
effect at the next batch boundary.
"""

from __future__ import annotations

import queue
import traceback
from dataclasses import dataclass, field

from ..parallel import EvaluatorSpec, ExecutorConfig
from ..perf import PerfRegistry, diff_snapshots, get_perf
from ..quant import (
    LPQConfig,
    LPQEngine,
    LPQResult,
    LayerStats,
    OBJECTIVES,
    collect_layer_stats,
    derive_activation_params,
)
from .pool import make_shared_pool

__all__ = ["SearchHandle", "SearchScheduler"]

#: sentinel objective name meaning "the paper's FitnessEvaluator"
_DEFAULT_OBJECTIVE = "global_local_contrastive"


class SearchHandle:
    """Per-job future returned by :meth:`SearchScheduler.submit`.

    Resolved by :meth:`SearchScheduler.run`: afterwards exactly one of
    ``done`` (``result()`` returns the job's
    :class:`~repro.quant.LPQResult`), ``failed`` (``result()`` raises
    with the worker traceback in ``error``), or ``cancelled`` is true.
    ``cancel()`` may be called before or during ``run()``; it takes
    effect at the job's next batch boundary.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._status = "pending"
        self._result: LPQResult | None = None
        self._error: str | None = None
        self._perf: dict | None = None
        self._cancel_requested = False

    # -- state ----------------------------------------------------------
    @property
    def status(self) -> str:
        """One of ``pending`` / ``done`` / ``failed`` / ``cancelled``."""
        return self._status

    @property
    def done(self) -> bool:
        return self._status == "done"

    @property
    def failed(self) -> bool:
        return self._status == "failed"

    @property
    def cancelled(self) -> bool:
        return self._status == "cancelled"

    @property
    def finished(self) -> bool:
        return self._status != "pending"

    @property
    def error(self) -> str | None:
        return self._error

    @property
    def perf(self) -> dict | None:
        """The job's merged perf snapshot (engine events + every worker
        delta attributed to this job), available once finished."""
        return self._perf

    def cancel(self) -> None:
        """Request cancellation (no-op once the job has finished)."""
        self._cancel_requested = True

    def result(self) -> LPQResult:
        """The job's :class:`~repro.quant.LPQResult` (raises otherwise)."""
        if self._status == "done":
            return self._result
        if self._status == "failed":
            raise RuntimeError(
                f"search job {self.name!r} failed:\n{self._error}"
            )
        if self._status == "cancelled":
            raise RuntimeError(f"search job {self.name!r} was cancelled")
        raise RuntimeError(
            f"search job {self.name!r} has not run yet; call "
            "SearchScheduler.run()"
        )

    # -- resolution (scheduler-internal) --------------------------------
    def _resolve(self, result: LPQResult) -> None:
        self._status, self._result = "done", result

    def _fail(self, error: str) -> None:
        self._status, self._error = "failed", error

    def _mark_cancelled(self) -> None:
        self._status = "cancelled"


@dataclass
class _JobState:
    """Scheduler-internal bookkeeping for one search job."""

    name: str
    spec: EvaluatorSpec
    engine: LPQEngine
    stats: LayerStats
    act_sf_mode: str
    perf: PerfRegistry
    handle: SearchHandle
    search: object | None = None  # SearchSpec of a declarative submission
    gen: object | None = None
    seq: int = -1
    batch: list | None = None  # full batch (duplicates included)
    unique: list | None = None  # deduped candidates actually submitted
    chunk_sizes: list[int] = field(default_factory=list)
    chunk_fits: dict[int, list] = field(default_factory=dict)
    chunks_outstanding: int = 0
    memo: dict = field(default_factory=dict)
    evaluations: int = 0  # requested (memo hits included)
    computed_evaluations: int = 0  # submitted to a worker
    cost_est: float | None = None  # EWMA seconds per candidate
    event_snap: dict | None = None  # perf snapshot at the last on_batch


class SearchScheduler:
    """Runs many LPQ searches concurrently on one shared executor pool.

    ``executor`` is the same :class:`~repro.parallel.ExecutorConfig`
    knob as single-job searches (``serial`` / ``thread`` / ``process``
    backends); ``target_chunk_s`` sets the wall-clock a single submitted
    chunk should cost, which the adaptive chunker divides by each job's
    measured per-candidate cost — cheap-model jobs ship large chunks
    (low dispatch overhead), expensive-model jobs ship small ones (no
    pool starvation).  The first batch of every job is submitted at
    chunk size 1 to seed the cost estimate with maximum parallelism.

    Submit jobs, then call :meth:`run`; per-job :class:`SearchHandle`
    futures resolve to :class:`~repro.quant.LPQResult` values that are
    bitwise-identical to standalone :func:`repro.quant.lpq_quantize`
    runs with the same configuration.

    >>> import numpy as np
    >>> from repro import nn
    >>> from repro.quant import LPQConfig, lpq_quantize
    >>> from repro.serve import SearchScheduler
    >>> nn.seed(0)
    >>> class Tiny(nn.Module):
    ...     def __init__(self):
    ...         super().__init__()
    ...         self.conv = nn.Conv2d(3, 4, 3, padding=1, bias=False)
    ...         self.bn = nn.BatchNorm2d(4)
    ...         self.pool = nn.GlobalAvgPool()
    ...         self.head = nn.Linear(4, 4)
    ...     def forward(self, x):
    ...         return self.head(self.pool(self.bn(self.conv(x))))
    >>> model = Tiny().eval()
    >>> images = np.random.default_rng(0).normal(
    ...     size=(4, 3, 8, 8)).astype(np.float32)
    >>> config = LPQConfig(population=3, passes=1, cycles=1,
    ...                    diversity_parents=2, hw_widths=(4, 8), seed=1)
    >>> scheduler = SearchScheduler()
    >>> handle = scheduler.submit("tiny", model, images, config=config)
    >>> results = scheduler.run()
    >>> handle.done
    True
    >>> standalone = lpq_quantize(model, images, config=config)
    >>> results["tiny"].solution == standalone.solution
    True
    """

    def __init__(
        self,
        executor: ExecutorConfig | None = None,
        target_chunk_s: float = 0.25,
        cost_ewma: float = 0.5,
        perf=None,
        on_batch=None,
        on_finished=None,
    ) -> None:
        if target_chunk_s <= 0:
            raise ValueError("target_chunk_s must be positive")
        if not 0.0 < cost_ewma <= 1.0:
            raise ValueError("cost_ewma must be in (0, 1]")
        self.executor_config = executor or ExecutorConfig()
        self.target_chunk_s = target_chunk_s
        self.cost_ewma = cost_ewma
        self.perf = perf if perf is not None else get_perf()
        #: progress hook — called as ``on_batch(name, info)`` after each
        #: evaluated candidate batch with the job's generation counter,
        #: evaluation counts, best-so-far fitness, and the perf-counter
        #: delta since the previous call.  ``on_finished(name, handle)``
        #: fires once per job as it reaches a terminal state.  Both run
        #: on the scheduler's thread; an exception raised by either
        #: propagates out of :meth:`run` (the search-daemon crash tests
        #: rely on this).
        self.on_batch = on_batch
        self.on_finished = on_finished
        self._jobs: dict[str, _JobState] = {}
        #: the shared pool of the current :meth:`run` call (None between
        #: runs); :meth:`stats` reads its worker count and membership
        self._pool = None

    # -- job submission --------------------------------------------------
    def submit(
        self,
        name: str,
        model=None,
        calib_images=None,
        *,
        builder=None,
        state=None,
        config: LPQConfig | None = None,
        fitness_config=None,
        objective: str = _DEFAULT_OBJECTIVE,
        act_sf_mode: str = "calibrated",
        stats: LayerStats | None = None,
        spec=None,
    ) -> SearchHandle:
        """Register one LPQ search job; returns its :class:`SearchHandle`.

        The model source mirrors :class:`~repro.parallel.EvaluatorSpec`:
        either a ``model`` instance or a picklable ``builder`` callable
        (optionally with a ``state`` dict of trained weights).  The
        remaining knobs mirror :func:`repro.quant.lpq_quantize` —
        a scheduler job is the same search, just multiplexed.

        ``spec`` (a :class:`repro.spec.SearchSpec`, mutually exclusive
        with every other search argument) submits a declarative request
        instead: model and calibration batch resolve from the spec's
        registry references, and — on the process backend — the job
        crosses the pool boundary as the spec's own plain-JSON payload.
        The spec's ``executor`` field is ignored here; the scheduler's
        shared pool is the executor for every job it runs.
        """
        if name in self._jobs:
            raise ValueError(f"duplicate job name {name!r}")
        search = None
        if spec is not None:
            from ..spec.spec import SearchSpec, reject_spec_conflicts

            if not isinstance(spec, SearchSpec):
                raise TypeError(
                    f"spec must be a repro.spec.SearchSpec, got "
                    f"{type(spec).__name__}"
                )
            reject_spec_conflicts(
                "submit(spec=...)",
                (
                    ("model", model),
                    ("calib_images", calib_images),
                    ("builder", builder),
                    ("state", state),
                    ("config", config),
                    ("fitness_config", fitness_config),
                    ("stats", stats),
                ),
                objective=objective,
                act_sf_mode=act_sf_mode,
            )
            search = spec
            model = spec.build_model()
            calib_images = spec.build_calib()
            config = spec.search_config()
            fitness_config = spec.fitness
            objective = spec.objective
            act_sf_mode = spec.act_sf_mode
        if calib_images is None:
            raise ValueError("calib_images is required")
        if objective not in OBJECTIVES and objective != _DEFAULT_OBJECTIVE:
            raise ValueError(
                f"unknown objective {objective!r}; choose from "
                f"{sorted(OBJECTIVES) + [_DEFAULT_OBJECTIVE]}"
            )
        if act_sf_mode not in ("calibrated", "recurrence"):
            raise ValueError(f"unknown activation sf mode {act_sf_mode!r}")
        if (model is None) == (builder is None):
            raise ValueError("exactly one of model or builder is required")
        if stats is None:
            # the calibration pass needs a live model; built here only
            # when the caller did not precollect stats
            local = model
            if local is None:
                local = builder()
                if state is not None:
                    local.load_state_dict(state)
            local.eval()
            stats = collect_layer_stats(local, calib_images)
        espec = EvaluatorSpec(
            images=calib_images,
            builder=builder,
            state=state,
            model=model,
            config=fitness_config,
            objective=None if objective == _DEFAULT_OBJECTIVE else objective,
            act_mode=act_sf_mode,
            stats=stats,
        )
        job_perf = PerfRegistry()
        engine = LPQEngine(
            None, stats.weight_log_centers, config, perf=job_perf
        )
        handle = SearchHandle(name)
        self._jobs[name] = _JobState(
            name=name,
            spec=espec,
            engine=engine,
            stats=stats,
            act_sf_mode=act_sf_mode,
            perf=job_perf,
            handle=handle,
            search=search,
        )
        return handle

    @property
    def handles(self) -> dict[str, SearchHandle]:
        return {name: st.handle for name, st in self._jobs.items()}

    def stats(self) -> dict:
        """Advisory point-in-time scheduling facts for status views.

        Per job: lifecycle state, current batch ``seq``, chunks still in
        flight, and evaluation totals; plus the pool-wide queue depth
        (every job's outstanding chunks summed), the current worker
        parallelism, and per-worker fleet membership
        (:meth:`~repro.serve.pool.WorkerPool.membership`, non-empty on
        the remote backend).  Lock-free by design — values may be one
        batch stale, and reading them never perturbs a running search
        (the daemon's ``fleet_status`` op is built on exactly this).
        """
        jobs = {}
        queue_depth = 0
        for name, st in self._jobs.items():
            outstanding = max(0, st.chunks_outstanding)
            if not st.handle.finished:
                queue_depth += outstanding
            jobs[name] = {
                "state": st.handle.status,
                "seq": st.seq,
                "chunks_outstanding": outstanding,
                "evaluations": st.evaluations,
                "computed_evaluations": st.computed_evaluations,
            }
        pool = self._pool
        return {
            "jobs": jobs,
            "queue_depth": queue_depth,
            "workers": pool.workers if pool is not None else 0,
            "fleet": pool.membership() if pool is not None else [],
        }

    # -- the multiplexing loop -------------------------------------------
    def run(self) -> dict[str, LPQResult]:
        """Drive every pending job to completion on one shared pool.

        Returns ``{name: LPQResult}`` for the jobs that completed in
        this call; failed or cancelled jobs are reported through their
        handles instead.  May be called again after submitting more
        jobs (each call builds a pool for that call's pending jobs).
        """
        pending: dict[str, _JobState] = {}
        for name, st in self._jobs.items():
            if st.handle.finished:
                continue
            if st.handle._cancel_requested:
                self._finalize_cancelled(st)
                continue
            pending[name] = st
        if not pending:
            return {}
        results_q: queue.SimpleQueue = queue.SimpleQueue()
        pool = make_shared_pool(
            {name: st.spec for name, st in pending.items()},
            self.executor_config,
            results_q,
            search_specs={
                name: st.search
                for name, st in pending.items()
                if st.search is not None
            },
        )
        outstanding = 0
        self._pool = pool
        try:
            for st in pending.values():
                outstanding += self._start_job(st, pool)
            while outstanding:
                res = results_q.get()
                outstanding -= 1
                st = pending.get(res.job)
                if st is None or st.handle.finished or res.seq != st.seq:
                    continue  # stale chunk of a failed/finished job
                if res.error is not None:
                    self._finalize_failed(st, res.error)
                    continue
                st.perf.merge_snapshot(res.perf_delta)
                self._update_cost(st, res)
                st.chunk_fits[res.chunk] = res.fits
                st.chunks_outstanding -= 1
                if st.chunks_outstanding == 0:
                    fits_unique = [
                        fit
                        for chunk in sorted(st.chunk_fits)
                        for fit in st.chunk_fits[chunk]
                    ]
                    for sol, fit in zip(st.unique, fits_unique):
                        st.memo[sol] = fit
                    fits = [st.memo[sol] for sol in st.batch]
                    self._emit_batch(st)
                    outstanding += self._advance(st, pool, fits)
        finally:
            self._pool = None
            pool.close()
        return {
            name: st.handle._result
            for name, st in pending.items()
            if st.handle.done
        }

    # -- per-job driving -------------------------------------------------
    def _start_job(self, st: _JobState, pool) -> int:
        st.gen = st.engine.work_units()
        return self._advance(st, pool, None)

    def _advance(self, st: _JobState, pool, fits) -> int:
        """Feed results back and submit the next batch; returns the
        number of chunks submitted (0 = job reached a terminal state).

        Loops in place when a batch is fully memoised (no worker round
        trip needed) so consecutive memo-served batches cannot recurse.
        """
        while True:
            try:
                if fits is None:
                    batch = next(st.gen)
                else:
                    batch = st.gen.send(fits)
            except StopIteration:
                self._finalize_done(st)
                return 0
            except Exception:  # lint: disable=broad-except -- job isolation: one job's engine failure must only fail that job
                self._finalize_failed(st, traceback.format_exc())
                return 0
            if st.handle._cancel_requested:
                self._finalize_cancelled(st)
                return 0
            submitted = self._submit_batch(st, pool, batch)
            if submitted:
                return submitted
            # every candidate was served from the job memo
            fits = [st.memo[sol] for sol in st.batch]

    def _submit_batch(self, st: _JobState, pool, batch) -> int:
        st.seq += 1
        st.batch = list(batch)
        st.evaluations += len(st.batch)
        memo_stats = st.perf.cache("population.memo")
        unique, seen = [], set()
        for sol in st.batch:
            if sol in st.memo or sol in seen:
                memo_stats.hit()
            else:
                memo_stats.miss()
                seen.add(sol)
                unique.append(sol)
        st.unique = unique
        st.computed_evaluations += len(unique)
        if not unique:
            return 0
        chunks = self._chunks(st, unique, pool.workers)
        st.chunk_fits = {}
        st.chunk_sizes = [len(c) for c in chunks]
        st.chunks_outstanding = len(chunks)
        st.perf.counter("serve.batches").inc()
        st.perf.counter("serve.chunks").inc(len(chunks))
        for idx, chunk in enumerate(chunks):
            pool.submit(st.name, st.seq, idx, chunk)
        return len(chunks)

    def _chunks(self, st: _JobState, unique: list, workers: int) -> list:
        """Cost-adaptive chunking: aim for ``target_chunk_s`` per chunk,
        never fewer chunks than would keep ``workers`` busy, chunk size
        1 until the job has a cost estimate."""
        if st.cost_est is None:
            size = 1
        else:
            size = max(1, int(self.target_chunk_s / max(st.cost_est, 1e-9)))
            # keep at least `workers` chunks in flight when the batch
            # allows it, so a cheap job cannot collapse into one task
            # that serialises the pool
            size = min(size, max(1, len(unique) // workers))
        return [unique[i : i + size] for i in range(0, len(unique), size)]

    def _update_cost(self, st: _JobState, res) -> None:
        if not res.fits or res.elapsed <= 0:
            return
        per_candidate = res.elapsed / len(res.fits)
        if st.cost_est is None:
            st.cost_est = per_candidate
        else:
            a = self.cost_ewma
            st.cost_est = a * per_candidate + (1.0 - a) * st.cost_est

    def _emit_batch(self, st: _JobState) -> None:
        """Fire the ``on_batch`` progress hook for one evaluated batch
        (generation counter, evaluation totals, best-so-far fitness,
        perf delta since the last event)."""
        if self.on_batch is None:
            return
        snap = st.perf.snapshot()
        delta = (
            diff_snapshots(snap, st.event_snap)
            if st.event_snap is not None else snap
        )
        st.event_snap = snap
        best = st.engine.population[0][1] if st.engine.population else None
        self.on_batch(st.name, {
            "seq": st.seq,
            "evaluations": st.evaluations,
            "computed_evaluations": st.computed_evaluations,
            "best_fitness": best,
            "perf": delta,
        })

    # -- terminal states --------------------------------------------------
    def _finalize_done(self, st: _JobState) -> None:
        solution, fitness = st.engine.population[0]
        act_params = derive_activation_params(
            solution, st.stats, mode=st.act_sf_mode
        )
        st.handle._resolve(
            LPQResult(
                solution=solution,
                act_params=act_params,
                fitness=fitness,
                history=st.engine.history,
                stats=st.stats,
                evaluations=st.evaluations,
            )
        )
        self._merge_job_perf(st)

    def _finalize_failed(self, st: _JobState, error: str) -> None:
        st.handle._fail(error)
        self._merge_job_perf(st)

    def _finalize_cancelled(self, st: _JobState) -> None:
        st.handle._mark_cancelled()
        self._merge_job_perf(st)

    def _merge_job_perf(self, st: _JobState) -> None:
        """Publish the job's perf snapshot on its handle and fold the
        private registry (engine events + worker deltas) into the
        scheduler's ambient registry exactly once."""
        st.handle._perf = st.perf.snapshot()
        if st.perf is not self.perf:
            self.perf.merge_snapshot(st.handle._perf)
        if self.on_finished is not None:
            self.on_finished(st.name, st.handle)
