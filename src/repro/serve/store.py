"""Durable job state for the search daemon: journal + result store.

Two small persistence primitives sit under
:class:`repro.serve.server.SearchServer`:

* :class:`Journal` — an append-only JSONL log of job lifecycle records
  (``submitted`` / ``running`` / ``done`` / ``failed`` / ``cancelled``).
  Appends are flushed and fsynced, so a crash can tear at most the
  record being written; :meth:`Journal.replay` recovers every complete
  record and drops an unterminated tail line instead of failing.
  :meth:`Journal.rewrite` (compaction) replaces the whole file with the
  write-then-rename pattern of :class:`repro.spec.blob.BlobStore`, so a
  reader never sees a half-compacted journal.
* :class:`ResultStore` — finished search records keyed by
  :meth:`repro.spec.SearchSpec.digest`.  This generalizes
  ``run_search.py --cache-dir`` into the service's memoization tier:
  the digest ignores the executor, so a cached serial result satisfies
  a remote re-run of the same spec.  Every store is atomic
  (``mkstemp`` + ``os.replace``), fixing the latent non-atomic cache
  write ``run_search.py`` used to do — a crash mid-write can no longer
  leave a corrupt entry the daemon would later trust.

>>> import os, tempfile
>>> root = tempfile.mkdtemp()
>>> journal = Journal(os.path.join(root, "journal.jsonl"))
>>> _ = journal.append("submitted", "job-a", digest="d" * 8)
>>> _ = journal.append("running", "job-a")
>>> [rec["op"] for rec in journal.replay()]
['submitted', 'running']
>>> with open(journal.path, "ab") as fh:    # crash tears the tail...
...     _ = fh.write(b'{"v": 1, "op": "do')
>>> [rec["op"] for rec in journal.replay()]  # ...complete records survive
['submitted', 'running']
>>> journal.close()
>>> store = ResultStore(os.path.join(root, "results"))
>>> store.load("0" * 64) is None
True
>>> _ = store.store("0" * 64, {"fitness": -1.25})
>>> store.load("0" * 64)["fitness"]
-1.25
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path

from ..perf import get_perf

__all__ = ["JOURNAL_OPS", "Journal", "ResultStore", "result_record"]

#: journal record format version (stamped into every record)
JOURNAL_VERSION = 1

#: the job lifecycle operations a journal record may carry
JOURNAL_OPS = ("submitted", "running", "done", "failed", "cancelled")


class Journal:
    """Append-only JSONL job-lifecycle log with torn-tail recovery.

    One record per line; every append is flushed and fsynced before it
    returns, so the only record a crash can damage is the one being
    written — and that damage is confined to the file's final line.
    ``replay()`` therefore parses complete lines strictly (mid-file
    corruption raises, naming the line) but tolerates an unterminated
    tail, counting it in the ``journal.torn_tails`` perf counter.
    """

    def __init__(self, path, perf=None) -> None:
        self.path = Path(path)
        self.perf = perf if perf is not None else get_perf()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None

    # -- writing ---------------------------------------------------------
    def append(self, op: str, job: str, **fields) -> dict:
        """Durably append one lifecycle record; returns the record."""
        if op not in JOURNAL_OPS:
            raise ValueError(
                f"unknown journal op {op!r}; choose from {JOURNAL_OPS}"
            )
        record = {"v": JOURNAL_VERSION, "op": op, "job": str(job), **fields}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        fh = self._handle()
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        self.perf.counter("journal.appends").inc()
        return record

    def _handle(self):
        if self._fh is None:
            # a crash between the tail bytes and their newline leaves an
            # unterminated last line — an incomplete append that replay()
            # would drop.  Truncate it off before appending: merely
            # newline-terminating it would promote the torn record to a
            # complete-but-corrupt mid-file line a later replay() rejects.
            if self.path.exists() and self.path.stat().st_size:
                with open(self.path, "rb") as fh:
                    data = fh.read()
                if not data.endswith(b"\n"):
                    keep = data.rfind(b"\n") + 1
                    with open(self.path, "r+b") as fh:
                        fh.truncate(keep)
                    self.perf.counter("journal.torn_tails").inc()
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def close(self) -> None:
        if self._fh is not None:
            with contextlib.suppress(OSError):
                self._fh.close()
            self._fh = None

    # -- reading ---------------------------------------------------------
    def replay(self) -> list[dict]:
        """Every complete record, in append order.

        An unparsable *final* line is a torn tail from a crash
        mid-append: it is dropped (all complete records are still
        returned).  An unparsable line anywhere else is real corruption
        and raises ``ValueError`` naming the line.
        """
        if not self.path.exists():
            return []
        lines = self.path.read_bytes().split(b"\n")
        records: list[dict] = []
        for idx, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("record is not a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                if idx == len(lines) - 1:
                    # unterminated tail: the append a crash interrupted
                    self.perf.counter("journal.torn_tails").inc()
                    break
                raise ValueError(
                    f"{self.path}: corrupt journal record on line "
                    f"{idx + 1}: {exc}"
                ) from exc
            records.append(record)
        return records

    # -- compaction ------------------------------------------------------
    def rewrite(self, records) -> None:
        """Atomically replace the journal's contents (write-then-rename,
        the blob-store idiom): a concurrent reader sees either the old
        journal or the new one, never a torn mixture."""
        self.close()
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(
                        record, sort_keys=True, separators=(",", ":")
                    ) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def compact(self) -> int:
        """Collapse each job to its ``submitted`` record plus its latest
        terminal record (if any), dropping ``running`` marks and
        superseded history.  Returns the number of records dropped.
        Interrupted jobs (``running`` without a terminal record) keep
        only ``submitted`` — exactly the state that re-queues them on
        the next replay."""
        records = self.replay()
        submitted: dict[str, dict] = {}
        terminal: dict[str, dict] = {}
        order: list[str] = []
        for record in records:
            job = record.get("job")
            op = record.get("op")
            if op == "submitted":
                if job not in submitted:
                    order.append(job)
                submitted[job] = record
            elif op in ("done", "failed", "cancelled"):
                terminal[job] = record
        kept: list[dict] = []
        for job in order:
            kept.append(submitted[job])
            if job in terminal:
                kept.append(terminal[job])
        self.rewrite(kept)
        return len(records) - len(kept)


class ResultStore:
    """Finished-search records keyed by ``SearchSpec.digest()``.

    Each record is one pretty-printed JSON file named by its digest.
    Writes are atomic (``mkstemp`` in the store directory +
    ``os.replace``), so a crash mid-write can never leave a torn file
    where the digest promises a complete record.  Corrupt or foreign
    files read as misses, never as errors.  Hits and misses are
    accounted in the ``serve.results`` cache stats.
    """

    def __init__(self, root, perf=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.perf = perf if perf is not None else get_perf()

    def path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def load(self, digest: str) -> dict | None:
        """The stored record for ``digest``, or ``None`` on a miss (a
        missing, corrupt, or non-object file all count as misses)."""
        stats = self.perf.cache("serve.results")
        try:
            record = json.loads(self.path(digest).read_text())
        except (OSError, ValueError):
            stats.miss()
            return None
        if not isinstance(record, dict):
            stats.miss()
            return None
        stats.hit()
        return record

    def store(self, digest: str, record: dict) -> Path:
        """Atomically persist ``record`` under ``digest``; returns the
        final path.  The temp file is removed if the write fails."""
        path = self.path(digest)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, indent=2, sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


def result_record(spec, result, wall: float | None = None) -> dict:
    """The canonical JSON record for one finished search spec — what
    ``run_search.py`` prints/caches and what the daemon's
    :class:`ResultStore` serves.  The executor token (a shared secret)
    is scrubbed: records get committed and uploaded as CI artifacts."""
    payload = spec.to_dict()
    if payload.get("executor") and payload["executor"].get("token"):
        payload["executor"]["token"] = None
    return {
        "spec": payload,
        "digest": spec.digest(),
        "wall_s": wall,
        "fitness": result.fitness,
        "mean_weight_bits": result.mean_weight_bits,
        "mean_act_bits": result.mean_act_bits,
        "model_size_mb": result.model_size_mb(),
        "evaluations": result.evaluations,
        "solution": [
            [p.n, p.es, p.rs, p.sf] for p in result.solution.layer_params
        ],
    }
