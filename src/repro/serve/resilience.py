"""Retry/backoff policies for the elastic remote fleet.

:class:`RetryPolicy` is the one knob object that decides how the
remote transport (:mod:`repro.serve.remote`) behaves when workers
misbehave: how many times a chunk may be requeued before it is
quarantined and run locally, how redial/retry backoff grows, how long
a chunk may sit in flight before it is re-dispatched, and how fast the
heartbeat/liveness clocks tick.  It travels inside
:class:`repro.parallel.ExecutorConfig` (``retry=``) and therefore
round-trips through :class:`repro.spec.SearchSpec` JSON — a committed
spec file fully describes the fleet's failure behaviour.

None of these knobs can change search *results*: retries, rejoins and
local fallback re-run deterministic, side-effect-free chunk
evaluations, so every recovery path is bitwise-identical to the serial
backend (``tests/serve/test_chaos.py`` asserts exactly that under
committed fault plans).

Backoff is exponential with **deterministic seeded jitter**: the
jitter term is a pure function of ``(seed, key, attempt)``, so two
runs of the same plan back off identically — no wall-clock randomness
anywhere in the recovery machinery.

>>> policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
...                      backoff_max_s=1.0, jitter=0.0)
>>> [round(policy.backoff(a), 3) for a in (1, 2, 3, 4, 5)]
[0.1, 0.2, 0.4, 0.8, 1.0]
>>> jittered = RetryPolicy(backoff_base_s=0.1, jitter=0.5, seed=7)
>>> jittered.backoff(2, key="10.0.0.1:7301") == \\
...     jittered.backoff(2, key="10.0.0.1:7301")  # deterministic
True
>>> RetryPolicy.from_dict(policy.to_dict()) == policy
True
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Failure-handling policy for the remote worker fleet.

    ``max_attempts``
        Requeue budget per chunk: a chunk whose worker died (or whose
        deadline expired) is re-dispatched up to this many times; one
        more failure marks the chunk *poison* — it is quarantined and
        evaluated locally instead of being allowed to take down yet
        another worker.
    ``backoff_base_s`` / ``backoff_factor`` / ``backoff_max_s`` / ``jitter``
        Exponential backoff for chunk retries and dead-address
        redials: attempt *n* waits ``base * factor**(n-1)`` seconds,
        capped at ``backoff_max_s``, scaled by a deterministic jitter
        in ``[1-jitter, 1+jitter)`` derived from ``(seed, key,
        attempt)`` — seeded, so recovery schedules reproduce.
    ``deadline_s``
        Optional per-chunk in-flight deadline: a chunk that has been
        out on a worker longer than this is re-dispatched elsewhere
        (task-id dedupe drops the late duplicate).  ``None`` leaves
        liveness timeouts as the only stall detector.
    ``fleet_wait_s``
        How long dispatch may *park* chunks while the fleet is
        momentarily empty but redials are in progress (a restarting
        worker re-admits them).  ``0`` keeps the fail-fast PR-5
        behaviour: an empty fleet fails outstanding chunks
        immediately.
    ``heartbeat_s`` / ``liveness_timeout_s``
        Optional overrides for the pool's heartbeat interval and
        silent-worker timeout (``None`` keeps the transport defaults).

    >>> RetryPolicy().max_attempts
    3
    >>> RetryPolicy(max_attempts=0)
    Traceback (most recent call last):
        ...
    ValueError: max_attempts must be >= 1
    >>> RetryPolicy(jitter=1.5)
    Traceback (most recent call last):
        ...
    ValueError: jitter must be in [0, 1]
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter: float = 0.1
    seed: int = 0
    deadline_s: float | None = None
    fleet_wait_s: float = 0.0
    heartbeat_s: float | None = None
    liveness_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.fleet_wait_s < 0:
            raise ValueError("fleet_wait_s must be >= 0")
        for name in ("heartbeat_s", "liveness_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")

    # -- backoff ---------------------------------------------------------
    def backoff(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        ``key`` names what is being retried (a task id, a worker
        address) so distinct retry streams get independent — but each
        individually deterministic — jitter.
        """
        raw = self.backoff_base_s * self.backoff_factor ** max(
            0, int(attempt) - 1
        )
        capped = min(raw, self.backoff_max_s)
        if self.jitter == 0.0 or capped == 0.0:
            return capped
        return capped * (1.0 + self.jitter * (2.0 * self._unit(key, attempt) - 1.0))

    def _unit(self, key: str, attempt: int) -> float:
        """Deterministic uniform-ish value in ``[0, 1)`` from
        ``(seed, key, attempt)`` — hash-derived, no RNG state."""
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{int(attempt)}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def exhausted(self, attempts: int) -> bool:
        """True once a chunk has burned its whole requeue budget (the
        quarantine trigger)."""
        return attempts > self.max_attempts

    # -- JSON ------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON dict form (rides inside
        ``ExecutorConfig.to_dict``, hence spec files)."""
        from ..spec.serde import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        from ..spec.serde import config_from_dict

        return config_from_dict(cls, data)
